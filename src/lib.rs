//! Workspace meta-crate for the HDC-ZSC reproduction.
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); it re-exports the workspace
//! crates so examples can refer to everything through one dependency.
//!
//! * [`engine`] — batched inference engine (packed + sharded class
//!   memories, batch scorer, row-parallel dense scoring);
//! * [`serve`] — online serving (hot-swappable snapshot `QueryServer`);
//! * [`hdc`] — hyperdimensional-computing substrate (hypervectors, binding,
//!   bundling, codebooks, item memories);
//! * [`tensor`] / [`nn`] — dense linear algebra and the trainable-layer
//!   substrate (losses, AdamW, cosine kernel);
//! * [`dataset`] — the synthetic CUB-200-2011 stand-in (schema, class
//!   attributes, instances, simulated backbones, splits);
//! * [`hdc_zsc`] — the paper's model and training pipeline;
//! * [`baselines`] — ESZSL, DAP and the literature reference registry;
//! * [`metrics`] — top-k accuracy, WMAP, seed aggregation.
//!
//! See `README.md` for build/test/bench instructions, the full crate map,
//! and the experiment-harness walkthrough.

pub use baselines;
pub use dataset;
pub use engine;
pub use hdc;
pub use hdc_zsc;
pub use metrics;
pub use nn;
pub use serve;
pub use tensor;
