//! Differentiable batched cosine similarity and temperature scaling — the
//! similarity kernel of the paper (Eq. 1).
//!
//! The kernel relates a batch of image embeddings `γ(X) ∈ R^{B×d}` to a set
//! of class/attribute embeddings `ϕ(A) ∈ R^{C×d}`:
//!
//! ```text
//! cossim(γ(X), ϕ(A)) = (1/K) · γ(X)ᵀ·ϕ(A) / (‖γ(X)‖·‖ϕ(A)‖)
//! ```
//!
//! [`CosineSimilarity`] computes the normalised dot products and provides
//! gradients with respect to **both** operands, so it can train either the
//! image encoder alone (HDC attribute encoder — the second operand is a
//! stationary ±1 dictionary) or the image encoder and a trainable MLP
//! attribute encoder jointly. [`TemperatureScale`] applies the learnable
//! `1/K` factor.

use crate::param::ParamTensor;
use tensor::Matrix;

/// Batched cosine-similarity kernel with full backward support.
///
/// # Example
///
/// ```
/// use nn::CosineSimilarity;
/// use tensor::Matrix;
///
/// let mut kernel = CosineSimilarity::new();
/// let images = Matrix::from_rows(&[vec![1.0, 0.0]]);
/// let classes = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
/// let sims = kernel.forward(&images, &classes, false);
/// assert!((sims.get(0, 0) - 1.0).abs() < 1e-6);
/// assert!(sims.get(0, 1).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CosineSimilarity {
    cache: Option<CosineCache>,
}

#[derive(Debug, Clone)]
struct CosineCache {
    a_hat: Matrix,
    b_hat: Matrix,
    a_norms: Vec<f32>,
    b_norms: Vec<f32>,
}

/// Minimum norm below which an embedding is treated as zero (its similarities
/// and gradients become zero instead of dividing by ~0).
const EPS: f32 = 1e-12;

impl CosineSimilarity {
    /// Creates a similarity kernel with no cached state.
    pub fn new() -> Self {
        Self { cache: None }
    }

    /// Computes the `B×C` matrix of cosine similarities between the rows of
    /// `a` (`B×d`) and the rows of `b` (`C×d`).
    ///
    /// When `train` is `true`, normalised operands are cached for
    /// [`CosineSimilarity::backward`].
    ///
    /// # Panics
    ///
    /// Panics if the embedding dimensionalities differ.
    pub fn forward(&mut self, a: &Matrix, b: &Matrix, train: bool) -> Matrix {
        assert_eq!(
            a.cols(),
            b.cols(),
            "cosine kernel operands must share the embedding dimension ({} vs {})",
            a.cols(),
            b.cols()
        );
        let a_norms: Vec<f32> = (0..a.rows())
            .map(|r| a.row(r).iter().map(|x| x * x).sum::<f32>().sqrt())
            .collect();
        let b_norms: Vec<f32> = (0..b.rows())
            .map(|r| b.row(r).iter().map(|x| x * x).sum::<f32>().sqrt())
            .collect();
        let a_hat = a.normalize_rows(EPS);
        let b_hat = b.normalize_rows(EPS);
        let sims = a_hat.matmul_nt(&b_hat);
        if train {
            self.cache = Some(CosineCache {
                a_hat,
                b_hat,
                a_norms,
                b_norms,
            });
        }
        sims
    }

    /// Back-propagates `grad_output` (gradient of the loss with respect to
    /// the similarity matrix) and returns `(grad_a, grad_b)`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward(…, train = true)` or if
    /// `grad_output` has the wrong shape.
    pub fn backward(&mut self, grad_output: &Matrix) -> (Matrix, Matrix) {
        let cache = self
            .cache
            .as_ref()
            .expect("backward called before forward(train=true)");
        let (batch, classes) = (cache.a_hat.rows(), cache.b_hat.rows());
        assert_eq!(
            grad_output.shape(),
            (batch, classes),
            "similarity gradient must be {batch}x{classes}"
        );
        // Gradient w.r.t. the normalised operands.
        let grad_a_hat = grad_output.matmul(&cache.b_hat);
        let grad_b_hat = grad_output.matmul_tn(&cache.a_hat);
        // Back through the row normalisation: for â = a/‖a‖,
        // da = (g − (g·â)·â)/‖a‖, and zero where ‖a‖ ≈ 0.
        let grad_a = Self::normalize_backward(&grad_a_hat, &cache.a_hat, &cache.a_norms);
        let grad_b = Self::normalize_backward(&grad_b_hat, &cache.b_hat, &cache.b_norms);
        (grad_a, grad_b)
    }

    fn normalize_backward(grad_hat: &Matrix, hat: &Matrix, norms: &[f32]) -> Matrix {
        let mut out = Matrix::zeros(grad_hat.rows(), grad_hat.cols());
        for (r, &norm) in norms.iter().enumerate().take(grad_hat.rows()) {
            if norm <= EPS {
                continue;
            }
            let g = grad_hat.row(r);
            let h = hat.row(r);
            let dot: f32 = g.iter().zip(h).map(|(x, y)| x * y).sum();
            let out_row = out.row_mut(r);
            for ((o, &gv), &hv) in out_row.iter_mut().zip(g).zip(h) {
                *o = (gv - dot * hv) / norm;
            }
        }
        out
    }
}

/// Learnable temperature scaling `logits = sims / K` (the `1/K` factor of the
/// paper's similarity kernel).
///
/// `K` is stored as a single positive scalar parameter; it is clamped to a
/// small positive lower bound after every update to keep the logits finite.
///
/// # Example
///
/// ```
/// use nn::TemperatureScale;
/// use tensor::Matrix;
///
/// let mut temp = TemperatureScale::new(0.07);
/// let sims = Matrix::from_rows(&[vec![0.5]]);
/// let logits = temp.forward(&sims, false);
/// assert!((logits.get(0, 0) - 0.5 / 0.07).abs() < 1e-4);
/// ```
#[derive(Debug, Clone)]
pub struct TemperatureScale {
    k: ParamTensor,
    learnable: bool,
    cache: Option<Matrix>,
}

impl TemperatureScale {
    /// Smallest admissible temperature.
    pub const MIN_K: f32 = 1e-3;

    /// Creates a learnable temperature with initial value `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k <= 0`.
    pub fn new(k: f32) -> Self {
        assert!(k > 0.0, "temperature must be positive");
        Self {
            k: ParamTensor::new(Matrix::filled(1, 1, k)),
            learnable: true,
            cache: None,
        }
    }

    /// Creates a fixed (non-trainable) temperature.
    ///
    /// # Panics
    ///
    /// Panics if `k <= 0`.
    pub fn fixed(k: f32) -> Self {
        let mut t = Self::new(k);
        t.learnable = false;
        t
    }

    /// The current temperature value `K`.
    pub fn k(&self) -> f32 {
        self.k.values.get(0, 0)
    }

    /// Whether the temperature receives gradient updates.
    pub fn is_learnable(&self) -> bool {
        self.learnable
    }

    /// Number of trainable parameters (1 if learnable, 0 otherwise).
    pub fn num_params(&self) -> usize {
        usize::from(self.learnable)
    }

    /// Immutable inference scaling: applies `1/K` without caching anything.
    /// Bit-identical to [`TemperatureScale::forward`]; safe to call through
    /// a shared (frozen) model from any number of threads.
    pub fn infer(&self, sims: &Matrix) -> Matrix {
        sims.scale(1.0 / self.k())
    }

    /// Applies the `1/K` scaling to a similarity matrix, caching the
    /// similarities for [`TemperatureScale::backward`] when `train` is set.
    pub fn forward(&mut self, sims: &Matrix, train: bool) -> Matrix {
        if train {
            self.cache = Some(sims.clone());
        }
        self.infer(sims)
    }

    /// Back-propagates through the scaling, accumulating the gradient of `K`
    /// (if learnable) and returning the gradient with respect to the
    /// similarities.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward(…, train = true)`.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let sims = self
            .cache
            .as_ref()
            .expect("backward called before forward(train=true)");
        let k = self.k();
        if self.learnable {
            // d logits / dK = -sims / K².
            let grad_k: f32 = grad_output
                .as_slice()
                .iter()
                .zip(sims.as_slice())
                .map(|(&g, &s)| g * (-s / (k * k)))
                .sum();
            self.k.grad.set(0, 0, self.k.grad.get(0, 0) + grad_k);
        }
        grad_output.scale(1.0 / k)
    }

    /// Visits the temperature parameter (when learnable) so optimizers can
    /// update it alongside layer parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamTensor)) {
        if self.learnable {
            f(&mut self.k);
        }
    }

    /// Read-only visitation of the temperature parameter (when learnable),
    /// mirroring [`TemperatureScale::visit_params`] for `&self` accounting.
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&ParamTensor)) {
        if self.learnable {
            f(&self.k);
        }
    }

    /// Clamps the temperature to at least [`TemperatureScale::MIN_K`]; call
    /// after each optimizer step.
    pub fn clamp(&mut self) {
        let k = self.k().max(Self::MIN_K);
        self.k.values.set(0, 0, k);
    }

    /// Zeroes the accumulated temperature gradient.
    pub fn zero_grad(&mut self) {
        self.k.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn forward_matches_reference_cosine() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::random_uniform(3, 8, 1.0, &mut rng);
        let b = Matrix::random_uniform(5, 8, 1.0, &mut rng);
        let mut kernel = CosineSimilarity::new();
        let sims = kernel.forward(&a, &b, false);
        let reference = tensor::ops::cosine_similarity_matrix(&a, &b);
        assert!(sims.max_abs_diff(&reference) < 1e-6);
    }

    #[test]
    fn zero_rows_produce_zero_similarity_and_gradient() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 1.0]]);
        let mut kernel = CosineSimilarity::new();
        let sims = kernel.forward(&a, &b, true);
        assert_eq!(sims.get(0, 0), 0.0);
        let (ga, _gb) = kernel.backward(&Matrix::ones(2, 1));
        assert_eq!(ga.row(0), &[0.0, 0.0]);
    }

    /// Finite-difference check of the gradient with respect to both operands
    /// for the scalar loss `L = Σ w ⊙ S` with random weights `w`.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::random_uniform(3, 6, 1.0, &mut rng);
        let b = Matrix::random_uniform(4, 6, 1.0, &mut rng);
        let w = Matrix::random_uniform(3, 4, 1.0, &mut rng);
        let loss = |a: &Matrix, b: &Matrix| -> f32 {
            let mut kernel = CosineSimilarity::new();
            kernel.forward(a, b, false).hadamard(&w).sum()
        };
        let mut kernel = CosineSimilarity::new();
        let _ = kernel.forward(&a, &b, true);
        let (ga, gb) = kernel.backward(&w);
        let eps = 1e-3f32;
        for _ in 0..10 {
            let r = rng.gen_range(0..3);
            let c = rng.gen_range(0..6);
            let mut plus = a.clone();
            plus.set(r, c, plus.get(r, c) + eps);
            let mut minus = a.clone();
            minus.set(r, c, minus.get(r, c) - eps);
            let numeric = (loss(&plus, &b) - loss(&minus, &b)) / (2.0 * eps);
            assert!(
                (numeric - ga.get(r, c)).abs() < 5e-2,
                "grad_a mismatch at ({r},{c}): numeric {numeric} vs analytic {}",
                ga.get(r, c)
            );
        }
        for _ in 0..10 {
            let r = rng.gen_range(0..4);
            let c = rng.gen_range(0..6);
            let mut plus = b.clone();
            plus.set(r, c, plus.get(r, c) + eps);
            let mut minus = b.clone();
            minus.set(r, c, minus.get(r, c) - eps);
            let numeric = (loss(&a, &plus) - loss(&a, &minus)) / (2.0 * eps);
            assert!(
                (numeric - gb.get(r, c)).abs() < 5e-2,
                "grad_b mismatch at ({r},{c}): numeric {numeric} vs analytic {}",
                gb.get(r, c)
            );
        }
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_requires_forward() {
        let mut kernel = CosineSimilarity::new();
        let _ = kernel.backward(&Matrix::ones(1, 1));
    }

    #[test]
    fn temperature_scales_logits() {
        let mut temp = TemperatureScale::new(0.5);
        let sims = Matrix::from_rows(&[vec![0.2, -0.4]]);
        let logits = temp.forward(&sims, false);
        assert!((logits.get(0, 0) - 0.4).abs() < 1e-6);
        assert!((logits.get(0, 1) + 0.8).abs() < 1e-6);
        assert_eq!(temp.num_params(), 1);
        assert!(temp.is_learnable());
    }

    #[test]
    fn temperature_gradient_matches_finite_differences() {
        let sims = Matrix::from_rows(&[vec![0.3, -0.7], vec![0.1, 0.9]]);
        let upstream = Matrix::from_rows(&[vec![1.0, 2.0], vec![-1.0, 0.5]]);
        let k0 = 0.7f32;
        let mut temp = TemperatureScale::new(k0);
        let _ = temp.forward(&sims, true);
        let grad_sims = temp.backward(&upstream);
        // Analytic gradient of sims is upstream / K.
        assert!(grad_sims.max_abs_diff(&upstream.scale(1.0 / k0)) < 1e-6);
        // Finite differences for K on loss = Σ upstream ⊙ (sims / K).
        let loss = |k: f32| -> f32 { upstream.hadamard(&sims.scale(1.0 / k)).sum() };
        let eps = 1e-3;
        let numeric = (loss(k0 + eps) - loss(k0 - eps)) / (2.0 * eps);
        let mut analytic = 0.0;
        temp.visit_params(&mut |p| analytic = p.grad.get(0, 0));
        assert!((numeric - analytic).abs() < 1e-2);
    }

    #[test]
    fn fixed_temperature_has_no_params() {
        let mut temp = TemperatureScale::fixed(0.07);
        assert_eq!(temp.num_params(), 0);
        let mut visited = 0;
        temp.visit_params(&mut |_| visited += 1);
        assert_eq!(visited, 0);
    }

    #[test]
    fn clamp_enforces_lower_bound() {
        let mut temp = TemperatureScale::new(0.5);
        temp.k.values.set(0, 0, -3.0);
        temp.clamp();
        assert_eq!(temp.k(), TemperatureScale::MIN_K);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn rejects_non_positive_temperature() {
        let _ = TemperatureScale::new(0.0);
    }
}
