//! Learning-rate schedules.
//!
//! The paper optimises with AdamW plus a **cosine annealing** schedule
//! (Loshchilov & Hutter, SGDR); a step decay and a constant schedule are
//! provided for the ablation benches.

/// A learning-rate schedule: maps an epoch index to the learning rate to use
/// for that epoch.
pub trait LrSchedule {
    /// Learning rate for `epoch` (0-based) out of `total_epochs`.
    fn lr_at(&self, epoch: usize, total_epochs: usize) -> f32;

    /// Human-readable schedule name (for experiment logs).
    fn name(&self) -> &'static str;
}

/// A constant learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantLr {
    /// The learning rate returned for every epoch.
    pub lr: f32,
}

impl ConstantLr {
    /// Creates a constant schedule.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }
}

impl LrSchedule for ConstantLr {
    fn lr_at(&self, _epoch: usize, _total_epochs: usize) -> f32 {
        self.lr
    }

    fn name(&self) -> &'static str {
        "constant"
    }
}

/// Cosine annealing from `base_lr` down to `min_lr` over the full training
/// run (a single annealing cycle, no warm restarts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineAnnealingLr {
    /// Initial learning rate.
    pub base_lr: f32,
    /// Final learning rate reached at the last epoch.
    pub min_lr: f32,
}

impl CosineAnnealingLr {
    /// Creates a cosine annealing schedule decaying from `base_lr` to
    /// `min_lr`.
    pub fn new(base_lr: f32, min_lr: f32) -> Self {
        Self { base_lr, min_lr }
    }
}

impl LrSchedule for CosineAnnealingLr {
    fn lr_at(&self, epoch: usize, total_epochs: usize) -> f32 {
        if total_epochs <= 1 {
            return self.base_lr;
        }
        let t = epoch.min(total_epochs - 1) as f32 / (total_epochs - 1) as f32;
        self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
    }

    fn name(&self) -> &'static str {
        "cosine_annealing"
    }
}

/// Step decay: the learning rate is multiplied by `gamma` every `step_size`
/// epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepLr {
    /// Initial learning rate.
    pub base_lr: f32,
    /// Number of epochs between decays.
    pub step_size: usize,
    /// Multiplicative decay factor.
    pub gamma: f32,
}

impl StepLr {
    /// Creates a step-decay schedule.
    ///
    /// # Panics
    ///
    /// Panics if `step_size == 0`.
    pub fn new(base_lr: f32, step_size: usize, gamma: f32) -> Self {
        assert!(step_size > 0, "step size must be positive");
        Self {
            base_lr,
            step_size,
            gamma,
        }
    }
}

impl LrSchedule for StepLr {
    fn lr_at(&self, epoch: usize, _total_epochs: usize) -> f32 {
        self.base_lr * self.gamma.powi((epoch / self.step_size) as i32)
    }

    fn name(&self) -> &'static str {
        "step"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = ConstantLr::new(0.01);
        assert_eq!(s.lr_at(0, 10), 0.01);
        assert_eq!(s.lr_at(9, 10), 0.01);
        assert_eq!(s.name(), "constant");
    }

    #[test]
    fn cosine_starts_high_and_ends_low() {
        let s = CosineAnnealingLr::new(0.1, 0.001);
        assert!((s.lr_at(0, 10) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(9, 10) - 0.001).abs() < 1e-6);
        // Monotone non-increasing over a single cycle.
        let mut prev = f32::INFINITY;
        for e in 0..10 {
            let lr = s.lr_at(e, 10);
            assert!(lr <= prev + 1e-7);
            prev = lr;
        }
        // Midpoint is roughly the average of base and min.
        let mid = s.lr_at(5, 11);
        assert!((mid - 0.0505).abs() < 1e-3);
        assert_eq!(s.name(), "cosine_annealing");
    }

    #[test]
    fn cosine_degenerate_single_epoch() {
        let s = CosineAnnealingLr::new(0.1, 0.0);
        assert_eq!(s.lr_at(0, 1), 0.1);
        assert_eq!(s.lr_at(0, 0), 0.1);
    }

    #[test]
    fn step_decays_by_gamma() {
        let s = StepLr::new(1.0, 3, 0.1);
        assert_eq!(s.lr_at(0, 100), 1.0);
        assert_eq!(s.lr_at(2, 100), 1.0);
        assert!((s.lr_at(3, 100) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(6, 100) - 0.01).abs() < 1e-7);
        assert_eq!(s.name(), "step");
    }

    #[test]
    #[should_panic(expected = "step size must be positive")]
    fn step_rejects_zero_step() {
        let _ = StepLr::new(1.0, 0, 0.5);
    }
}
