//! Layers: linear projections, activations, sequential containers and MLPs.

use crate::init::Init;
use crate::param::ParamTensor;
use rand::Rng;
use serde::{de, DeError, Deserialize, Serialize, Value};
use tensor::Matrix;

/// A differentiable layer operating on batched row-major inputs
/// (`batch × features`).
///
/// The forward pass is split into two receivers so that a *frozen* model can
/// be shared immutably between threads while training keeps its mutable
/// handle:
///
/// * [`Layer::infer`] takes `&self`, touches no caches, and is safe to call
///   concurrently from any number of threads;
/// * [`Layer::forward_train`] takes `&mut self` and caches whatever the
///   layer needs so a subsequent [`Layer::backward`] can compute gradients;
///   the usual training step is therefore
///   `forward_train → loss → backward → optimizer.step`.
///
/// Both paths apply the exact same arithmetic in the same order, so their
/// outputs are bit-identical.
///
/// Parameter visitation order is deterministic, which lets optimizers attach
/// per-parameter state (moment buffers) to visitation slots.
pub trait Layer {
    /// Immutable inference forward: runs the layer on a batch without
    /// caching anything. Bit-identical to [`Layer::forward_train`].
    fn infer(&self, input: &Matrix) -> Matrix;

    /// Training forward: runs the layer on a batch and caches activations
    /// for [`Layer::backward`].
    fn forward_train(&mut self, input: &Matrix) -> Matrix;

    /// Convenience dispatcher retained for training-loop call sites:
    /// `forward(x, true)` is [`Layer::forward_train`], `forward(x, false)`
    /// is [`Layer::infer`].
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        if train {
            self.forward_train(input)
        } else {
            self.infer(input)
        }
    }

    /// Back-propagates `grad_output` (gradient of the loss with respect to
    /// this layer's output) and returns the gradient with respect to the
    /// layer's input. Parameter gradients are *accumulated* into the layer's
    /// [`ParamTensor`]s.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before [`Layer::forward_train`].
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;

    /// Visits every trainable parameter in a fixed order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamTensor));

    /// Read-only visitation of every trainable parameter, in the same fixed
    /// order as [`Layer::visit_params`]; lets accounting run on `&self`
    /// (e.g. through a shared frozen model).
    fn visit_params_ref(&self, f: &mut dyn FnMut(&ParamTensor));

    /// Number of trainable scalar parameters.
    fn num_params(&self) -> usize {
        let mut n = 0;
        self.visit_params_ref(&mut |p| n += p.len());
        n
    }

    /// Zeroes all accumulated gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

/// A fully-connected layer `y = x·W + b`.
///
/// This is the paper's `FC` projection layer (backbone features → `d`), and
/// the building block of the trainable-MLP attribute-encoder baseline.
///
/// # Example
///
/// ```
/// use nn::{Layer, Linear, init::Init};
/// use tensor::Matrix;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut fc = Linear::new(16, 8, Init::XavierUniform, &mut rng);
/// assert_eq!(fc.num_params(), 16 * 8 + 8);
/// let y = fc.forward(&Matrix::ones(4, 16), false);
/// assert_eq!(y.shape(), (4, 8));
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamTensor,
    bias: ParamTensor,
    input_cache: Option<Matrix>,
}

impl Linear {
    /// Creates a layer mapping `in_features` to `out_features`, with weights
    /// drawn from `init` and a zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(
        in_features: usize,
        out_features: usize,
        init: Init,
        rng: &mut R,
    ) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "layer dims must be positive"
        );
        Self {
            weight: ParamTensor::new(init.build(in_features, out_features, rng)),
            bias: ParamTensor::new(Matrix::zeros(1, out_features)),
            input_cache: None,
        }
    }

    /// Builds a layer from an explicit weight matrix (`in × out`) and bias
    /// row (`1 × out`). Useful for tests and for loading saved models.
    ///
    /// # Panics
    ///
    /// Panics if `bias.cols() != weight.cols()` or `bias.rows() != 1`.
    pub fn from_parts(weight: Matrix, bias: Matrix) -> Self {
        assert_eq!(bias.rows(), 1, "bias must be a single row");
        assert_eq!(
            bias.cols(),
            weight.cols(),
            "bias width must match weight output dim"
        );
        Self {
            weight: ParamTensor::new(weight),
            bias: ParamTensor::new(bias),
            input_cache: None,
        }
    }

    /// Input feature dimensionality.
    pub fn in_features(&self) -> usize {
        self.weight.values.rows()
    }

    /// Output feature dimensionality.
    pub fn out_features(&self) -> usize {
        self.weight.values.cols()
    }

    /// Borrow of the weight parameter.
    pub fn weight(&self) -> &ParamTensor {
        &self.weight
    }

    /// Borrow of the bias parameter.
    pub fn bias(&self) -> &ParamTensor {
        &self.bias
    }
}

/// Checkpoint format: only the weight and bias *values* are persisted.
/// Gradient accumulators and the forward activation cache are transient
/// training state and are rebuilt (zeroed / empty) on load.
impl Serialize for Linear {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("weight".to_string(), self.weight.values.to_value()),
            ("bias".to_string(), self.bias.values.to_value()),
        ])
    }
}

impl Deserialize for Linear {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = de::expect_object(value, "Linear")?;
        let weight: Matrix = de::field(entries, "weight", "Linear")?;
        let bias: Matrix = de::field(entries, "bias", "Linear")?;
        if bias.rows() != 1 || bias.cols() != weight.cols() {
            return Err(DeError::new(format!(
                "bias shape {:?} does not match weight shape {:?}",
                bias.shape(),
                weight.shape()
            ))
            .in_field("Linear"));
        }
        if weight.rows() == 0 || weight.cols() == 0 {
            return Err(DeError::new("layer dimensions must be positive").in_field("Linear"));
        }
        Ok(Self::from_parts(weight, bias))
    }
}

impl Layer for Linear {
    fn infer(&self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.in_features(),
            "linear layer expected {} input features, got {}",
            self.in_features(),
            input.cols()
        );
        input
            .matmul(&self.weight.values)
            .add_row_broadcast(self.bias.values.row(0))
    }

    fn forward_train(&mut self, input: &Matrix) -> Matrix {
        let out = self.infer(input);
        self.input_cache = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .input_cache
            .as_ref()
            .expect("backward called before forward(train=true)");
        assert_eq!(
            grad_output.rows(),
            input.rows(),
            "batch size mismatch in backward"
        );
        // dW = Xᵀ · dY, db = Σ_batch dY, dX = dY · Wᵀ
        let grad_w = input.matmul_tn(grad_output);
        self.weight.accumulate_grad(&grad_w);
        let grad_b = Matrix::from_vec(1, grad_output.cols(), grad_output.sum_rows().into_vec());
        self.bias.accumulate_grad(&grad_b);
        grad_output.matmul_nt(&self.weight.values)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamTensor)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&ParamTensor)) {
        f(&self.weight);
        f(&self.bias);
    }
}

/// Supported pointwise non-linearities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActivationKind {
    /// Rectified linear unit `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (no-op) — useful to terminate an [`Mlp`] without a
    /// non-linearity.
    Identity,
}

/// A stateless pointwise activation layer.
#[derive(Debug, Clone)]
pub struct Activation {
    kind: ActivationKind,
    input_cache: Option<Matrix>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Self {
            kind,
            input_cache: None,
        }
    }

    /// The activation kind.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }
}

impl Layer for Activation {
    fn infer(&self, input: &Matrix) -> Matrix {
        match self.kind {
            ActivationKind::Relu => input.map(|x| x.max(0.0)),
            ActivationKind::Tanh => input.map(f32::tanh),
            ActivationKind::Identity => input.clone(),
        }
    }

    fn forward_train(&mut self, input: &Matrix) -> Matrix {
        let out = self.infer(input);
        self.input_cache = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .input_cache
            .as_ref()
            .expect("backward called before forward(train=true)");
        match self.kind {
            ActivationKind::Relu => {
                grad_output.zip_with(input, |g, x| if x > 0.0 { g } else { 0.0 })
            }
            ActivationKind::Tanh => grad_output.zip_with(input, |g, x| {
                let t = x.tanh();
                g * (1.0 - t * t)
            }),
            ActivationKind::Identity => grad_output.clone(),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut ParamTensor)) {}

    fn visit_params_ref(&self, _f: &mut dyn FnMut(&ParamTensor)) {}
}

/// A sequential container applying its child layers in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer + Send>>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer, returning `self` for chaining.
    #[must_use]
    pub fn push(mut self, layer: impl Layer + Send + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Layer for Sequential {
    fn infer(&self, input: &Matrix) -> Matrix {
        let mut current = input.clone();
        for layer in &self.layers {
            current = layer.infer(&current);
        }
        current
    }

    fn forward_train(&mut self, input: &Matrix) -> Matrix {
        let mut current = input.clone();
        for layer in &mut self.layers {
            current = layer.forward_train(&current);
        }
        current
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut grad = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamTensor)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&ParamTensor)) {
        for layer in &self.layers {
            layer.visit_params_ref(f);
        }
    }
}

/// A multi-layer perceptron: a chain of [`Linear`] layers with a shared
/// hidden activation, terminated by a linear output layer.
///
/// The paper's *Trainable-MLP* attribute-encoder baseline is a 2-layer MLP
/// mapping the `α`-dimensional class attribute vector to the shared embedding
/// dimension `d`.
///
/// # Example
///
/// ```
/// use nn::{ActivationKind, Layer, Mlp};
/// use rand::SeedableRng;
/// use tensor::Matrix;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut mlp = Mlp::new(&[312, 1024, 1536], ActivationKind::Relu, &mut rng);
/// let out = mlp.forward(&Matrix::ones(3, 312), false);
/// assert_eq!(out.shape(), (3, 1536));
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    /// The linear layers, one per consecutive `dims` pair. Stored concretely
    /// (not behind `dyn Layer`) so checkpointing can reach the weights
    /// through `&self`.
    layers: Vec<Linear>,
    /// One activation between each pair of consecutive linear layers
    /// (`layers.len() - 1` of them); the output layer is purely linear.
    hidden_activations: Vec<Activation>,
    activation: ActivationKind,
    dims: Vec<usize>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths (`dims[0]` is the input
    /// dimensionality, `dims.last()` the output dimensionality). Hidden
    /// layers use `activation`; the output layer is purely linear.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given or any width is zero.
    pub fn new<R: Rng + ?Sized>(dims: &[usize], activation: ActivationKind, rng: &mut R) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        assert!(dims.iter().all(|&d| d > 0), "layer widths must be positive");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        let mut hidden_activations = Vec::with_capacity(dims.len() - 2);
        for i in 0..dims.len() - 1 {
            let init = if i + 2 == dims.len() {
                Init::XavierUniform
            } else {
                Init::KaimingUniform
            };
            layers.push(Linear::new(dims[i], dims[i + 1], init, rng));
            if i + 2 != dims.len() {
                hidden_activations.push(Activation::new(activation));
            }
        }
        Self {
            layers,
            hidden_activations,
            activation,
            dims: dims.to_vec(),
        }
    }

    /// The layer widths this MLP was built with.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The shared hidden activation kind.
    pub fn activation(&self) -> ActivationKind {
        self.activation
    }

    /// The linear layers in forward order (used by checkpointing).
    pub fn linear_layers(&self) -> &[Linear] {
        &self.layers
    }
}

impl Layer for Mlp {
    fn infer(&self, input: &Matrix) -> Matrix {
        let mut current = input.clone();
        for i in 0..self.layers.len() {
            current = self.layers[i].infer(&current);
            if let Some(act) = self.hidden_activations.get(i) {
                current = act.infer(&current);
            }
        }
        current
    }

    fn forward_train(&mut self, input: &Matrix) -> Matrix {
        let mut current = input.clone();
        for i in 0..self.layers.len() {
            current = self.layers[i].forward_train(&current);
            if let Some(act) = self.hidden_activations.get_mut(i) {
                current = act.forward_train(&current);
            }
        }
        current
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut grad = grad_output.clone();
        for i in (0..self.layers.len()).rev() {
            if let Some(act) = self.hidden_activations.get_mut(i) {
                grad = act.backward(&grad);
            }
            grad = self.layers[i].backward(&grad);
        }
        grad
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut ParamTensor)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&ParamTensor)) {
        for layer in &self.layers {
            layer.visit_params_ref(f);
        }
    }
}

/// Checkpoint format: widths, activation kind and the per-layer weights.
impl Serialize for Mlp {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("dims".to_string(), self.dims.to_value()),
            ("activation".to_string(), self.activation.to_value()),
            ("layers".to_string(), self.layers.to_value()),
        ])
    }
}

impl Deserialize for Mlp {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = de::expect_object(value, "Mlp")?;
        let dims: Vec<usize> = de::field(entries, "dims", "Mlp")?;
        let activation: ActivationKind = de::field(entries, "activation", "Mlp")?;
        let layers: Vec<Linear> = de::field(entries, "layers", "Mlp")?;
        if dims.len() < 2 || dims.contains(&0) {
            return Err(
                DeError::new("MLP widths must be at least two positive dims").in_field("Mlp"),
            );
        }
        if layers.len() != dims.len() - 1 {
            return Err(DeError::new(format!(
                "expected {} layers for {} widths, got {}",
                dims.len() - 1,
                dims.len(),
                layers.len()
            ))
            .in_field("Mlp"));
        }
        for (i, layer) in layers.iter().enumerate() {
            if layer.in_features() != dims[i] || layer.out_features() != dims[i + 1] {
                return Err(DeError::new(format!(
                    "layer {i} maps {}→{}, expected {}→{}",
                    layer.in_features(),
                    layer.out_features(),
                    dims[i],
                    dims[i + 1]
                ))
                .in_field("Mlp"));
            }
        }
        let hidden_activations = (0..layers.len().saturating_sub(1))
            .map(|_| Activation::new(activation))
            .collect();
        Ok(Self {
            layers,
            hidden_activations,
            activation,
            dims,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference check of a layer's input gradient on a scalar loss
    /// `L = Σ out²/2` (so dL/dout = out).
    fn check_input_gradient(layer: &mut dyn Layer, input: &Matrix, tol: f32) {
        let out = layer.forward(input, true);
        let grad_in = layer.backward(&out);
        let eps = 1e-3f32;
        let mut worst: f32 = 0.0;
        for idx in 0..input.len().min(20) {
            let r = idx / input.cols();
            let c = idx % input.cols();
            let mut plus = input.clone();
            plus.set(r, c, plus.get(r, c) + eps);
            let mut minus = input.clone();
            minus.set(r, c, minus.get(r, c) - eps);
            let loss = |m: &Matrix, layer: &mut dyn Layer| -> f32 {
                let o = layer.forward(m, false);
                0.5 * o.as_slice().iter().map(|x| x * x).sum::<f32>()
            };
            let numeric = (loss(&plus, layer) - loss(&minus, layer)) / (2.0 * eps);
            worst = worst.max((numeric - grad_in.get(r, c)).abs());
        }
        assert!(worst < tol, "worst finite-difference error {worst}");
    }

    #[test]
    fn linear_forward_known_values() {
        let weight = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]);
        let bias = Matrix::from_rows(&[vec![10.0, 20.0]]);
        let mut fc = Linear::from_parts(weight, bias);
        let y = fc.forward(&Matrix::from_rows(&[vec![3.0, 4.0]]), false);
        assert_eq!(y.row(0), &[13.0, 28.0]);
        assert_eq!(fc.in_features(), 2);
        assert_eq!(fc.out_features(), 2);
    }

    #[test]
    fn linear_param_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let fc = Linear::new(2048, 1536, Init::XavierUniform, &mut rng);
        assert_eq!(fc.num_params(), 2048 * 1536 + 1536);
    }

    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut fc = Linear::new(6, 4, Init::XavierUniform, &mut rng);
        let x = Matrix::random_uniform(3, 6, 1.0, &mut rng);
        check_input_gradient(&mut fc, &x, 1e-2);
    }

    #[test]
    fn linear_weight_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut fc = Linear::new(4, 3, Init::XavierUniform, &mut rng);
        let x = Matrix::random_uniform(5, 4, 1.0, &mut rng);
        // Analytic gradient for loss = Σ out² / 2.
        let out = fc.forward(&x, true);
        fc.zero_grad();
        let _ = fc.backward(&out);
        let analytic = fc.weight().grad.clone();
        // Finite differences on one weight entry.
        let eps = 1e-3f32;
        let (wr, wc) = (1, 2);
        let loss_with_weight = |fc: &mut Linear, delta: f32| -> f32 {
            let mut w = fc.weight.values.clone();
            w.set(wr, wc, w.get(wr, wc) + delta);
            let saved = std::mem::replace(&mut fc.weight.values, w);
            let o = fc.forward(&x, false);
            fc.weight.values = saved;
            0.5 * o.as_slice().iter().map(|v| v * v).sum::<f32>()
        };
        let numeric =
            (loss_with_weight(&mut fc, eps) - loss_with_weight(&mut fc, -eps)) / (2.0 * eps);
        assert!((numeric - analytic.get(wr, wc)).abs() < 1e-2);
    }

    #[test]
    fn relu_forward_and_backward() {
        let mut act = Activation::new(ActivationKind::Relu);
        let x = Matrix::from_rows(&[vec![-1.0, 2.0]]);
        let y = act.forward(&x, true);
        assert_eq!(y.row(0), &[0.0, 2.0]);
        let grad = act.backward(&Matrix::from_rows(&[vec![5.0, 5.0]]));
        assert_eq!(grad.row(0), &[0.0, 5.0]);
        assert_eq!(act.kind(), ActivationKind::Relu);
    }

    #[test]
    fn tanh_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut act = Activation::new(ActivationKind::Tanh);
        let x = Matrix::random_uniform(2, 5, 1.0, &mut rng);
        check_input_gradient(&mut act, &x, 1e-2);
    }

    #[test]
    fn identity_activation_is_transparent() {
        let mut act = Activation::new(ActivationKind::Identity);
        let x = Matrix::from_rows(&[vec![1.5, -2.5]]);
        assert_eq!(act.forward(&x, true), x);
        let g = Matrix::from_rows(&[vec![0.1, 0.2]]);
        assert_eq!(act.backward(&g), g);
    }

    #[test]
    fn activation_has_no_params() {
        let act = Activation::new(ActivationKind::Relu);
        assert_eq!(act.num_params(), 0);
    }

    #[test]
    fn sequential_composes_layers() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = Sequential::new()
            .push(Linear::new(8, 16, Init::KaimingUniform, &mut rng))
            .push(Activation::new(ActivationKind::Relu))
            .push(Linear::new(16, 4, Init::XavierUniform, &mut rng));
        assert_eq!(model.len(), 3);
        assert!(!model.is_empty());
        let x = Matrix::random_uniform(2, 8, 1.0, &mut rng);
        let y = model.forward(&x, true);
        assert_eq!(y.shape(), (2, 4));
        let gx = model.backward(&Matrix::ones(2, 4));
        assert_eq!(gx.shape(), (2, 8));
        assert_eq!(model.num_params(), 8 * 16 + 16 + 16 * 4 + 4);
    }

    #[test]
    fn sequential_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut model = Sequential::new()
            .push(Linear::new(5, 7, Init::KaimingUniform, &mut rng))
            .push(Activation::new(ActivationKind::Tanh))
            .push(Linear::new(7, 3, Init::XavierUniform, &mut rng));
        let x = Matrix::random_uniform(2, 5, 1.0, &mut rng);
        check_input_gradient(&mut model, &x, 1e-2);
    }

    #[test]
    fn mlp_shapes_and_params() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mlp = Mlp::new(&[312, 128, 64], ActivationKind::Relu, &mut rng);
        assert_eq!(mlp.dims(), &[312, 128, 64]);
        let y = mlp.forward(&Matrix::ones(2, 312), false);
        assert_eq!(y.shape(), (2, 64));
        assert_eq!(mlp.num_params(), 312 * 128 + 128 + 128 * 64 + 64);
    }

    #[test]
    fn zero_grad_resets_accumulators() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut fc = Linear::new(3, 2, Init::KaimingUniform, &mut rng);
        let x = Matrix::ones(1, 3);
        let y = fc.forward(&x, true);
        let _ = fc.backward(&y);
        assert!(fc.weight().grad.frobenius_norm() > 0.0);
        fc.zero_grad();
        assert_eq!(fc.weight().grad.frobenius_norm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_without_forward_panics() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut fc = Linear::new(3, 2, Init::KaimingUniform, &mut rng);
        let _ = fc.backward(&Matrix::ones(1, 2));
    }

    #[test]
    #[should_panic(expected = "expected 4 input features")]
    fn linear_rejects_wrong_input_width() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut fc = Linear::new(4, 2, Init::KaimingUniform, &mut rng);
        let _ = fc.forward(&Matrix::ones(1, 5), false);
    }

    /// The immutable `infer` path must be bit-identical to the training
    /// forward and leave no cache behind (backward still panics).
    #[test]
    fn infer_is_bit_identical_to_forward_train_and_caches_nothing() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut mlp = Mlp::new(&[6, 5, 4], ActivationKind::Tanh, &mut rng);
        let x = Matrix::random_uniform(3, 6, 1.0, &mut rng);
        let inferred = mlp.infer(&x);
        let trained = mlp.forward_train(&x);
        assert_eq!(inferred.as_slice(), trained.as_slice());
        // A fresh clone that only ran `infer` has no activation cache.
        let fresh = {
            let mut rng = StdRng::seed_from_u64(11);
            Mlp::new(&[6, 5, 4], ActivationKind::Tanh, &mut rng)
        };
        let _ = fresh.infer(&x);
        let mut fresh = fresh;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fresh.backward(&Matrix::ones(3, 4))
        }));
        assert!(result.is_err(), "infer must not populate backward caches");
    }

    /// Read-only visitation mirrors the mutable order and powers the
    /// `&self` parameter count.
    #[test]
    fn visit_params_ref_matches_mutable_visitation() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut mlp = Mlp::new(&[8, 4, 2], ActivationKind::Relu, &mut rng);
        let mut mutable_shapes = Vec::new();
        mlp.visit_params(&mut |p| mutable_shapes.push(p.shape()));
        let mut ref_shapes = Vec::new();
        mlp.visit_params_ref(&mut |p| ref_shapes.push(p.shape()));
        assert_eq!(mutable_shapes, ref_shapes);
        let immutable = &mlp;
        assert_eq!(immutable.num_params(), 8 * 4 + 4 + 4 * 2 + 2);
    }
}
