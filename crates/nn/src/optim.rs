//! First-order optimizers: SGD (with momentum), Adam, and AdamW.
//!
//! The paper optimises with **AdamW at default settings** plus a cosine
//! annealing learning-rate schedule; SGD and Adam are provided for the
//! ablation benches and as baselines.
//!
//! Optimizers attach per-parameter state (momentum / moment buffers) to the
//! deterministic visitation order of [`crate::Layer::visit_params`], so the
//! same optimizer instance must always be used with the same model.

use crate::param::ParamTensor;
use tensor::Matrix;

/// A parameter walk: calls the inner closure once per [`ParamTensor`], in a
/// deterministic order, so optimizers can keep per-slot state.
pub type ParamVisitor<'a> = dyn FnMut(&mut dyn FnMut(&mut ParamTensor)) + 'a;

/// A first-order optimizer updating parameters from their accumulated
/// gradients.
pub trait Optimizer {
    /// Applies one update step to every parameter visited by `visit`, using
    /// learning rate `lr`. The `visit` closure must walk the parameters in
    /// the same order on every call.
    fn step(&mut self, lr: f32, visit: &mut ParamVisitor<'_>);

    /// Human-readable optimizer name (for experiment logs).
    fn name(&self) -> &'static str;
}

/// Convenience wrapper: runs one optimizer step over a [`crate::Layer`].
pub fn step_layer(optimizer: &mut dyn Optimizer, lr: f32, layer: &mut dyn crate::Layer) {
    optimizer.step(lr, &mut |f| layer.visit_params(f));
}

/// Stochastic gradient descent with optional momentum and decoupled weight
/// decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Creates plain SGD (no momentum, no weight decay).
    pub fn new() -> Self {
        Self::with_config(0.0, 0.0)
    }

    /// Creates SGD with the given momentum coefficient and (decoupled)
    /// weight decay.
    pub fn with_config(momentum: f32, weight_decay: f32) -> Self {
        Self {
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Default for Sgd {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, lr: f32, visit: &mut ParamVisitor<'_>) {
        let momentum = self.momentum;
        let weight_decay = self.weight_decay;
        let velocity = &mut self.velocity;
        let mut slot = 0usize;
        visit(&mut |p: &mut ParamTensor| {
            if velocity.len() <= slot {
                velocity.push(Matrix::zeros(p.values.rows(), p.values.cols()));
            }
            let v = &mut velocity[slot];
            debug_assert_eq!(v.shape(), p.values.shape(), "optimizer slot shape changed");
            for ((vel, &g), w) in v
                .as_mut_slice()
                .iter_mut()
                .zip(p.grad.as_slice())
                .zip(p.values.as_mut_slice())
            {
                *vel = momentum * *vel + g;
                *w -= lr * (*vel + weight_decay * *w);
            }
            slot += 1;
        });
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// Shared implementation of Adam-style updates.
#[derive(Debug, Clone)]
struct AdamState {
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl AdamState {
    fn new(beta1: f32, beta2: f32, eps: f32) -> Self {
        Self {
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// One Adam update; `decoupled_decay` selects AdamW (decay applied to the
    /// weights directly) versus classic Adam (decay folded into the gradient).
    fn step(
        &mut self,
        lr: f32,
        weight_decay: f32,
        decoupled_decay: bool,
        visit: &mut ParamVisitor<'_>,
    ) {
        self.t += 1;
        let t = self.t as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        let (beta1, beta2, eps) = (self.beta1, self.beta2, self.eps);
        let (m_bufs, v_bufs) = (&mut self.m, &mut self.v);
        let mut slot = 0usize;
        visit(&mut |p: &mut ParamTensor| {
            if m_bufs.len() <= slot {
                m_bufs.push(Matrix::zeros(p.values.rows(), p.values.cols()));
                v_bufs.push(Matrix::zeros(p.values.rows(), p.values.cols()));
            }
            let m = &mut m_bufs[slot];
            let v = &mut v_bufs[slot];
            debug_assert_eq!(m.shape(), p.values.shape(), "optimizer slot shape changed");
            for (((mi, vi), &gi), w) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice().iter_mut())
                .zip(p.grad.as_slice())
                .zip(p.values.as_mut_slice())
            {
                let g = if decoupled_decay {
                    gi
                } else {
                    gi + weight_decay * *w
                };
                *mi = beta1 * *mi + (1.0 - beta1) * g;
                *vi = beta2 * *vi + (1.0 - beta2) * g * g;
                let m_hat = *mi / bias1;
                let v_hat = *vi / bias2;
                let mut update = lr * m_hat / (v_hat.sqrt() + eps);
                if decoupled_decay {
                    update += lr * weight_decay * *w;
                }
                *w -= update;
            }
            slot += 1;
        });
    }
}

/// Classic Adam (Kingma & Ba) with L2 regularisation folded into the
/// gradient.
#[derive(Debug, Clone)]
pub struct Adam {
    state: AdamState,
    weight_decay: f32,
}

impl Adam {
    /// Creates Adam with the PyTorch default hyper-parameters
    /// (`β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`) and no weight decay.
    pub fn new() -> Self {
        Self::with_config(0.9, 0.999, 1e-8, 0.0)
    }

    /// Creates Adam with explicit hyper-parameters.
    pub fn with_config(beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        Self {
            state: AdamState::new(beta1, beta2, eps),
            weight_decay,
        }
    }
}

impl Default for Adam {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for Adam {
    fn step(&mut self, lr: f32, visit: &mut ParamVisitor<'_>) {
        self.state.step(lr, self.weight_decay, false, visit);
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

/// AdamW (Loshchilov & Hutter): Adam with *decoupled* weight decay — the
/// optimizer used by the paper.
#[derive(Debug, Clone)]
pub struct AdamW {
    state: AdamState,
    weight_decay: f32,
}

impl AdamW {
    /// Creates AdamW with the PyTorch default hyper-parameters
    /// (`β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`, `weight_decay = 0.01`).
    pub fn new() -> Self {
        Self::with_config(0.9, 0.999, 1e-8, 0.01)
    }

    /// Creates AdamW with explicit hyper-parameters.
    pub fn with_config(beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        Self {
            state: AdamState::new(beta1, beta2, eps),
            weight_decay,
        }
    }

    /// Creates AdamW with the default moments but a custom weight decay —
    /// the knob swept in Fig. 5 of the paper.
    pub fn with_weight_decay(weight_decay: f32) -> Self {
        Self::with_config(0.9, 0.999, 1e-8, weight_decay)
    }

    /// The configured (decoupled) weight decay.
    pub fn weight_decay(&self) -> f32 {
        self.weight_decay
    }
}

impl Default for AdamW {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, lr: f32, visit: &mut ParamVisitor<'_>) {
        self.state.step(lr, self.weight_decay, true, visit);
    }

    fn name(&self) -> &'static str {
        "adamw"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::layer::{Layer, Linear};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::Matrix;

    /// Minimises `f(w) = Σ (w - target)²/2` with the given optimizer; returns
    /// the final parameter values.
    fn minimise_quadratic(optimizer: &mut dyn Optimizer, lr: f32, steps: usize) -> ParamTensor {
        let target = Matrix::from_rows(&[vec![3.0, -2.0, 0.5]]);
        let mut param = ParamTensor::new(Matrix::zeros(1, 3));
        for _ in 0..steps {
            param.zero_grad();
            let grad = param.values.sub(&target);
            param.accumulate_grad(&grad);
            optimizer.step(lr, &mut |f| f(&mut param));
        }
        // Verify convergence toward the target.
        let err = param.values.sub(&target).frobenius_norm();
        assert!(
            err < 0.1,
            "{} did not converge: err {err}",
            optimizer.name()
        );
        param
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new();
        minimise_quadratic(&mut opt, 0.1, 200);
        assert_eq!(opt.name(), "sgd");
    }

    #[test]
    fn sgd_momentum_converges_faster_than_plain() {
        let target = Matrix::from_rows(&[vec![1.0]]);
        let run = |mut opt: Sgd| -> f32 {
            let mut p = ParamTensor::new(Matrix::zeros(1, 1));
            for _ in 0..20 {
                p.zero_grad();
                let grad = p.values.sub(&target);
                p.accumulate_grad(&grad);
                opt.step(0.05, &mut |f| f(&mut p));
            }
            p.values.sub(&target).frobenius_norm()
        };
        let plain = run(Sgd::new());
        let momentum = run(Sgd::with_config(0.9, 0.0));
        assert!(momentum < plain, "momentum {momentum} vs plain {plain}");
    }

    #[test]
    fn adam_and_adamw_converge_on_quadratic() {
        let mut adam = Adam::new();
        minimise_quadratic(&mut adam, 0.1, 300);
        assert_eq!(adam.name(), "adam");
        let mut adamw = AdamW::with_weight_decay(0.0);
        minimise_quadratic(&mut adamw, 0.1, 300);
        assert_eq!(adamw.name(), "adamw");
    }

    #[test]
    fn adamw_weight_decay_shrinks_weights() {
        // With zero gradient, AdamW's decoupled decay should shrink weights
        // toward zero while classic Adam (decay in gradient) also shrinks but
        // through the moment estimates.
        let mut p = ParamTensor::new(Matrix::filled(1, 4, 5.0));
        let mut opt = AdamW::with_weight_decay(0.1);
        assert_eq!(opt.weight_decay(), 0.1);
        for _ in 0..50 {
            p.zero_grad();
            opt.step(0.01, &mut |f| f(&mut p));
        }
        assert!(p.values.get(0, 0) < 5.0);
    }

    #[test]
    fn step_layer_trains_linear_regression() {
        let mut rng = StdRng::seed_from_u64(3);
        // Ground truth: y = x·W* with W* known.
        let w_true = Matrix::from_rows(&[vec![2.0, -1.0], vec![0.5, 1.5], vec![-0.3, 0.7]]);
        let x = Matrix::random_uniform(64, 3, 1.0, &mut rng);
        let y = x.matmul(&w_true);
        let mut model = Linear::new(3, 2, Init::XavierUniform, &mut rng);
        let mut opt = AdamW::with_weight_decay(0.0);
        let mut last_loss = f32::INFINITY;
        for _ in 0..400 {
            model.zero_grad();
            let pred = model.forward(&x, true);
            let diff = pred.sub(&y);
            let loss = 0.5 * diff.frobenius_norm().powi(2) / 64.0;
            let grad = diff.scale(1.0 / 64.0);
            let _ = model.backward(&grad);
            step_layer(&mut opt, 0.05, &mut model);
            last_loss = loss;
        }
        assert!(last_loss < 1e-3, "regression did not converge: {last_loss}");
        assert!(model.weight().values.max_abs_diff(&w_true) < 0.05);
    }

    #[test]
    fn optimizer_state_grows_one_slot_per_param() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = Linear::new(4, 4, Init::KaimingUniform, &mut rng);
        let mut opt = Adam::new();
        let x = Matrix::ones(1, 4);
        let out = model.forward(&x, true);
        let _ = model.backward(&out);
        step_layer(&mut opt, 0.001, &mut model);
        assert_eq!(opt.state.m.len(), 2); // weight + bias
        assert_eq!(opt.state.v.len(), 2);
    }
}
