//! Loss functions used by the three training phases of the paper.
//!
//! * Phase II (attribute extraction) uses a **weighted binary cross entropy**
//!   between the similarity vector `q = cossim(γ(x), B)` and the ground-truth
//!   attribute indicators, with positive-class weights compensating for the
//!   heavy imbalance between active and inactive attributes.
//! * Phase III (zero-shot classification) uses the standard **cross entropy**
//!   between the class logits `p = cossim(γ(x), ϕ)/K` and the ground-truth
//!   class index.

use tensor::ops::{log_sum_exp, sigmoid, softmax};
use tensor::Matrix;

/// The result of evaluating a loss on a batch: the scalar loss value (mean
/// over the batch) and the gradient with respect to the logits.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient of the mean loss with respect to the logits
    /// (same shape as the logits).
    pub grad: Matrix,
}

/// Multi-class cross entropy over a batch of logits.
///
/// `logits` is `B×C`; `targets` holds one class index per batch row.
/// The returned gradient is `(softmax(logits) − one_hot(target)) / B`.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or any target index is out of
/// range.
///
/// # Example
///
/// ```
/// use tensor::Matrix;
///
/// let logits = Matrix::from_rows(&[vec![5.0, -5.0]]);
/// let out = nn::loss::cross_entropy(&logits, &[0]);
/// assert!(out.loss < 0.01);
/// ```
pub fn cross_entropy(logits: &Matrix, targets: &[usize]) -> LossOutput {
    assert_eq!(
        targets.len(),
        logits.rows(),
        "one target per batch row required ({} vs {})",
        targets.len(),
        logits.rows()
    );
    let batch = logits.rows() as f32;
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    let mut total = 0.0f32;
    for (r, &target) in targets.iter().enumerate() {
        assert!(
            target < logits.cols(),
            "target {target} out of range for {} classes",
            logits.cols()
        );
        let row = logits.row(r);
        let lse = log_sum_exp(row);
        total += lse - row[target];
        let probs = softmax(row);
        let grad_row = grad.row_mut(r);
        for (j, (&p, g)) in probs.iter().zip(grad_row.iter_mut()).enumerate() {
            *g = (p - if j == target { 1.0 } else { 0.0 }) / batch;
        }
    }
    LossOutput {
        loss: total / batch,
        grad,
    }
}

/// Binary cross entropy with logits and per-attribute positive weights.
///
/// `logits` and `targets` are `B×α`; `targets` entries must lie in `[0, 1]`
/// (soft targets — the continuous CUB attribute strengths — are allowed).
/// `pos_weight` has one weight per attribute column; the per-element loss is
///
/// ```text
/// -( w·t·log σ(x) + (1−t)·log(1−σ(x)) )
/// ```
///
/// averaged over all `B·α` elements, which matches
/// `torch.nn.BCEWithLogitsLoss(pos_weight=…)`.
///
/// # Panics
///
/// Panics if the shapes disagree or `pos_weight.len() != logits.cols()`.
pub fn weighted_bce_with_logits(
    logits: &Matrix,
    targets: &Matrix,
    pos_weight: &[f32],
) -> LossOutput {
    assert_eq!(
        logits.shape(),
        targets.shape(),
        "logits and targets must have the same shape"
    );
    assert_eq!(
        pos_weight.len(),
        logits.cols(),
        "one positive weight per attribute required"
    );
    let n = (logits.rows() * logits.cols()) as f32;
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    let mut total = 0.0f32;
    for r in 0..logits.rows() {
        let x_row = logits.row(r);
        let t_row = targets.row(r);
        let g_row = grad.row_mut(r);
        for (((&x, &t), &w), g) in x_row
            .iter()
            .zip(t_row.iter())
            .zip(pos_weight.iter())
            .zip(g_row.iter_mut())
        {
            debug_assert!((0.0..=1.0).contains(&t), "targets must lie in [0, 1]");
            let s = sigmoid(x);
            // Numerically stable log terms.
            let log_s = -softplus(-x);
            let log_1ms = -softplus(x);
            total += -(w * t * log_s + (1.0 - t) * log_1ms);
            // d/dx [-(w t log σ + (1-t) log(1-σ))] = s(w t + 1 - t) - w t
            *g = (s * (w * t + 1.0 - t) - w * t) / n;
        }
    }
    LossOutput {
        loss: total / n,
        grad,
    }
}

/// Unweighted binary cross entropy with logits (all positive weights = 1).
///
/// # Panics
///
/// Panics if the shapes disagree.
pub fn bce_with_logits(logits: &Matrix, targets: &Matrix) -> LossOutput {
    let weights = vec![1.0f32; logits.cols()];
    weighted_bce_with_logits(logits, targets, &weights)
}

/// Computes per-attribute positive weights `(#negatives / #positives)` from a
/// matrix of (possibly soft) attribute targets, clamping the ratio into
/// `[1, max_weight]`.
///
/// This is the usual recipe for countering the class imbalance called out in
/// §III-A of the paper (most attribute values are inactive for any given
/// image).
///
/// # Panics
///
/// Panics if `targets` has zero rows.
pub fn positive_weights_from_targets(targets: &Matrix, max_weight: f32) -> Vec<f32> {
    assert!(targets.rows() > 0, "need at least one target row");
    let rows = targets.rows() as f32;
    (0..targets.cols())
        .map(|c| {
            let positives: f32 = (0..targets.rows()).map(|r| targets.get(r, c)).sum();
            let negatives = rows - positives;
            if positives <= 0.0 {
                max_weight
            } else {
                (negatives / positives).clamp(1.0, max_weight)
            }
        })
        .collect()
}

/// Numerically stable `log(1 + e^x)`.
fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        (1.0 + x.exp()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn cross_entropy_perfect_prediction_is_small() {
        let logits = Matrix::from_rows(&[vec![10.0, -10.0, -10.0]]);
        let out = cross_entropy(&logits, &[0]);
        assert!(out.loss < 1e-4);
        // Gradient is ≈ 0 for a saturated correct prediction.
        assert!(out.grad.frobenius_norm() < 1e-3);
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Matrix::zeros(2, 4);
        let out = cross_entropy(&logits, &[1, 3]);
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient sums to zero per row.
        for r in 0..2 {
            let s: f32 = out.grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let logits = Matrix::random_uniform(3, 5, 2.0, &mut rng);
        let targets = [2usize, 0, 4];
        let out = cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for _ in 0..10 {
            let r = rng.gen_range(0..3);
            let c = rng.gen_range(0..5);
            let mut plus = logits.clone();
            plus.set(r, c, plus.get(r, c) + eps);
            let mut minus = logits.clone();
            minus.set(r, c, minus.get(r, c) - eps);
            let numeric = (cross_entropy(&plus, &targets).loss
                - cross_entropy(&minus, &targets).loss)
                / (2.0 * eps);
            assert!(
                (numeric - out.grad.get(r, c)).abs() < 1e-2,
                "mismatch at ({r},{c})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_target() {
        let logits = Matrix::zeros(1, 3);
        let _ = cross_entropy(&logits, &[3]);
    }

    #[test]
    fn bce_perfect_prediction_is_small() {
        let logits = Matrix::from_rows(&[vec![12.0, -12.0]]);
        let targets = Matrix::from_rows(&[vec![1.0, 0.0]]);
        let out = bce_with_logits(&logits, &targets);
        assert!(out.loss < 1e-4);
    }

    #[test]
    fn weighted_bce_upweights_positives() {
        let logits = Matrix::from_rows(&[vec![0.0, 0.0]]);
        let targets = Matrix::from_rows(&[vec![1.0, 0.0]]);
        let unweighted = bce_with_logits(&logits, &targets);
        let weighted = weighted_bce_with_logits(&logits, &targets, &[4.0, 4.0]);
        // Positive column contributes 4× more loss under the weighting.
        assert!(weighted.loss > unweighted.loss);
        // Gradient on the positive logit is 4× stronger (and negative).
        assert!((weighted.grad.get(0, 0) / unweighted.grad.get(0, 0) - 4.0).abs() < 1e-4);
    }

    #[test]
    fn weighted_bce_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let logits = Matrix::random_uniform(2, 6, 2.0, &mut rng);
        let targets = Matrix::random_uniform(2, 6, 0.5, &mut rng).map(|x| x.abs().min(1.0));
        let weights: Vec<f32> = (0..6).map(|i| 1.0 + i as f32).collect();
        let out = weighted_bce_with_logits(&logits, &targets, &weights);
        let eps = 1e-3f32;
        for _ in 0..12 {
            let r = rng.gen_range(0..2);
            let c = rng.gen_range(0..6);
            let mut plus = logits.clone();
            plus.set(r, c, plus.get(r, c) + eps);
            let mut minus = logits.clone();
            minus.set(r, c, minus.get(r, c) - eps);
            let numeric = (weighted_bce_with_logits(&plus, &targets, &weights).loss
                - weighted_bce_with_logits(&minus, &targets, &weights).loss)
                / (2.0 * eps);
            assert!(
                (numeric - out.grad.get(r, c)).abs() < 1e-2,
                "mismatch at ({r},{c}): numeric {numeric} vs {}",
                out.grad.get(r, c)
            );
        }
    }

    #[test]
    fn positive_weights_reflect_imbalance() {
        // Column 0: 1 positive out of 10; column 1: 5 of 10; column 2: none.
        let mut targets = Matrix::zeros(10, 3);
        targets.set(0, 0, 1.0);
        for r in 0..5 {
            targets.set(r, 1, 1.0);
        }
        let w = positive_weights_from_targets(&targets, 50.0);
        assert!((w[0] - 9.0).abs() < 1e-5);
        assert!((w[1] - 1.0).abs() < 1e-5);
        assert_eq!(w[2], 50.0);
    }

    #[test]
    fn positive_weights_clamped_to_max() {
        let mut targets = Matrix::zeros(100, 1);
        targets.set(0, 0, 1.0);
        let w = positive_weights_from_targets(&targets, 10.0);
        assert_eq!(w[0], 10.0);
    }

    #[test]
    fn softplus_stability() {
        assert!((softplus(0.0) - (2.0f32).ln()).abs() < 1e-6);
        assert!((softplus(30.0) - 30.0).abs() < 1e-4);
        assert!(softplus(-30.0) < 1e-9);
    }
}
