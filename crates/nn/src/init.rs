//! Weight-initialisation schemes.

use rand::Rng;
use tensor::Matrix;

/// Initialisation scheme for dense weight matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Kaiming/He uniform: `U(-√(6/fan_in), √(6/fan_in))`; the default for
    /// layers followed by a ReLU.
    KaimingUniform,
    /// Xavier/Glorot uniform: `U(-√(6/(fan_in+fan_out)), …)`; used for linear
    /// projections without a following non-linearity (the FC layer of the
    /// image encoder).
    XavierUniform,
    /// All zeros (used for bias vectors and for tests).
    Zeros,
}

impl Init {
    /// Builds a `fan_in × fan_out` weight matrix under this scheme.
    pub fn build<R: Rng + ?Sized>(self, fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
        match self {
            Init::KaimingUniform => {
                let bound = (6.0 / fan_in.max(1) as f32).sqrt();
                Matrix::random_uniform(fan_in, fan_out, bound, rng)
            }
            Init::XavierUniform => {
                let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                Matrix::random_uniform(fan_in, fan_out, bound, rng)
            }
            Init::Zeros => Matrix::zeros(fan_in, fan_out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_bound_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = Init::KaimingUniform.build(100, 50, &mut rng);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= bound));
        // Spread should use most of the range.
        assert!(w.as_slice().iter().any(|&x| x.abs() > bound * 0.5));
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = Init::XavierUniform.build(30, 70, &mut rng);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn zeros_init() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Init::Zeros.build(4, 4, &mut rng);
        assert_eq!(w.sum(), 0.0);
    }

    #[test]
    fn mean_is_near_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = Init::KaimingUniform.build(200, 200, &mut rng);
        assert!(w.mean().abs() < 0.01);
    }
}
