//! Minimal trainable-layer substrate for the HDC-ZSC reproduction.
//!
//! The paper trains only small dense components on top of a frozen (or
//! slowly-adapting) backbone: the FC projection of the image encoder, the
//! optional trainable-MLP attribute encoder, and a learnable temperature in
//! the similarity kernel. This crate provides exactly the machinery those
//! components need — no autograd graph, just explicit forward/backward layers
//! with deterministic parameter visitation so optimizers can keep per-slot
//! state:
//!
//! * [`Linear`], [`Activation`], [`Sequential`] and [`Mlp`] layers
//!   implementing the [`Layer`] trait.
//! * Loss functions used by the paper: [`loss::cross_entropy`] (phase III)
//!   and [`loss::weighted_bce_with_logits`] (phase II, with per-attribute
//!   positive weights to counter class imbalance).
//! * A differentiable batched [`cosine`] similarity with gradients for both
//!   operands, plus temperature scaling (the `1/K` factor of the paper's
//!   Eq. 1).
//! * Optimizers ([`Sgd`], [`Adam`], [`AdamW`]) and learning-rate schedules
//!   ([`CosineAnnealingLr`], [`StepLr`], [`ConstantLr`]) mirroring the
//!   paper's AdamW + cosine-annealing setup.
//!
//! # Example
//!
//! ```
//! use nn::{Layer, Linear, init};
//! use tensor::Matrix;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut fc = Linear::new(8, 4, init::Init::KaimingUniform, &mut rng);
//! let x = Matrix::ones(2, 8);
//! let y = fc.forward(&x, true);
//! assert_eq!(y.shape(), (2, 4));
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cosine;
pub mod init;
pub mod layer;
pub mod loss;
pub mod optim;
pub mod param;
pub mod scheduler;

pub use cosine::{CosineSimilarity, TemperatureScale};
pub use layer::{Activation, ActivationKind, Layer, Linear, Mlp, Sequential};
pub use loss::LossOutput;
pub use optim::{Adam, AdamW, Optimizer, Sgd};
pub use param::ParamTensor;
pub use scheduler::{ConstantLr, CosineAnnealingLr, LrSchedule, StepLr};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<crate::Linear>();
        assert_send::<crate::Mlp>();
        assert_send::<crate::AdamW>();
    }
}
