//! Trainable parameter tensors: a value matrix paired with its gradient
//! accumulator.

use serde::{Deserialize, Serialize};
use tensor::Matrix;

/// A trainable parameter: a dense value matrix together with a gradient
/// accumulator of the same shape.
///
/// Layers expose their parameters to optimizers through
/// [`crate::Layer::visit_params`], which walks the parameters in a fixed,
/// deterministic order so optimizers can associate per-parameter state (e.g.
/// Adam moment estimates) with a visitation slot.
///
/// # Example
///
/// ```
/// use nn::ParamTensor;
/// use tensor::Matrix;
///
/// let mut p = ParamTensor::new(Matrix::zeros(2, 3));
/// assert_eq!(p.len(), 6);
/// p.grad.set(0, 0, 1.0);
/// p.zero_grad();
/// assert_eq!(p.grad.get(0, 0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamTensor {
    /// Current parameter values.
    pub values: Matrix,
    /// Accumulated gradient of the loss with respect to [`ParamTensor::values`].
    pub grad: Matrix,
}

impl ParamTensor {
    /// Wraps a value matrix, initialising the gradient to zeros of the same
    /// shape.
    pub fn new(values: Matrix) -> Self {
        let grad = Matrix::zeros(values.rows(), values.cols());
        Self { values, grad }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the parameter holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Shape of the parameter.
    pub fn shape(&self) -> (usize, usize) {
        self.values.shape()
    }

    /// Resets the gradient accumulator to zero.
    pub fn zero_grad(&mut self) {
        self.grad.map_inplace(|_| 0.0);
    }

    /// Accumulates `delta` into the gradient.
    ///
    /// # Panics
    ///
    /// Panics if `delta` has a different shape.
    pub fn accumulate_grad(&mut self, delta: &Matrix) {
        self.grad.add_scaled_inplace(delta, 1.0);
    }

    /// L2 norm of the gradient (used for gradient clipping).
    pub fn grad_norm(&self) -> f32 {
        self.grad.frobenius_norm()
    }

    /// Scales the gradient in place (used for gradient clipping).
    pub fn scale_grad(&mut self, factor: f32) {
        self.grad.map_inplace(|g| g * factor);
    }
}

/// Clips the global gradient norm of a set of parameters to `max_norm`,
/// returning the pre-clip global norm.
///
/// This mirrors `torch.nn.utils.clip_grad_norm_`: if the joint norm of all
/// gradients exceeds `max_norm`, every gradient is scaled by
/// `max_norm / norm`.
pub fn clip_grad_norm(params: &mut [&mut ParamTensor], max_norm: f32) -> f32 {
    let total: f32 = params
        .iter()
        .map(|p| p.grad_norm().powi(2))
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let factor = max_norm / total;
        for p in params.iter_mut() {
            p.scale_grad(factor);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = ParamTensor::new(Matrix::ones(3, 2));
        assert_eq!(p.shape(), (3, 2));
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = ParamTensor::new(Matrix::zeros(2, 2));
        p.accumulate_grad(&Matrix::ones(2, 2));
        p.accumulate_grad(&Matrix::ones(2, 2));
        assert_eq!(p.grad.sum(), 8.0);
        assert_eq!(p.grad_norm(), 4.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn clip_grad_norm_scales_when_needed() {
        let mut a = ParamTensor::new(Matrix::zeros(1, 1));
        a.grad.set(0, 0, 3.0);
        let mut b = ParamTensor::new(Matrix::zeros(1, 1));
        b.grad.set(0, 0, 4.0);
        let pre = clip_grad_norm(&mut [&mut a, &mut b], 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post = (a.grad.get(0, 0).powi(2) + b.grad.get(0, 0).powi(2)).sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_noop_when_below_threshold() {
        let mut a = ParamTensor::new(Matrix::zeros(1, 1));
        a.grad.set(0, 0, 0.5);
        let pre = clip_grad_norm(&mut [&mut a], 10.0);
        assert!((pre - 0.5).abs() < 1e-6);
        assert_eq!(a.grad.get(0, 0), 0.5);
    }
}
