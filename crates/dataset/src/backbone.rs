//! Simulated pretrained image backbones (phase-I stand-in).
//!
//! The paper's image encoder starts from a ResNet50 (or ResNet101) that was
//! pre-trained on ImageNet1K (phase I). Training CNNs on pixel data is out of
//! scope for this reproduction (see DESIGN.md §1); instead,
//! [`SyntheticBackbone`] plays the role of the *already pre-trained* backbone:
//! a fixed random non-linear projection from an image's ground-truth
//! attribute realisation (plus instance noise and nuisance directions) to a
//! `d' = 2048`-dimensional feature vector.
//!
//! What matters for the downstream contribution is preserved:
//!
//! * the features carry attribute information in an *entangled, distributed*
//!   form (a linear readout cannot trivially invert them — the FC projection
//!   has to be trained, as in phase II/III);
//! * the mapping is *shared across classes*, so a projection trained on seen
//!   classes transfers to unseen classes — the mechanism zero-shot transfer
//!   relies on;
//! * feature quality differs between backbone variants (the ResNet101
//!   simulation is noisier, matching the paper's Table II observation that
//!   the larger backbone does not pay off);
//! * parameter counts use the real torchvision numbers so Fig. 4 / Table II
//!   model sizes are realistic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tensor::Matrix;

/// The backbone architectures examined in Table II of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackboneKind {
    /// ResNet50 (the paper's preferred backbone).
    ResNet50,
    /// ResNet101 (larger, but not better on this task — Table II).
    ResNet101,
}

impl BackboneKind {
    /// Dimensionality of the backbone's penultimate feature vector (`d'`).
    pub fn feature_dim(self) -> usize {
        2048
    }

    /// Number of parameters of the real architecture (torchvision counts,
    /// used for the model-size axis of Fig. 4 and Table II).
    pub fn param_count(self) -> usize {
        match self {
            BackboneKind::ResNet50 => 25_557_032,
            BackboneKind::ResNet101 => 44_549_160,
        }
    }

    /// Standard deviation of the per-feature noise of the simulated backbone.
    ///
    /// The ResNet101 simulation is noisier: with the small fine-grained
    /// dataset the larger backbone generalises slightly worse, reproducing
    /// the ordering observed in Table II.
    pub fn feature_noise(self) -> f32 {
        match self {
            BackboneKind::ResNet50 => 0.30,
            BackboneKind::ResNet101 => 0.55,
        }
    }

    /// Human-readable architecture name.
    pub fn name(self) -> &'static str {
        match self {
            BackboneKind::ResNet50 => "ResNet50",
            BackboneKind::ResNet101 => "ResNet101",
        }
    }
}

impl std::fmt::Display for BackboneKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A frozen, simulated, ImageNet-pretrained image backbone.
///
/// # Example
///
/// ```
/// use dataset::{BackboneKind, SyntheticBackbone};
///
/// let backbone = SyntheticBackbone::pretrain(BackboneKind::ResNet50, 312, 99);
/// let attributes = vec![0.0; 312];
/// let features = backbone.features(&attributes, 7);
/// assert_eq!(features.len(), 2048);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticBackbone {
    kind: BackboneKind,
    /// Fixed random projection `α × d'` (the "pretrained weights").
    projection: Matrix,
    /// Fixed random per-feature bias.
    bias: Vec<f32>,
    /// Second-order mixing matrix `d' × d'` applied after the non-linearity,
    /// entangling the attribute directions.
    mixing: Matrix,
    noise_std: f32,
    alpha: usize,
    feature_dim: usize,
}

impl SyntheticBackbone {
    /// "Pre-trains" (constructs) a backbone: the projection, bias and mixing
    /// matrices are drawn once from `seed` and then frozen, playing the role
    /// of the ImageNet phase-I weights. The feature dimensionality is the
    /// architecture's native `d' = 2048`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha == 0`.
    pub fn pretrain(kind: BackboneKind, alpha: usize, seed: u64) -> Self {
        Self::pretrain_with_dim(kind, alpha, kind.feature_dim(), seed)
    }

    /// Like [`SyntheticBackbone::pretrain`] but with an explicit feature
    /// dimensionality — used by tests and scaled-down experiments where the
    /// full 2048-dimensional simulation would be unnecessarily slow.
    ///
    /// # Panics
    ///
    /// Panics if `alpha == 0` or `feature_dim == 0`.
    pub fn pretrain_with_dim(
        kind: BackboneKind,
        alpha: usize,
        feature_dim: usize,
        seed: u64,
    ) -> Self {
        assert!(alpha > 0, "attribute dimensionality must be positive");
        assert!(feature_dim > 0, "feature dimensionality must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let d = feature_dim;
        let scale = 1.0 / (alpha as f32).sqrt();
        let projection = Matrix::random_normal(alpha, d, 0.0, scale, &mut rng);
        let bias: Vec<f32> = (0..d).map(|_| rng.gen_range(-0.1..0.1)).collect();
        // A sparse orthogonal-ish mixing step: each output feature blends a
        // handful of post-activation features, further entangling attributes.
        let mut mixing = Matrix::zeros(d, d);
        for r in 0..d {
            mixing.set(r, r, 1.0);
            for _ in 0..3 {
                let c = rng.gen_range(0..d);
                mixing.set(r, c, mixing.get(r, c) + rng.gen_range(-0.3f32..0.3));
            }
        }
        Self {
            kind,
            projection,
            bias,
            mixing,
            noise_std: kind.feature_noise(),
            alpha,
            feature_dim: d,
        }
    }

    /// Returns a copy whose per-feature noise is scaled by `scale` (≥ 0).
    /// Used to control the difficulty of the simulated recognition task
    /// without changing the architecture accounting.
    #[must_use]
    pub fn with_noise_scale(mut self, scale: f32) -> Self {
        assert!(scale >= 0.0, "noise scale must be non-negative");
        self.noise_std = self.kind.feature_noise() * scale;
        self
    }

    /// The simulated architecture.
    pub fn kind(&self) -> BackboneKind {
        self.kind
    }

    /// Output feature dimensionality `d'`.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Attribute dimensionality `α` the backbone was built for.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// Parameter count of the simulated architecture (real ResNet numbers).
    pub fn param_count(&self) -> usize {
        self.kind.param_count()
    }

    /// Extracts features for one image given its binary/continuous attribute
    /// realisation. `instance_seed` individualises the augmentation noise so
    /// repeated calls for the same instance are deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `attributes.len() != self.alpha()`.
    pub fn features(&self, attributes: &[f32], instance_seed: u64) -> Vec<f32> {
        assert_eq!(
            attributes.len(),
            self.alpha,
            "expected {} attribute entries, got {}",
            self.alpha,
            attributes.len()
        );
        let mut rng = StdRng::seed_from_u64(instance_seed);
        let d = self.feature_dim();
        // Attribute jitter models imperfect visual evidence (occlusion, pose).
        let jittered: Vec<f32> = attributes
            .iter()
            .map(|&a| a + rng.gen_range(-0.05f32..0.05))
            .collect();
        // Linear projection + bias + tanh non-linearity.
        let mut hidden = vec![0.0f32; d];
        for (i, &a) in jittered.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let row = self.projection.row(i);
            for (h, &w) in hidden.iter_mut().zip(row) {
                *h += a * w;
            }
        }
        for (h, &b) in hidden.iter_mut().zip(&self.bias) {
            *h = (*h * 3.0 + b).tanh();
        }
        // Mixing + per-feature Gaussian noise.
        let mixed = self.mixing.matvec(&tensor::Vector::from_vec(hidden));
        mixed
            .as_slice()
            .iter()
            .map(|&x| {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                let noise = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                x + self.noise_std * noise
            })
            .collect()
    }

    /// Extracts features for a batch of attribute realisations (`N×α`),
    /// producing an `N×d'` feature matrix. Row `i` uses
    /// `base_seed + i` as its instance seed.
    ///
    /// # Panics
    ///
    /// Panics if `attributes.cols() != self.alpha()`.
    pub fn features_batch(&self, attributes: &Matrix, base_seed: u64) -> Matrix {
        let rows: Vec<Vec<f32>> = (0..attributes.rows())
            .map(|r| self.features(attributes.row(r), base_seed.wrapping_add(r as u64)))
            .collect();
        if rows.is_empty() {
            Matrix::zeros(0, self.feature_dim())
        } else {
            Matrix::from_rows(&rows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_report_real_parameter_counts() {
        assert_eq!(BackboneKind::ResNet50.param_count(), 25_557_032);
        assert_eq!(BackboneKind::ResNet101.param_count(), 44_549_160);
        assert!(BackboneKind::ResNet101.param_count() > BackboneKind::ResNet50.param_count());
        assert_eq!(BackboneKind::ResNet50.feature_dim(), 2048);
        assert_eq!(BackboneKind::ResNet50.to_string(), "ResNet50");
        assert!(BackboneKind::ResNet101.feature_noise() > BackboneKind::ResNet50.feature_noise());
    }

    #[test]
    fn pretraining_is_deterministic() {
        let a = SyntheticBackbone::pretrain(BackboneKind::ResNet50, 312, 1);
        let b = SyntheticBackbone::pretrain(BackboneKind::ResNet50, 312, 1);
        assert_eq!(a, b);
        let c = SyntheticBackbone::pretrain(BackboneKind::ResNet50, 312, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn features_are_deterministic_per_instance_seed() {
        let backbone = SyntheticBackbone::pretrain(BackboneKind::ResNet50, 32, 3);
        let attrs = vec![1.0; 32];
        let f1 = backbone.features(&attrs, 10);
        let f2 = backbone.features(&attrs, 10);
        let f3 = backbone.features(&attrs, 11);
        assert_eq!(f1, f2);
        assert_ne!(
            f1, f3,
            "different instance seeds give different augmentations"
        );
        assert_eq!(f1.len(), 2048);
    }

    #[test]
    fn different_attribute_patterns_give_distinguishable_features() {
        let backbone = SyntheticBackbone::pretrain(BackboneKind::ResNet50, 64, 4);
        let mut a = vec![0.0f32; 64];
        let mut b = vec![0.0f32; 64];
        for i in 0..16 {
            a[i] = 1.0;
            b[63 - i] = 1.0;
        }
        let fa = tensor::Vector::from_vec(backbone.features(&a, 1));
        let fb = tensor::Vector::from_vec(backbone.features(&b, 2));
        let fa2 = tensor::Vector::from_vec(backbone.features(&a, 3));
        // Same attribute pattern under different augmentation is much closer
        // than different patterns.
        assert!(fa.cosine(&fa2) > fa.cosine(&fb) + 0.1);
    }

    #[test]
    fn resnet101_features_are_noisier() {
        let r50 = SyntheticBackbone::pretrain(BackboneKind::ResNet50, 64, 5);
        let r101 = SyntheticBackbone::pretrain(BackboneKind::ResNet101, 64, 5);
        let attrs: Vec<f32> = (0..64)
            .map(|i| if i % 4 == 0 { 1.0 } else { 0.0 })
            .collect();
        let self_sim = |b: &SyntheticBackbone| {
            let x = tensor::Vector::from_vec(b.features(&attrs, 100));
            let y = tensor::Vector::from_vec(b.features(&attrs, 200));
            x.cosine(&y)
        };
        assert!(self_sim(&r50) > self_sim(&r101));
    }

    #[test]
    fn batch_features_match_single_calls() {
        let backbone = SyntheticBackbone::pretrain(BackboneKind::ResNet50, 16, 6);
        let attrs = Matrix::from_rows(&[vec![1.0; 16], vec![0.0; 16]]);
        let batch = backbone.features_batch(&attrs, 500);
        assert_eq!(batch.shape(), (2, 2048));
        assert_eq!(batch.row(0), &backbone.features(&[1.0; 16], 500)[..]);
        assert_eq!(batch.row(1), &backbone.features(&[0.0; 16], 501)[..]);
        assert_eq!(backbone.features_batch(&Matrix::zeros(0, 16), 0).rows(), 0);
    }

    #[test]
    fn custom_feature_dim_is_respected() {
        let backbone = SyntheticBackbone::pretrain_with_dim(BackboneKind::ResNet50, 16, 64, 8);
        assert_eq!(backbone.feature_dim(), 64);
        assert_eq!(backbone.features(&[0.5; 16], 1).len(), 64);
        // Parameter accounting still reports the real architecture size.
        assert_eq!(backbone.param_count(), 25_557_032);
    }

    #[test]
    #[should_panic(expected = "expected 16 attribute entries")]
    fn wrong_attribute_length_panics() {
        let backbone = SyntheticBackbone::pretrain(BackboneKind::ResNet50, 16, 7);
        let _ = backbone.features(&[0.0; 8], 0);
    }
}
