//! Dataset generation configuration.

use crate::backbone::BackboneKind;
use crate::instances::InstanceNoise;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic CUB-200-like dataset generator.
///
/// The defaults mirror the real dataset: 200 classes with ~59 images each
/// (11,788 images total) and 2048-dimensional backbone features. Smaller
/// presets are provided for unit tests ([`DatasetConfig::tiny`]) and for the
/// hyper-parameter sweeps ([`DatasetConfig::reduced`]), which the experiment
/// harnesses document in `EXPERIMENTS.md`.
///
/// # Example
///
/// ```
/// use dataset::DatasetConfig;
///
/// let full = DatasetConfig::cub200_full(0);
/// assert_eq!(full.num_classes, 200);
/// let tiny = DatasetConfig::tiny(0);
/// assert!(tiny.num_classes < full.num_classes);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of classes `C`.
    pub num_classes: usize,
    /// Number of images sampled per class.
    pub images_per_class: usize,
    /// Simulated backbone architecture.
    pub backbone: BackboneKind,
    /// Backbone feature dimensionality `d'` (2048 for the full simulation;
    /// smaller values speed up tests without changing the code paths).
    pub feature_dim: usize,
    /// Instance-level annotation noise.
    pub noise: InstanceNoise,
    /// Multiplier on the backbone's per-feature noise (1.0 = the
    /// architecture's nominal noise; larger values make the simulated
    /// recognition task harder).
    pub feature_noise_scale: f32,
    /// Number of class families (genera). `0` makes every class independent;
    /// a positive value groups classes into families whose members differ in
    /// only [`DatasetConfig::family_distinct_groups`] attribute groups —
    /// the fine-grained regime of CUB-200.
    pub num_families: usize,
    /// Number of attribute groups in which a class differs from its family
    /// prototype (ignored when `num_families == 0`).
    pub family_distinct_groups: usize,
    /// Master seed: class attributes, instances and the backbone are all
    /// derived deterministically from it.
    pub seed: u64,
}

impl DatasetConfig {
    /// Full-scale configuration matching the real CUB-200-2011 statistics
    /// (200 classes × 59 images ≈ 11,800 images, 2048-d features).
    pub fn cub200_full(seed: u64) -> Self {
        Self {
            num_classes: 200,
            images_per_class: 59,
            backbone: BackboneKind::ResNet50,
            feature_dim: BackboneKind::ResNet50.feature_dim(),
            noise: InstanceNoise::default(),
            feature_noise_scale: 1.0,
            num_families: 0,
            family_distinct_groups: 0,
            seed,
        }
    }

    /// Reduced configuration used by the experiment harnesses when a full run
    /// would be too slow (fewer images per class, 512-d features); the class
    /// count and attribute structure are unchanged so split protocols remain
    /// identical to the paper's.
    pub fn reduced(seed: u64) -> Self {
        Self {
            num_classes: 200,
            images_per_class: 12,
            backbone: BackboneKind::ResNet50,
            feature_dim: 256,
            noise: InstanceNoise::default(),
            feature_noise_scale: 1.0,
            num_families: 0,
            family_distinct_groups: 0,
            seed,
        }
    }

    /// Tiny configuration for unit tests: 20 classes, 6 images each, 64-d
    /// features.
    pub fn tiny(seed: u64) -> Self {
        Self {
            num_classes: 20,
            images_per_class: 6,
            backbone: BackboneKind::ResNet50,
            feature_dim: 64,
            noise: InstanceNoise::default(),
            feature_noise_scale: 1.0,
            num_families: 0,
            family_distinct_groups: 0,
            seed,
        }
    }

    /// Returns a copy with a different family structure (used to dial in the
    /// fine-grained difficulty of the synthetic task).
    #[must_use]
    pub fn with_families(mut self, num_families: usize, distinct_groups: usize) -> Self {
        self.num_families = num_families;
        self.family_distinct_groups = distinct_groups;
        self
    }

    /// Returns a copy with a different backbone-noise multiplier.
    #[must_use]
    pub fn with_feature_noise_scale(mut self, scale: f32) -> Self {
        self.feature_noise_scale = scale;
        self
    }

    /// Returns a copy with a different backbone architecture (used by the
    /// Table II ablation).
    #[must_use]
    pub fn with_backbone(mut self, backbone: BackboneKind) -> Self {
        self.backbone = backbone;
        self
    }

    /// Returns a copy with a different seed (used for the five-trial µ ± σ
    /// protocol).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total number of images this configuration will generate.
    pub fn total_images(&self) -> usize {
        self.num_classes * self.images_per_class
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_matches_cub_statistics() {
        let cfg = DatasetConfig::cub200_full(1);
        assert_eq!(cfg.num_classes, 200);
        assert_eq!(cfg.total_images(), 11_800);
        assert_eq!(cfg.feature_dim, 2048);
    }

    #[test]
    fn builders_override_fields() {
        let cfg = DatasetConfig::tiny(1)
            .with_backbone(BackboneKind::ResNet101)
            .with_seed(9)
            .with_families(25, 4)
            .with_feature_noise_scale(2.5);
        assert_eq!(cfg.backbone, BackboneKind::ResNet101);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.num_families, 25);
        assert_eq!(cfg.family_distinct_groups, 4);
        assert_eq!(cfg.feature_noise_scale, 2.5);
    }

    #[test]
    fn presets_default_to_the_easy_regime() {
        let cfg = DatasetConfig::reduced(0);
        assert_eq!(cfg.num_families, 0);
        assert_eq!(cfg.feature_noise_scale, 1.0);
    }

    #[test]
    fn presets_are_ordered_by_size() {
        assert!(DatasetConfig::tiny(0).total_images() < DatasetConfig::reduced(0).total_images());
        assert!(
            DatasetConfig::reduced(0).total_images() < DatasetConfig::cub200_full(0).total_images()
        );
    }
}
