//! The assembled synthetic dataset: schema + classes + instances + features.

use crate::backbone::SyntheticBackbone;
use crate::classes::ClassAttributes;
use crate::config::DatasetConfig;
use crate::instances::InstanceSet;
use crate::schema::AttributeSchema;
use crate::splits::{ClassSplit, SplitKind};
use tensor::Matrix;

/// A fully materialised synthetic CUB-200-like dataset.
///
/// Holds the attribute schema, the class-attribute matrix, the sampled
/// instances, and the pre-extracted backbone features for every instance —
/// i.e. everything the training phases consume. Generation is deterministic
/// in the configuration's seed.
///
/// # Example
///
/// ```
/// use dataset::{CubLikeDataset, DatasetConfig, SplitKind};
///
/// let data = CubLikeDataset::generate(&DatasetConfig::tiny(3));
/// let split = data.split(SplitKind::Zs);
/// assert!(split.is_zero_shot());
/// let (features, labels) = data.features_and_labels(split.eval_classes());
/// assert_eq!(features.rows(), labels.len());
/// ```
#[derive(Debug, Clone)]
pub struct CubLikeDataset {
    config: DatasetConfig,
    schema: AttributeSchema,
    classes: ClassAttributes,
    instances: InstanceSet,
    backbone: SyntheticBackbone,
    features: Matrix,
}

impl CubLikeDataset {
    /// Generates a dataset from the configuration (schema, class attributes,
    /// instances and backbone features), deterministically from
    /// `config.seed`.
    pub fn generate(config: &DatasetConfig) -> Self {
        let schema = AttributeSchema::cub200();
        let classes = ClassAttributes::generate_structured(
            &schema,
            config.num_classes,
            config.num_families,
            config.family_distinct_groups,
            config.seed,
        );
        let instances = InstanceSet::sample(
            &schema,
            &classes,
            config.images_per_class,
            config.noise,
            config.seed.wrapping_add(1),
        );
        let backbone = SyntheticBackbone::pretrain_with_dim(
            config.backbone,
            schema.num_attributes(),
            config.feature_dim,
            config.seed.wrapping_add(2),
        )
        .with_noise_scale(config.feature_noise_scale);
        let all_indices: Vec<usize> = (0..instances.len()).collect();
        let targets = instances.attribute_targets(&all_indices);
        let features = backbone.features_batch(&targets, config.seed.wrapping_add(3));
        Self {
            config: *config,
            schema,
            classes,
            instances,
            backbone,
            features,
        }
    }

    /// The generation configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// The attribute schema (28 groups, 61 values, 312 attributes).
    pub fn schema(&self) -> &AttributeSchema {
        &self.schema
    }

    /// The class-attribute matrix and class names.
    pub fn classes(&self) -> &ClassAttributes {
        &self.classes
    }

    /// The sampled instances.
    pub fn instances(&self) -> &InstanceSet {
        &self.instances
    }

    /// The simulated pretrained backbone.
    pub fn backbone(&self) -> &SyntheticBackbone {
        &self.backbone
    }

    /// Backbone features of every instance (`N×d'`), in instance order.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Builds the canonical split of the configured class count, falling back
    /// to the proportionally scaled split when the dataset has fewer than 200
    /// classes.
    pub fn split(&self, kind: SplitKind) -> ClassSplit {
        if self.config.num_classes >= 200 {
            ClassSplit::new(kind, self.config.num_classes)
        } else {
            ClassSplit::scaled(kind, self.config.num_classes)
        }
    }

    /// Instance indices belonging to the given classes.
    pub fn instance_indices(&self, classes: &[usize]) -> Vec<usize> {
        self.instances.indices_of_classes(classes)
    }

    /// Backbone features and class labels of all instances of the given
    /// classes, in instance order.
    pub fn features_and_labels(&self, classes: &[usize]) -> (Matrix, Vec<usize>) {
        let indices = self.instance_indices(classes);
        (
            self.features.select_rows(&indices),
            self.instances.labels(&indices),
        )
    }

    /// Backbone features and binary attribute targets of all instances of the
    /// given classes (the phase-II training pairs).
    pub fn features_and_attributes(&self, classes: &[usize]) -> (Matrix, Matrix) {
        let indices = self.instance_indices(classes);
        (
            self.features.select_rows(&indices),
            self.instances.attribute_targets(&indices),
        )
    }

    /// Remaps absolute class labels to *local* indices within `classes`
    /// (e.g. test class 157 → index 7 of the 50-class evaluation set), the
    /// label space the similarity kernel's logits are expressed in.
    ///
    /// # Panics
    ///
    /// Panics if a label does not appear in `classes`.
    pub fn to_local_labels(labels: &[usize], classes: &[usize]) -> Vec<usize> {
        labels
            .iter()
            .map(|l| {
                classes
                    .iter()
                    .position(|c| c == l)
                    .unwrap_or_else(|| panic!("label {l} not in the provided class list"))
            })
            .collect()
    }

    /// The class-attribute sub-matrix for the given classes (rows ordered as
    /// in `classes`) — the `A` matrix handed to the attribute encoder.
    pub fn class_attribute_matrix(&self, classes: &[usize]) -> Matrix {
        self.classes.select(classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> CubLikeDataset {
        CubLikeDataset::generate(&DatasetConfig::tiny(42))
    }

    #[test]
    fn generation_shapes_are_consistent() {
        let data = dataset();
        let cfg = DatasetConfig::tiny(42);
        assert_eq!(data.instances().len(), cfg.total_images());
        assert_eq!(data.features().rows(), cfg.total_images());
        assert_eq!(data.features().cols(), cfg.feature_dim);
        assert_eq!(data.classes().num_classes(), cfg.num_classes);
        assert_eq!(data.schema().num_attributes(), 312);
        assert_eq!(data.config(), &cfg);
        assert_eq!(data.backbone().feature_dim(), cfg.feature_dim);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CubLikeDataset::generate(&DatasetConfig::tiny(7));
        let b = CubLikeDataset::generate(&DatasetConfig::tiny(7));
        assert_eq!(a.features().max_abs_diff(b.features()), 0.0);
        let c = CubLikeDataset::generate(&DatasetConfig::tiny(8));
        assert!(a.features().max_abs_diff(c.features()) > 0.0);
    }

    #[test]
    fn split_selection_and_labels() {
        let data = dataset();
        let split = data.split(SplitKind::Zs);
        assert!(split.is_zero_shot());
        let (features, labels) = data.features_and_labels(split.eval_classes());
        assert_eq!(features.rows(), labels.len());
        assert!(labels.iter().all(|l| split.eval_classes().contains(l)));
        let local = CubLikeDataset::to_local_labels(&labels, split.eval_classes());
        assert!(local.iter().all(|&l| l < split.eval_classes().len()));
    }

    #[test]
    fn attribute_targets_align_with_features() {
        let data = dataset();
        let split = data.split(SplitKind::NoZs);
        let (features, targets) = data.features_and_attributes(split.train_classes());
        assert_eq!(features.rows(), targets.rows());
        assert_eq!(targets.cols(), 312);
    }

    #[test]
    fn class_attribute_matrix_rows_follow_request_order() {
        let data = dataset();
        let m = data.class_attribute_matrix(&[5, 1]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), data.classes().matrix().row(5));
    }

    #[test]
    #[should_panic(expected = "not in the provided class list")]
    fn local_label_mapping_rejects_unknown_class() {
        let _ = CubLikeDataset::to_local_labels(&[9], &[1, 2, 3]);
    }
}
