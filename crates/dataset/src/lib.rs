//! Synthetic CUB-200-2011 substrate for the HDC-ZSC reproduction.
//!
//! The paper evaluates on Caltech-UCSD Birds-200-2011: 200 bird species,
//! 11,788 images, and a 312-dimensional continuous class-attribute matrix
//! organised into 28 attribute groups over 61 unique attribute values. The
//! original dataset ships images and human annotations; this crate provides a
//! *synthetic but structurally faithful* stand-in (see `DESIGN.md` §1 for the
//! substitution argument):
//!
//! * [`AttributeSchema`] reproduces the group/value structure exactly
//!   (`G = 28`, `V = 61`, `α = 312`), including the sharing of colour and
//!   pattern vocabularies across groups that makes the factored HDC codebook
//!   worthwhile.
//! * [`ClassAttributes`] generates continuous class-level attribute
//!   strengths (the analogue of CUB's annotator-agreement percentages).
//! * [`instances::InstanceSet`] samples per-image attribute realisations with
//!   annotation noise and class imbalance.
//! * [`SyntheticBackbone`] plays the role of the ImageNet-pretrained
//!   ResNet50/ResNet101: a fixed non-linear random projection from an
//!   instance's attribute realisation (plus nuisance dimensions and noise) to
//!   a `d'`-dimensional feature vector. Parameter counts are taken from the
//!   real architectures so Fig. 4 / Table II report realistic model sizes.
//! * [`splits`] reproduces the noZS (100/100), ZS (150/50) and validation
//!   (50 disjoint classes) protocols.
//! * [`workload`] generates seeded *clustered* ±1 class prototypes and
//!   query batches at arbitrary dim/class-count/noise — the scalable
//!   synthetic substrate behind `serve_sim --classes N` and the engine's
//!   routed-index tests, far beyond the bird-shaped dataset above. It also
//!   hosts the attribute-level [`workload::GzslWorkload`] generator for
//!   generalized zero-shot evaluation with open-set distractors.
//!
//! # Example
//!
//! ```
//! use dataset::{CubLikeDataset, DatasetConfig};
//!
//! let dataset = CubLikeDataset::generate(&DatasetConfig::tiny(7));
//! assert_eq!(dataset.schema().num_attributes(), 312);
//! assert!(dataset.instances().len() > 0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod backbone;
pub mod classes;
pub mod config;
pub mod dataset;
pub mod instances;
pub mod loader;
pub mod schema;
pub mod splits;
pub mod workload;

pub use backbone::{BackboneKind, SyntheticBackbone};
pub use classes::ClassAttributes;
pub use config::DatasetConfig;
pub use dataset::CubLikeDataset;
pub use instances::{Instance, InstanceNoise, InstanceSet};
pub use loader::BatchIterator;
pub use schema::{AttributeGroup, AttributeSchema};
pub use splits::{ClassSplit, SplitKind};
pub use workload::{
    GzslWorkload, GzslWorkloadConfig, StreamExample, StreamWorkload, StreamWorkloadConfig,
    SyntheticWorkload, WorkloadConfig,
};
