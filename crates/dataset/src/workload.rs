//! Seeded synthetic workload generator for large-label-space benchmarks.
//!
//! The bird-shaped dataset in this crate tops out at a few hundred classes;
//! the engine's sharded and routed class memories are built for 100k–1M.
//! This module generates ±1 class prototypes and query batches at arbitrary
//! dimensionality, class count, and noise — *clustered*, the way real label
//! spaces are (fine-grained classes form families), so coarse-to-fine
//! indexes have structure to find. `serve_sim --classes N` and the engine's
//! routed-index tests share it.
//!
//! # Model
//!
//! `clusters` latent ±1 centers are drawn uniformly; each class prototype
//! copies its center (round-robin assignment) and flips each bit with
//! probability `class_noise`; each query copies a prototype (cycling
//! through the classes) and flips each bit with probability `query_noise`.
//! Everything is a pure function of [`WorkloadConfig`], via the same seeded
//! [`StdRng`] stream the rest of the crate uses — same config, same bits,
//! on every platform.
//!
//! # Example
//!
//! ```
//! use dataset::workload::{SyntheticWorkload, WorkloadConfig};
//!
//! let workload = SyntheticWorkload::generate(&WorkloadConfig {
//!     dim: 128,
//!     classes: 40,
//!     queries: 8,
//!     ..WorkloadConfig::default()
//! });
//! assert_eq!(workload.prototypes.len(), 40);
//! assert_eq!(workload.queries.len(), 8);
//! // Each query is a noisy copy of a known prototype.
//! assert!(workload.query_class.iter().all(|&c| c < 40));
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape and noise of a [`SyntheticWorkload`]; every field participates in
/// the deterministic-generation contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Hypervector dimensionality of prototypes and queries.
    pub dim: usize,
    /// Number of class prototypes to generate.
    pub classes: usize,
    /// Number of latent cluster centers; `0` sizes automatically to
    /// `⌈√classes⌉`.
    pub clusters: usize,
    /// Per-bit flip probability from a center to its class prototypes.
    pub class_noise: f64,
    /// Per-bit flip probability from a prototype to its queries.
    pub query_noise: f64,
    /// Number of query rows to generate.
    pub queries: usize,
    /// Seed of the generation stream.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            dim: 2048,
            classes: 1000,
            clusters: 0,
            class_noise: 0.05,
            query_noise: 0.02,
            queries: 64,
            seed: 0x0c1a_55e5,
        }
    }
}

impl WorkloadConfig {
    /// The effective latent cluster count (`⌈√classes⌉` when automatic).
    pub fn effective_clusters(&self) -> usize {
        match self.clusters {
            0 => (self.classes as f64).sqrt().ceil() as usize,
            c => c,
        }
        .clamp(1, self.classes.max(1))
    }
}

/// A generated workload: labelled clustered ±1 class prototypes plus noisy
/// query rows with known ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticWorkload {
    /// `class000000`-style labels, one per prototype, in index order.
    pub labels: Vec<String>,
    /// One ±1 prototype row per class.
    pub prototypes: Vec<Vec<i8>>,
    /// The latent cluster each prototype was perturbed from.
    pub prototype_cluster: Vec<usize>,
    /// Noisy ±1 query rows.
    pub queries: Vec<Vec<i8>>,
    /// The prototype index each query was perturbed from — the ground-truth
    /// class for recall accounting.
    pub query_class: Vec<usize>,
}

/// Draws a uniform ±1 row.
fn random_signs(rng: &mut StdRng, dim: usize) -> Vec<i8> {
    (0..dim)
        .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
        .collect()
}

/// Copies `base` and flips each position with probability `noise`.
fn perturb(rng: &mut StdRng, base: &[i8], noise: f64) -> Vec<i8> {
    base.iter()
        .map(|&s| if rng.gen_bool(noise) { -s } else { s })
        .collect()
}

impl SyntheticWorkload {
    /// Generates the workload described by `config`; pure in `config`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, `classes == 0`, or a noise probability is
    /// outside `[0, 1]`.
    pub fn generate(config: &WorkloadConfig) -> Self {
        assert!(config.dim > 0, "dimensionality must be positive");
        assert!(config.classes > 0, "at least one class is required");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let clusters = config.effective_clusters();
        let centers: Vec<Vec<i8>> = (0..clusters)
            .map(|_| random_signs(&mut rng, config.dim))
            .collect();
        let mut labels = Vec::with_capacity(config.classes);
        let mut prototypes = Vec::with_capacity(config.classes);
        let mut prototype_cluster = Vec::with_capacity(config.classes);
        for c in 0..config.classes {
            let cluster = c % clusters;
            labels.push(format!("class{c:06}"));
            prototypes.push(perturb(&mut rng, &centers[cluster], config.class_noise));
            prototype_cluster.push(cluster);
        }
        let mut queries = Vec::with_capacity(config.queries);
        let mut query_class = Vec::with_capacity(config.queries);
        for q in 0..config.queries {
            let class = q % config.classes;
            queries.push(perturb(&mut rng, &prototypes[class], config.query_noise));
            query_class.push(class);
        }
        Self {
            labels,
            prototypes,
            prototype_cluster,
            queries,
            query_class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic() {
        let config = WorkloadConfig {
            dim: 96,
            classes: 30,
            queries: 10,
            ..WorkloadConfig::default()
        };
        let a = SyntheticWorkload::generate(&config);
        let b = SyntheticWorkload::generate(&config);
        assert_eq!(a, b);
        let c = SyntheticWorkload::generate(&WorkloadConfig {
            seed: config.seed + 1,
            ..config
        });
        assert_ne!(a.prototypes, c.prototypes);
    }

    #[test]
    fn shapes_and_ground_truth_are_consistent() {
        let config = WorkloadConfig {
            dim: 64,
            classes: 12,
            clusters: 3,
            queries: 20,
            ..WorkloadConfig::default()
        };
        let w = SyntheticWorkload::generate(&config);
        assert_eq!(w.labels.len(), 12);
        assert_eq!(w.prototypes.len(), 12);
        assert_eq!(w.queries.len(), 20);
        assert_eq!(w.query_class.len(), 20);
        assert!(w.prototypes.iter().all(|p| p.len() == 64));
        assert!(w.queries.iter().all(|q| q.len() == 64));
        assert!(w.prototypes.iter().flatten().all(|&s| s == 1 || s == -1));
        assert!(w.prototype_cluster.iter().all(|&c| c < 3));
        assert!(w.query_class.iter().all(|&c| c < 12));
        // Labels are unique and index-ordered.
        assert_eq!(w.labels[0], "class000000");
        assert_eq!(w.labels[11], "class000011");
    }

    #[test]
    fn noise_free_queries_equal_their_prototype() {
        let w = SyntheticWorkload::generate(&WorkloadConfig {
            dim: 48,
            classes: 5,
            clusters: 2,
            class_noise: 0.0,
            query_noise: 0.0,
            queries: 5,
            seed: 9,
        });
        for (q, &class) in w.query_class.iter().enumerate() {
            assert_eq!(w.queries[q], w.prototypes[class]);
        }
        // With zero class noise, same-cluster prototypes coincide.
        assert_eq!(w.prototypes[0], w.prototypes[2]);
    }

    #[test]
    fn auto_cluster_count_is_sqrt() {
        let config = WorkloadConfig {
            classes: 100,
            clusters: 0,
            ..WorkloadConfig::default()
        };
        assert_eq!(config.effective_clusters(), 10);
        let pinned = WorkloadConfig {
            clusters: 7,
            ..config
        };
        assert_eq!(pinned.effective_clusters(), 7);
    }
}
