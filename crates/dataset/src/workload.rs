//! Seeded synthetic workload generator for large-label-space benchmarks.
//!
//! The bird-shaped dataset in this crate tops out at a few hundred classes;
//! the engine's sharded and routed class memories are built for 100k–1M.
//! This module generates ±1 class prototypes and query batches at arbitrary
//! dimensionality, class count, and noise — *clustered*, the way real label
//! spaces are (fine-grained classes form families), so coarse-to-fine
//! indexes have structure to find. `serve_sim --classes N` and the engine's
//! routed-index tests share it.
//!
//! # Model
//!
//! `clusters` latent ±1 centers are drawn uniformly; each class prototype
//! copies its center (round-robin assignment) and flips each bit with
//! probability `class_noise`; each query copies a prototype (cycling
//! through the classes) and flips each bit with probability `query_noise`.
//! Everything is a pure function of [`WorkloadConfig`], via the same seeded
//! [`StdRng`] stream the rest of the crate uses — same config, same bits,
//! on every platform.
//!
//! # Example
//!
//! ```
//! use dataset::workload::{SyntheticWorkload, WorkloadConfig};
//!
//! let workload = SyntheticWorkload::generate(&WorkloadConfig {
//!     dim: 128,
//!     classes: 40,
//!     queries: 8,
//!     ..WorkloadConfig::default()
//! });
//! assert_eq!(workload.prototypes.len(), 40);
//! assert_eq!(workload.queries.len(), 8);
//! // Each query is a noisy copy of a known prototype.
//! assert!(workload.query_class.iter().all(|&c| c < 40));
//! ```

use engine::PackedClassMemory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape and noise of a [`SyntheticWorkload`]; every field participates in
/// the deterministic-generation contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Hypervector dimensionality of prototypes and queries.
    pub dim: usize,
    /// Number of class prototypes to generate.
    pub classes: usize,
    /// Number of latent cluster centers; `0` sizes automatically to
    /// `⌈√classes⌉`.
    pub clusters: usize,
    /// Per-bit flip probability from a center to its class prototypes.
    pub class_noise: f64,
    /// Per-bit flip probability from a prototype to its queries.
    pub query_noise: f64,
    /// Number of query rows to generate.
    pub queries: usize,
    /// Number of distractor rows to generate — uniform ±1 rows derived from
    /// no prototype, the open-set half of a mixed batch. Drawn after every
    /// other draw, so `distractors: 0` reproduces the historical stream
    /// bit-for-bit.
    pub distractors: usize,
    /// Seed of the generation stream.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            dim: 2048,
            classes: 1000,
            clusters: 0,
            class_noise: 0.05,
            query_noise: 0.02,
            queries: 64,
            distractors: 0,
            seed: 0x0c1a_55e5,
        }
    }
}

impl WorkloadConfig {
    /// The effective latent cluster count (`⌈√classes⌉` when automatic).
    pub fn effective_clusters(&self) -> usize {
        match self.clusters {
            0 => (self.classes as f64).sqrt().ceil() as usize,
            c => c,
        }
        .clamp(1, self.classes.max(1))
    }
}

/// A generated workload: labelled clustered ±1 class prototypes plus noisy
/// query rows with known ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticWorkload {
    /// `class000000`-style labels, one per prototype, in index order.
    pub labels: Vec<String>,
    /// One ±1 prototype row per class.
    pub prototypes: Vec<Vec<i8>>,
    /// The latent cluster each prototype was perturbed from.
    pub prototype_cluster: Vec<usize>,
    /// Noisy ±1 query rows.
    pub queries: Vec<Vec<i8>>,
    /// The prototype index each query was perturbed from — the ground-truth
    /// class for recall accounting.
    pub query_class: Vec<usize>,
    /// Uniform ±1 rows derived from no prototype — open-set distractors
    /// whose correct answer is "unknown".
    pub distractor_queries: Vec<Vec<i8>>,
}

/// Draws a uniform ±1 row.
fn random_signs(rng: &mut StdRng, dim: usize) -> Vec<i8> {
    (0..dim)
        .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
        .collect()
}

/// Copies `base` and flips each position with probability `noise`.
fn perturb(rng: &mut StdRng, base: &[i8], noise: f64) -> Vec<i8> {
    base.iter()
        .map(|&s| if rng.gen_bool(noise) { -s } else { s })
        .collect()
}

impl SyntheticWorkload {
    /// Generates the workload described by `config`; pure in `config`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, `classes == 0`, or a noise probability is
    /// outside `[0, 1]`.
    pub fn generate(config: &WorkloadConfig) -> Self {
        assert!(config.dim > 0, "dimensionality must be positive");
        assert!(config.classes > 0, "at least one class is required");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let clusters = config.effective_clusters();
        let centers: Vec<Vec<i8>> = (0..clusters)
            .map(|_| random_signs(&mut rng, config.dim))
            .collect();
        let mut labels = Vec::with_capacity(config.classes);
        let mut prototypes = Vec::with_capacity(config.classes);
        let mut prototype_cluster = Vec::with_capacity(config.classes);
        for c in 0..config.classes {
            let cluster = c % clusters;
            labels.push(format!("class{c:06}"));
            prototypes.push(perturb(&mut rng, &centers[cluster], config.class_noise));
            prototype_cluster.push(cluster);
        }
        let mut queries = Vec::with_capacity(config.queries);
        let mut query_class = Vec::with_capacity(config.queries);
        for q in 0..config.queries {
            let class = q % config.classes;
            queries.push(perturb(&mut rng, &prototypes[class], config.query_noise));
            query_class.push(class);
        }
        // Distractors come last so configs with `distractors: 0` keep the
        // exact historical rng stream (and therefore every pinned golden).
        let distractor_queries = (0..config.distractors)
            .map(|_| random_signs(&mut rng, config.dim))
            .collect();
        Self {
            labels,
            prototypes,
            prototype_cluster,
            queries,
            query_class,
            distractor_queries,
        }
    }

    /// Loads every prototype into a fresh [`PackedClassMemory`] in label
    /// order — the exhaustive-scorer setup the routed-index tests and
    /// `serve_sim` previously each rebuilt by hand.
    ///
    /// # Panics
    ///
    /// Panics if the workload holds no prototypes ([`generate`] always
    /// produces at least one).
    ///
    /// [`generate`]: SyntheticWorkload::generate
    pub fn packed_memory(&self) -> PackedClassMemory {
        let dim = self
            .prototypes
            .first()
            .expect("packed_memory needs at least one prototype")
            .len();
        let mut memory = PackedClassMemory::new(dim);
        for (label, row) in self.labels.iter().zip(&self.prototypes) {
            memory.insert_signs(label.clone(), row);
        }
        memory
    }
}

/// Shape of a [`GzslWorkload`]: an attribute-level generalized zero-shot
/// benchmark with a seen/unseen class split and open-set distractors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GzslWorkloadConfig {
    /// Total class count (seen + unseen).
    pub classes: usize,
    /// How many of the classes are *unseen* — the last `unseen` indices.
    pub unseen: usize,
    /// Width of the latent class-attribute vectors (α in the paper's
    /// notation; 312 for the CUB-shaped schema).
    pub attribute_dim: usize,
    /// Class-conditioned queries, assigned round-robin over the union class
    /// set so both partitions are populated.
    pub queries: usize,
    /// Open-set distractor queries drawn from no class.
    pub distractors: usize,
    /// Amplitude of the uniform per-attribute jitter applied to each
    /// class-conditioned query (clamped back to `[0, 1]`).
    pub noise: f64,
    /// Seed of the generation stream.
    pub seed: u64,
}

impl Default for GzslWorkloadConfig {
    fn default() -> Self {
        Self {
            classes: 40,
            unseen: 10,
            attribute_dim: 312,
            queries: 80,
            distractors: 16,
            noise: 0.05,
            seed: 0x675a_1000,
        }
    }
}

/// An attribute-level GZSL workload: continuous class-attribute vectors over
/// a seen/unseen split, mixed class-conditioned queries, and distractor
/// queries matching no class — everything a generalized zero-shot evaluation
/// with open-set rejection needs, as a pure function of its config.
///
/// Unlike [`SyntheticWorkload`] (which emits ±1 hypervectors for the engine
/// layer), this generator works at the *attribute* level: rows are continuous
/// `[0, 1]` strengths shaped like [`ClassAttributes`](crate::ClassAttributes)
/// signatures, so a model's attribute encoder can embed both the class set
/// and the queries.
#[derive(Debug, Clone, PartialEq)]
pub struct GzslWorkload {
    /// `class000000`-style labels, one per class, in index order.
    pub labels: Vec<String>,
    /// One `attribute_dim`-wide `[0, 1]` attribute vector per class.
    pub class_attributes: Vec<Vec<f32>>,
    /// Flag per class, `true` for the unseen partition (the last
    /// `config.unseen` classes).
    pub unseen: Vec<bool>,
    /// Mixed query rows at attribute level (class-conditioned first, then
    /// distractors).
    pub query_attributes: Vec<Vec<f32>>,
    /// Ground truth per query row: `Some(class)` for class-conditioned
    /// queries, `None` for distractors.
    pub query_class: Vec<Option<usize>>,
}

/// Draws a uniform `[0, 1)` attribute row.
fn random_attributes(rng: &mut StdRng, dim: usize) -> Vec<f32> {
    (0..dim).map(|_| rng.gen_range(0.0f32..1.0)).collect()
}

impl GzslWorkload {
    /// Generates the workload described by `config`; pure in `config`.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`, `unseen >= classes`, `attribute_dim == 0`,
    /// or `noise` is outside `[0, 1]`.
    pub fn generate(config: &GzslWorkloadConfig) -> Self {
        assert!(config.classes > 0, "at least one class is required");
        assert!(
            config.unseen < config.classes,
            "unseen classes ({}) must leave at least one seen class of {}",
            config.unseen,
            config.classes
        );
        assert!(config.attribute_dim > 0, "attribute_dim must be positive");
        assert!(
            (0.0..=1.0).contains(&config.noise),
            "noise must lie in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let labels = (0..config.classes)
            .map(|c| format!("class{c:06}"))
            .collect();
        let class_attributes: Vec<Vec<f32>> = (0..config.classes)
            .map(|_| random_attributes(&mut rng, config.attribute_dim))
            .collect();
        let unseen: Vec<bool> = (0..config.classes)
            .map(|c| c >= config.classes - config.unseen)
            .collect();
        let mut query_attributes = Vec::with_capacity(config.queries + config.distractors);
        let mut query_class = Vec::with_capacity(config.queries + config.distractors);
        for q in 0..config.queries {
            let class = q % config.classes;
            let row = class_attributes[class]
                .iter()
                .map(|&a| {
                    let jitter = rng.gen_range(-config.noise..=config.noise) as f32;
                    (a + jitter).clamp(0.0, 1.0)
                })
                .collect();
            query_attributes.push(row);
            query_class.push(Some(class));
        }
        for _ in 0..config.distractors {
            query_attributes.push(random_attributes(&mut rng, config.attribute_dim));
            query_class.push(None);
        }
        Self {
            labels,
            class_attributes,
            unseen,
            query_attributes,
            query_class,
        }
    }

    /// Indices of the seen classes, ascending.
    pub fn seen_classes(&self) -> Vec<usize> {
        (0..self.unseen.len())
            .filter(|&c| !self.unseen[c])
            .collect()
    }

    /// Indices of the unseen classes, ascending.
    pub fn unseen_classes(&self) -> Vec<usize> {
        (0..self.unseen.len()).filter(|&c| self.unseen[c]).collect()
    }
}

/// Shape of a [`StreamWorkload`]: a labeled example stream whose class
/// means random-walk over time — the concept-drift half of a streaming
/// continual-learning drill.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamWorkloadConfig {
    /// Number of streamed classes.
    pub classes: usize,
    /// Width of the backbone-feature rows the stream emits.
    pub feature_dim: usize,
    /// Number of time steps the stream spans.
    pub steps: usize,
    /// Examples emitted per step, assigned round-robin over the classes so
    /// every class keeps receiving evidence.
    pub examples_per_step: usize,
    /// Amplitude of the uniform per-feature random-walk step each class
    /// mean takes *between* time steps — the concept-drift rate (`0`
    /// freezes the means: a stationary stream).
    pub drift: f64,
    /// Amplitude of the uniform per-feature jitter applied to each emitted
    /// example around its class's current mean.
    pub noise: f64,
    /// Seed of the generation stream.
    pub seed: u64,
}

impl Default for StreamWorkloadConfig {
    fn default() -> Self {
        Self {
            classes: 8,
            feature_dim: 48,
            steps: 12,
            examples_per_step: 8,
            drift: 0.08,
            noise: 0.05,
            seed: 0x57e1_a000,
        }
    }
}

/// One streamed labeled example.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamExample {
    /// The time step the example was emitted in.
    pub step: usize,
    /// Index of the class the example belongs to.
    pub class: usize,
    /// The backbone-feature row.
    pub features: Vec<f32>,
}

/// A seeded concept-drift example stream: per-class feature means
/// random-walking over time, per-example noise around the current mean —
/// as a pure function of its config, so a serving drill and its solo
/// recomputation consume bit-identical examples.
///
/// Unlike [`SyntheticWorkload`] (engine-level ±1 rows) and [`GzslWorkload`]
/// (attribute-level `[0, 1]` rows), this generator emits *backbone feature*
/// rows: the shape a query server's observation path encodes through the
/// model's image encoder.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamWorkload {
    /// `class000000`-style labels, one per class, in index order.
    pub labels: Vec<String>,
    /// Each class's mean at step 0, before any drift.
    pub initial_means: Vec<Vec<f32>>,
    /// Each class's mean after the final step's random walk.
    pub final_means: Vec<Vec<f32>>,
    /// The emitted examples, in stream order (`steps * examples_per_step`
    /// of them).
    pub examples: Vec<StreamExample>,
}

impl StreamWorkload {
    /// Generates the stream described by `config`; pure in `config`.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`, `feature_dim == 0`, or `drift` / `noise`
    /// is negative.
    pub fn generate(config: &StreamWorkloadConfig) -> Self {
        assert!(config.classes > 0, "at least one class is required");
        assert!(config.feature_dim > 0, "feature_dim must be positive");
        assert!(config.drift >= 0.0, "drift must be non-negative");
        assert!(config.noise >= 0.0, "noise must be non-negative");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let labels = (0..config.classes)
            .map(|c| format!("class{c:06}"))
            .collect();
        let initial_means: Vec<Vec<f32>> = (0..config.classes)
            .map(|_| {
                (0..config.feature_dim)
                    .map(|_| rng.gen_range(-1.0f32..1.0))
                    .collect()
            })
            .collect();
        let mut means = initial_means.clone();
        let mut examples = Vec::with_capacity(config.steps * config.examples_per_step);
        for step in 0..config.steps {
            for e in 0..config.examples_per_step {
                let class = (step * config.examples_per_step + e) % config.classes;
                let features = means[class]
                    .iter()
                    .map(|&m| {
                        if config.noise == 0.0 {
                            m
                        } else {
                            m + rng.gen_range(-config.noise..=config.noise) as f32
                        }
                    })
                    .collect();
                examples.push(StreamExample {
                    step,
                    class,
                    features,
                });
            }
            // The walk happens *between* steps, so step 0 samples the
            // initial means exactly and every later step sees means that
            // have moved `step` times.
            if config.drift > 0.0 {
                for mean in &mut means {
                    for m in mean.iter_mut() {
                        *m += rng.gen_range(-config.drift..=config.drift) as f32;
                    }
                }
            }
        }
        Self {
            labels,
            initial_means,
            final_means: means,
            examples,
        }
    }

    /// The examples of one time step, in emission order.
    pub fn step_examples(&self, step: usize) -> impl Iterator<Item = &StreamExample> {
        self.examples.iter().filter(move |e| e.step == step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic() {
        let config = WorkloadConfig {
            dim: 96,
            classes: 30,
            queries: 10,
            ..WorkloadConfig::default()
        };
        let a = SyntheticWorkload::generate(&config);
        let b = SyntheticWorkload::generate(&config);
        assert_eq!(a, b);
        let c = SyntheticWorkload::generate(&WorkloadConfig {
            seed: config.seed + 1,
            ..config
        });
        assert_ne!(a.prototypes, c.prototypes);
    }

    #[test]
    fn shapes_and_ground_truth_are_consistent() {
        let config = WorkloadConfig {
            dim: 64,
            classes: 12,
            clusters: 3,
            queries: 20,
            ..WorkloadConfig::default()
        };
        let w = SyntheticWorkload::generate(&config);
        assert_eq!(w.labels.len(), 12);
        assert_eq!(w.prototypes.len(), 12);
        assert_eq!(w.queries.len(), 20);
        assert_eq!(w.query_class.len(), 20);
        assert!(w.prototypes.iter().all(|p| p.len() == 64));
        assert!(w.queries.iter().all(|q| q.len() == 64));
        assert!(w.prototypes.iter().flatten().all(|&s| s == 1 || s == -1));
        assert!(w.prototype_cluster.iter().all(|&c| c < 3));
        assert!(w.query_class.iter().all(|&c| c < 12));
        // Labels are unique and index-ordered.
        assert_eq!(w.labels[0], "class000000");
        assert_eq!(w.labels[11], "class000011");
    }

    #[test]
    fn noise_free_queries_equal_their_prototype() {
        let w = SyntheticWorkload::generate(&WorkloadConfig {
            dim: 48,
            classes: 5,
            clusters: 2,
            class_noise: 0.0,
            query_noise: 0.0,
            queries: 5,
            distractors: 0,
            seed: 9,
        });
        for (q, &class) in w.query_class.iter().enumerate() {
            assert_eq!(w.queries[q], w.prototypes[class]);
        }
        // With zero class noise, same-cluster prototypes coincide.
        assert_eq!(w.prototypes[0], w.prototypes[2]);
    }

    #[test]
    fn distractors_extend_but_do_not_shift_the_stream() {
        let base = WorkloadConfig {
            dim: 64,
            classes: 8,
            queries: 6,
            ..WorkloadConfig::default()
        };
        let without = SyntheticWorkload::generate(&base);
        let with = SyntheticWorkload::generate(&WorkloadConfig {
            distractors: 4,
            ..base
        });
        // Everything before the distractor draws is bit-identical, so
        // pinned goldens built at `distractors: 0` stay valid.
        assert_eq!(without.prototypes, with.prototypes);
        assert_eq!(without.queries, with.queries);
        assert!(without.distractor_queries.is_empty());
        assert_eq!(with.distractor_queries.len(), 4);
        assert!(with
            .distractor_queries
            .iter()
            .all(|row| row.len() == 64 && row.iter().all(|&s| s == 1 || s == -1)));
    }

    #[test]
    fn packed_memory_holds_every_prototype_in_label_order() {
        let w = SyntheticWorkload::generate(&WorkloadConfig {
            dim: 96,
            classes: 9,
            queries: 1,
            ..WorkloadConfig::default()
        });
        let memory = w.packed_memory();
        assert_eq!(memory.len(), 9);
        assert_eq!(memory.dim(), 96);
        for (index, label) in w.labels.iter().enumerate() {
            assert_eq!(memory.label(index), label);
        }
    }

    #[test]
    fn gzsl_generation_is_seed_deterministic() {
        let config = GzslWorkloadConfig {
            classes: 10,
            unseen: 3,
            attribute_dim: 24,
            queries: 12,
            distractors: 4,
            ..GzslWorkloadConfig::default()
        };
        let a = GzslWorkload::generate(&config);
        let b = GzslWorkload::generate(&config);
        assert_eq!(a, b);
        let c = GzslWorkload::generate(&GzslWorkloadConfig {
            seed: config.seed + 1,
            ..config
        });
        assert_ne!(a.class_attributes, c.class_attributes);
    }

    #[test]
    fn gzsl_split_and_ground_truth_are_consistent() {
        let w = GzslWorkload::generate(&GzslWorkloadConfig {
            classes: 10,
            unseen: 3,
            attribute_dim: 24,
            queries: 12,
            distractors: 4,
            ..GzslWorkloadConfig::default()
        });
        assert_eq!(w.labels.len(), 10);
        assert_eq!(w.class_attributes.len(), 10);
        assert_eq!(w.seen_classes(), vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(w.unseen_classes(), vec![7, 8, 9]);
        assert_eq!(w.query_attributes.len(), 16);
        assert_eq!(w.query_class.len(), 16);
        // Round-robin covers both partitions; distractors carry no class.
        assert!(w.query_class[..12]
            .iter()
            .all(|c| matches!(c, Some(class) if *class < 10)));
        assert!(w.query_class[12..].iter().all(Option::is_none));
        // Attribute strengths stay in [0, 1].
        assert!(w
            .query_attributes
            .iter()
            .chain(&w.class_attributes)
            .flatten()
            .all(|&a| (0.0..=1.0).contains(&a)));
    }

    #[test]
    fn gzsl_noise_free_queries_equal_their_class_attributes() {
        let w = GzslWorkload::generate(&GzslWorkloadConfig {
            classes: 5,
            unseen: 2,
            attribute_dim: 16,
            queries: 5,
            distractors: 0,
            noise: 0.0,
            seed: 3,
        });
        for (q, class) in w.query_class.iter().enumerate() {
            let class = class.expect("no distractors configured");
            assert_eq!(w.query_attributes[q], w.class_attributes[class]);
        }
    }

    #[test]
    #[should_panic(expected = "at least one seen class")]
    fn gzsl_all_unseen_panics() {
        let _ = GzslWorkload::generate(&GzslWorkloadConfig {
            classes: 4,
            unseen: 4,
            ..GzslWorkloadConfig::default()
        });
    }

    #[test]
    fn stream_generation_is_seed_deterministic() {
        let config = StreamWorkloadConfig {
            classes: 5,
            feature_dim: 24,
            steps: 6,
            examples_per_step: 5,
            ..StreamWorkloadConfig::default()
        };
        let a = StreamWorkload::generate(&config);
        let b = StreamWorkload::generate(&config);
        assert_eq!(a, b);
        let c = StreamWorkload::generate(&StreamWorkloadConfig {
            seed: config.seed + 1,
            ..config
        });
        assert_ne!(a.examples, c.examples);
    }

    #[test]
    fn stream_shapes_and_round_robin_are_consistent() {
        let config = StreamWorkloadConfig {
            classes: 3,
            feature_dim: 16,
            steps: 4,
            examples_per_step: 6,
            ..StreamWorkloadConfig::default()
        };
        let w = StreamWorkload::generate(&config);
        assert_eq!(w.labels.len(), 3);
        assert_eq!(w.examples.len(), 24);
        assert!(w.examples.iter().all(|e| e.features.len() == 16));
        assert!(w.examples.iter().all(|e| e.class < 3));
        // Round-robin assignment touches every class every step.
        for step in 0..4 {
            let classes: Vec<usize> = w.step_examples(step).map(|e| e.class).collect();
            assert_eq!(classes.len(), 6);
            for c in 0..3 {
                assert!(classes.contains(&c));
            }
        }
        assert_eq!(w.initial_means.len(), 3);
        assert_eq!(w.final_means.len(), 3);
    }

    #[test]
    fn stream_without_drift_or_noise_repeats_the_means() {
        let w = StreamWorkload::generate(&StreamWorkloadConfig {
            classes: 2,
            feature_dim: 8,
            steps: 3,
            examples_per_step: 2,
            drift: 0.0,
            noise: 0.0,
            seed: 11,
        });
        assert_eq!(w.initial_means, w.final_means);
        for example in &w.examples {
            assert_eq!(example.features, w.initial_means[example.class]);
        }
    }

    #[test]
    fn stream_drift_moves_the_means() {
        let w = StreamWorkload::generate(&StreamWorkloadConfig {
            classes: 2,
            feature_dim: 32,
            steps: 8,
            examples_per_step: 2,
            drift: 0.2,
            noise: 0.0,
            ..StreamWorkloadConfig::default()
        });
        assert_ne!(w.initial_means, w.final_means);
    }

    #[test]
    fn auto_cluster_count_is_sqrt() {
        let config = WorkloadConfig {
            classes: 100,
            clusters: 0,
            ..WorkloadConfig::default()
        };
        assert_eq!(config.effective_clusters(), 10);
        let pinned = WorkloadConfig {
            clusters: 7,
            ..config
        };
        assert_eq!(pinned.effective_clusters(), 7);
    }
}
