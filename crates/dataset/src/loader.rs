//! Mini-batch iteration with deterministic shuffling.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Iterates over mini-batches of sample indices, reshuffling at the start of
/// every epoch with a seed derived from the epoch number (so runs are
/// reproducible while batches still vary across epochs).
///
/// # Example
///
/// ```
/// use dataset::BatchIterator;
///
/// let batches: Vec<Vec<usize>> = BatchIterator::new(10, 4, 0, 123).collect();
/// assert_eq!(batches.len(), 3);
/// assert_eq!(batches.iter().map(Vec::len).sum::<usize>(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct BatchIterator {
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl BatchIterator {
    /// Creates an iterator over `num_samples` indices in batches of
    /// `batch_size`, shuffled deterministically from `(seed, epoch)`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(num_samples: usize, batch_size: usize, epoch: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..num_samples).collect();
        let mut rng =
            StdRng::seed_from_u64(seed ^ (epoch as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Fisher–Yates shuffle.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        Self {
            order,
            batch_size,
            cursor: 0,
        }
    }

    /// Creates an unshuffled (sequential) iterator, used for evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn sequential(num_samples: usize, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            order: (0..num_samples).collect(),
            batch_size,
            cursor: 0,
        }
    }

    /// Number of batches this iterator will yield.
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }
}

impl Iterator for BatchIterator {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let batch = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn covers_every_index_exactly_once() {
        let batches: Vec<Vec<usize>> = BatchIterator::new(23, 5, 0, 7).collect();
        assert_eq!(batches.len(), 5);
        let all: Vec<usize> = batches.into_iter().flatten().collect();
        assert_eq!(all.len(), 23);
        let unique: BTreeSet<usize> = all.iter().cloned().collect();
        assert_eq!(unique.len(), 23);
        assert_eq!(*unique.iter().next_back().expect("non-empty"), 22);
    }

    #[test]
    fn last_batch_may_be_smaller() {
        let batches: Vec<Vec<usize>> = BatchIterator::new(10, 4, 0, 7).collect();
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[2].len(), 2);
    }

    #[test]
    fn shuffling_is_deterministic_per_epoch_but_differs_across_epochs() {
        let a: Vec<Vec<usize>> = BatchIterator::new(50, 8, 3, 99).collect();
        let b: Vec<Vec<usize>> = BatchIterator::new(50, 8, 3, 99).collect();
        let c: Vec<Vec<usize>> = BatchIterator::new(50, 8, 4, 99).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sequential_preserves_order() {
        let batches: Vec<Vec<usize>> = BatchIterator::sequential(6, 4).collect();
        assert_eq!(batches, vec![vec![0, 1, 2, 3], vec![4, 5]]);
        assert_eq!(BatchIterator::sequential(6, 4).num_batches(), 2);
    }

    #[test]
    fn empty_input_yields_no_batches() {
        assert_eq!(BatchIterator::new(0, 4, 0, 1).count(), 0);
        assert_eq!(BatchIterator::new(0, 4, 0, 1).num_batches(), 0);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        let _ = BatchIterator::new(5, 0, 0, 1);
    }
}
