//! Attribute schema: groups, value vocabulary, and the flattened attribute
//! index used throughout the reproduction.
//!
//! The CUB-200-2011 annotations define `α = 312` binary attributes, each of
//! which is a *(group, value)* pair — e.g. *(crown color, blue)*. There are
//! `G = 28` groups and only `V = 61` unique values because the colour and
//! pattern vocabularies are shared across many groups. The paper's HDC
//! attribute encoder exploits exactly this factorisation: it stores one
//! atomic hypervector per group and per value (89 vectors) instead of one per
//! attribute (312 vectors), a ~71% memory reduction.

use serde::{Deserialize, Serialize};

/// One attribute group (e.g. *crown color*) and the value vocabulary indices
/// it draws from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeGroup {
    /// Human-readable group name.
    pub name: String,
    /// Indices into the schema's value vocabulary, one per attribute in this
    /// group, in attribute order.
    pub value_ids: Vec<usize>,
}

impl AttributeGroup {
    /// Number of attributes (group/value combinations) in this group.
    pub fn len(&self) -> usize {
        self.value_ids.len()
    }

    /// Returns `true` if the group has no attributes (never the case for
    /// schema-constructed groups).
    pub fn is_empty(&self) -> bool {
        self.value_ids.is_empty()
    }
}

/// The full attribute schema: group definitions, the value vocabulary, and
/// the flattened attribute index.
///
/// Attribute `x ∈ {0, …, α−1}` corresponds to the pair
/// `(group_of(x), value_of(x))`; attributes are numbered group by group in
/// declaration order, which matches how the class-attribute matrix columns
/// are laid out.
///
/// # Example
///
/// ```
/// use dataset::AttributeSchema;
///
/// let schema = AttributeSchema::cub200();
/// assert_eq!(schema.num_groups(), 28);
/// assert_eq!(schema.num_values(), 61);
/// assert_eq!(schema.num_attributes(), 312);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeSchema {
    groups: Vec<AttributeGroup>,
    values: Vec<String>,
    /// attribute index -> (group index, value index)
    pairs: Vec<(usize, usize)>,
}

impl AttributeSchema {
    /// Builds a schema from explicit groups and a value vocabulary.
    ///
    /// # Panics
    ///
    /// Panics if any group is empty, any value id is out of range, or the
    /// vocabulary or group list is empty.
    pub fn new(groups: Vec<AttributeGroup>, values: Vec<String>) -> Self {
        assert!(!groups.is_empty(), "schema needs at least one group");
        assert!(!values.is_empty(), "schema needs at least one value");
        let mut pairs = Vec::new();
        for (g, group) in groups.iter().enumerate() {
            assert!(
                !group.is_empty(),
                "group '{}' has no attributes",
                group.name
            );
            for &v in &group.value_ids {
                assert!(
                    v < values.len(),
                    "group '{}' references value id {v} outside the vocabulary",
                    group.name
                );
                pairs.push((g, v));
            }
        }
        Self {
            groups,
            values,
            pairs,
        }
    }

    /// The CUB-200-2011 schema: 28 groups, 61 unique values, 312 attributes.
    ///
    /// Group sizes follow the real dataset (15-value colour groups, 4-value
    /// pattern groups, and the morphological groups); the value vocabulary is
    /// synthetic but shares colours and patterns across groups the same way
    /// the real annotations do, so the factored codebook has the same memory
    /// profile as in the paper.
    pub fn cub200() -> Self {
        let mut builder = SchemaBuilder::new();
        // Shared vocabularies.
        let colors = [
            "blue",
            "brown",
            "iridescent",
            "purple",
            "rufous",
            "grey",
            "yellow",
            "olive",
            "green",
            "pink",
            "orange",
            "black",
            "white",
            "red",
            "buff",
        ];
        let patterns = ["solid", "spotted", "striped", "multi-colored"];
        let color_ids = builder.intern_all(&colors);
        let pattern_ids = builder.intern_all(&patterns);
        // 15 colour groups using the full colour vocabulary.
        for group in [
            "wing color",
            "upperparts color",
            "underparts color",
            "back color",
            "upper tail color",
            "breast color",
            "throat color",
            "forehead color",
            "under tail color",
            "nape color",
            "belly color",
            "primary color",
            "leg color",
            "bill color",
            "crown color",
        ] {
            builder.push_group(group, color_ids.clone());
        }
        // Eye colour uses 14 of the 15 colours (no "buff"), as in CUB.
        builder.push_group("eye color", color_ids[..14].to_vec());
        // 5 pattern groups.
        for group in [
            "breast pattern",
            "back pattern",
            "tail pattern",
            "belly pattern",
            "wing pattern",
        ] {
            builder.push_group(group, pattern_ids.clone());
        }
        // Morphological groups with their own (partially shared) vocabularies.
        let bill_shape = builder.intern_all(&[
            "curved",
            "dagger",
            "hooked",
            "needle",
            "hooked seabird",
            "spatulate",
            "all-purpose",
            "cone",
            "specialized",
        ]);
        builder.push_group("bill shape", bill_shape);
        let tail_shape = builder.intern_all(&[
            "forked",
            "rounded",
            "notched",
            "fan-shaped",
            "pointed",
            "squared",
        ]);
        builder.push_group("tail shape", tail_shape);
        // Head pattern shares "spotted"/"striped" with the pattern vocabulary.
        let head_pattern = builder.intern_all(&[
            "spotted",
            "malar",
            "crested",
            "masked",
            "unique pattern",
            "eyebrow",
            "eyering",
            "plain",
            "eyeline",
            "striped",
            "capped",
        ]);
        builder.push_group("head pattern", head_pattern);
        let bill_length =
            builder.intern_all(&["same as head", "longer than head", "shorter than head"]);
        builder.push_group("bill length", bill_length);
        // Wing shape shares "rounded"/"pointed" with tail shape.
        let wing_shape = builder.intern_all(&["rounded", "pointed", "broad", "tapered", "long"]);
        builder.push_group("wing shape", wing_shape);
        let size = builder.intern_all(&["large", "small", "very large", "medium", "very small"]);
        builder.push_group("size", size);
        // Shape: 7 novel silhouettes plus 7 descriptors shared with earlier
        // vocabularies, mirroring how CUB reaches 61 unique values overall.
        let shape = builder.intern_all(&[
            "perching-like",
            "chicken-like",
            "long-legged",
            "duck-like",
            "owl-like",
            "gull-like",
            "hummingbird-like",
            "crested",
            "masked",
            "plain",
            "capped",
            "broad",
            "tapered",
            "long",
        ]);
        builder.push_group("shape", shape);
        builder.build()
    }

    /// A small synthetic schema for tests: `groups` groups of
    /// `values_per_group` attributes each, with a private value vocabulary
    /// per group (no sharing).
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn synthetic(groups: usize, values_per_group: usize) -> Self {
        assert!(
            groups > 0 && values_per_group > 0,
            "schema dims must be positive"
        );
        let mut builder = SchemaBuilder::new();
        for g in 0..groups {
            let names: Vec<String> = (0..values_per_group)
                .map(|v| format!("g{g}-v{v}"))
                .collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let ids = builder.intern_all(&refs);
            builder.push_group(format!("group{g}"), ids);
        }
        builder.build()
    }

    /// Number of attribute groups (`G`).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of unique attribute values (`V`).
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Number of attributes / group-value combinations (`α`).
    pub fn num_attributes(&self) -> usize {
        self.pairs.len()
    }

    /// The attribute groups in declaration order.
    pub fn groups(&self) -> &[AttributeGroup] {
        &self.groups
    }

    /// The value vocabulary.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// The `(group, value)` pair of attribute `attribute`.
    ///
    /// # Panics
    ///
    /// Panics if `attribute >= self.num_attributes()`.
    pub fn pair_of(&self, attribute: usize) -> (usize, usize) {
        self.pairs[attribute]
    }

    /// The group index of attribute `attribute`.
    ///
    /// # Panics
    ///
    /// Panics if `attribute >= self.num_attributes()`.
    pub fn group_of(&self, attribute: usize) -> usize {
        self.pairs[attribute].0
    }

    /// The value index of attribute `attribute`.
    ///
    /// # Panics
    ///
    /// Panics if `attribute >= self.num_attributes()`.
    pub fn value_of(&self, attribute: usize) -> usize {
        self.pairs[attribute].1
    }

    /// All `(group, value)` pairs in attribute order.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// The attribute (column) indices belonging to group `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group >= self.num_groups()`.
    pub fn group_columns(&self, group: usize) -> Vec<usize> {
        assert!(group < self.groups.len(), "group index out of range");
        self.pairs
            .iter()
            .enumerate()
            .filter(|(_, &(g, _))| g == group)
            .map(|(i, _)| i)
            .collect()
    }

    /// `(name, columns)` pairs for every group, in declaration order — the
    /// layout consumed by [`metrics::wmap::evaluate_groups`].
    ///
    /// [`metrics::wmap::evaluate_groups`]: https://docs.rs/metrics
    pub fn group_layout(&self) -> Vec<(String, Vec<usize>)> {
        (0..self.num_groups())
            .map(|g| (self.groups[g].name.clone(), self.group_columns(g)))
            .collect()
    }

    /// Human-readable name of attribute `attribute`, e.g.
    /// `"crown color::blue"`.
    ///
    /// # Panics
    ///
    /// Panics if `attribute >= self.num_attributes()`.
    pub fn attribute_name(&self, attribute: usize) -> String {
        let (g, v) = self.pairs[attribute];
        format!("{}::{}", self.groups[g].name, self.values[v])
    }
}

/// Incremental builder used by the schema constructors.
struct SchemaBuilder {
    groups: Vec<AttributeGroup>,
    values: Vec<String>,
}

impl SchemaBuilder {
    fn new() -> Self {
        Self {
            groups: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Interns a value name, returning its vocabulary index (reusing the
    /// existing index if the name was seen before).
    fn intern(&mut self, name: &str) -> usize {
        if let Some(pos) = self.values.iter().position(|v| v == name) {
            pos
        } else {
            self.values.push(name.to_string());
            self.values.len() - 1
        }
    }

    fn intern_all(&mut self, names: &[&str]) -> Vec<usize> {
        names.iter().map(|n| self.intern(n)).collect()
    }

    fn push_group(&mut self, name: impl Into<String>, value_ids: Vec<usize>) {
        self.groups.push(AttributeGroup {
            name: name.into(),
            value_ids,
        });
    }

    fn build(self) -> AttributeSchema {
        AttributeSchema::new(self.groups, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cub200_matches_paper_counts() {
        let schema = AttributeSchema::cub200();
        assert_eq!(schema.num_groups(), 28, "paper: G = 28 groups");
        assert_eq!(schema.num_values(), 61, "paper: V = 61 unique values");
        assert_eq!(schema.num_attributes(), 312, "paper: α = 312 attributes");
    }

    #[test]
    fn cub200_group_sizes_sum_to_attribute_count() {
        let schema = AttributeSchema::cub200();
        let total: usize = schema.groups().iter().map(AttributeGroup::len).sum();
        assert_eq!(total, schema.num_attributes());
        // Colour groups have 15 values, pattern groups 4.
        let crown = schema
            .groups()
            .iter()
            .find(|g| g.name == "crown color")
            .expect("crown color group exists");
        assert_eq!(crown.len(), 15);
        let wing_pattern = schema
            .groups()
            .iter()
            .find(|g| g.name == "wing pattern")
            .expect("wing pattern group exists");
        assert_eq!(wing_pattern.len(), 4);
    }

    #[test]
    fn colours_are_shared_across_groups() {
        let schema = AttributeSchema::cub200();
        // Find the value id of "blue" in two different colour groups: it must
        // be the same vocabulary entry.
        let crown_idx = schema
            .groups()
            .iter()
            .position(|g| g.name == "crown color")
            .expect("exists");
        let wing_idx = schema
            .groups()
            .iter()
            .position(|g| g.name == "wing color")
            .expect("exists");
        let crown_cols = schema.group_columns(crown_idx);
        let wing_cols = schema.group_columns(wing_idx);
        assert_eq!(
            schema.value_of(crown_cols[0]),
            schema.value_of(wing_cols[0])
        );
    }

    #[test]
    fn pair_and_column_round_trip() {
        let schema = AttributeSchema::cub200();
        for attr in 0..schema.num_attributes() {
            let (g, v) = schema.pair_of(attr);
            assert_eq!(schema.group_of(attr), g);
            assert_eq!(schema.value_of(attr), v);
            assert!(schema.group_columns(g).contains(&attr));
            assert!(v < schema.num_values());
        }
    }

    #[test]
    fn group_layout_covers_every_attribute_once() {
        let schema = AttributeSchema::cub200();
        let layout = schema.group_layout();
        assert_eq!(layout.len(), 28);
        let mut seen = vec![false; schema.num_attributes()];
        for (_, cols) in &layout {
            for &c in cols {
                assert!(!seen[c], "attribute {c} appears in two groups");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn attribute_names_are_descriptive() {
        let schema = AttributeSchema::cub200();
        let name = schema.attribute_name(0);
        assert!(name.contains("::"));
        assert!(name.starts_with("wing color"));
    }

    #[test]
    fn synthetic_schema_counts() {
        let schema = AttributeSchema::synthetic(4, 5);
        assert_eq!(schema.num_groups(), 4);
        assert_eq!(schema.num_values(), 20);
        assert_eq!(schema.num_attributes(), 20);
        assert_eq!(schema.group_columns(2).len(), 5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn synthetic_rejects_zero_groups() {
        let _ = AttributeSchema::synthetic(0, 3);
    }

    #[test]
    fn memory_reduction_matches_paper() {
        // The whole point of the factored schema: G + V entries instead of α.
        let schema = AttributeSchema::cub200();
        let factored = schema.num_groups() + schema.num_values();
        let reduction = 1.0 - factored as f32 / schema.num_attributes() as f32;
        assert!((reduction - 0.71).abs() < 0.01, "reduction was {reduction}");
    }
}
