//! Train/test class splits: the noZS, ZS and validation protocols of §IV-A.

use serde::{Deserialize, Serialize};

/// The split protocols evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SplitKind {
    /// `noZS`: 100 classes, whose *samples* are divided between train and
    /// test (the same classes appear on both sides). Used for the
    /// attribute-extraction comparison (Table I), matching Finetag / A3M.
    NoZs,
    /// `ZS`: 150 training classes and 50 *disjoint* test classes — the
    /// zero-shot protocol of Fig. 4 and Table II.
    Zs,
    /// Validation: 50 classes disjoint from both the ZS training and test
    /// classes, used for the hyper-parameter exploration of Fig. 5.
    Validation,
}

impl std::fmt::Display for SplitKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SplitKind::NoZs => "noZS",
            SplitKind::Zs => "ZS",
            SplitKind::Validation => "validation",
        };
        f.write_str(name)
    }
}

/// A concrete assignment of class indices to the train and evaluation sides
/// of a split.
///
/// For [`SplitKind::Zs`] and [`SplitKind::Validation`] the two sides are
/// disjoint (zero-shot); for [`SplitKind::NoZs`] they are identical and the
/// *instance*-level split is handled downstream.
///
/// # Example
///
/// ```
/// use dataset::{ClassSplit, SplitKind};
///
/// let split = ClassSplit::new(SplitKind::Zs, 200);
/// assert_eq!(split.train_classes().len(), 150);
/// assert_eq!(split.eval_classes().len(), 50);
/// assert!(split.is_zero_shot());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassSplit {
    kind: SplitKind,
    train: Vec<usize>,
    eval: Vec<usize>,
}

impl ClassSplit {
    /// Builds the canonical split of `num_classes` classes for the given
    /// protocol.
    ///
    /// Classes are assigned deterministically by index (the CUB splits in the
    /// literature are likewise fixed lists):
    ///
    /// * `noZS` — the first 100 classes on both sides;
    /// * `ZS` — classes `0..150` for training, `150..200` for evaluation;
    /// * `validation` — classes `0..100` for training, `100..150` for
    ///   evaluation (disjoint from the ZS test classes `150..200`).
    ///
    /// # Panics
    ///
    /// Panics if `num_classes < 200` for the canonical protocols; use
    /// [`ClassSplit::custom`] for smaller synthetic datasets.
    pub fn new(kind: SplitKind, num_classes: usize) -> Self {
        assert!(
            num_classes >= 200,
            "canonical CUB splits need 200 classes; use ClassSplit::custom for smaller datasets"
        );
        match kind {
            SplitKind::NoZs => {
                let classes: Vec<usize> = (0..100).collect();
                Self {
                    kind,
                    train: classes.clone(),
                    eval: classes,
                }
            }
            SplitKind::Zs => Self {
                kind,
                train: (0..150).collect(),
                eval: (150..200).collect(),
            },
            SplitKind::Validation => Self {
                kind,
                train: (0..100).collect(),
                eval: (100..150).collect(),
            },
        }
    }

    /// Builds a split with the same proportions as the canonical protocol but
    /// scaled to `num_classes` classes (for fast tests and examples).
    ///
    /// # Panics
    ///
    /// Panics if `num_classes < 4`.
    pub fn scaled(kind: SplitKind, num_classes: usize) -> Self {
        assert!(num_classes >= 4, "need at least four classes");
        match kind {
            SplitKind::NoZs => {
                let classes: Vec<usize> = (0..num_classes / 2).collect();
                Self {
                    kind,
                    train: classes.clone(),
                    eval: classes,
                }
            }
            SplitKind::Zs => {
                let train_count = num_classes * 3 / 4;
                Self {
                    kind,
                    train: (0..train_count).collect(),
                    eval: (train_count..num_classes).collect(),
                }
            }
            SplitKind::Validation => {
                let train_count = num_classes / 2;
                let eval_count = num_classes / 4;
                Self {
                    kind,
                    train: (0..train_count).collect(),
                    eval: (train_count..train_count + eval_count).collect(),
                }
            }
        }
    }

    /// Builds an arbitrary split from explicit class lists.
    ///
    /// # Panics
    ///
    /// Panics if either side is empty.
    pub fn custom(kind: SplitKind, train: Vec<usize>, eval: Vec<usize>) -> Self {
        assert!(
            !train.is_empty() && !eval.is_empty(),
            "both sides must be non-empty"
        );
        Self { kind, train, eval }
    }

    /// The protocol this split instantiates.
    pub fn kind(&self) -> SplitKind {
        self.kind
    }

    /// Class indices available during training.
    pub fn train_classes(&self) -> &[usize] {
        &self.train
    }

    /// Class indices used for evaluation.
    pub fn eval_classes(&self) -> &[usize] {
        &self.eval
    }

    /// Returns `true` if the train and evaluation classes are disjoint (the
    /// zero-shot setting).
    pub fn is_zero_shot(&self) -> bool {
        !self.train.iter().any(|c| self.eval.contains(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_zs_split_matches_paper() {
        let split = ClassSplit::new(SplitKind::Zs, 200);
        assert_eq!(split.train_classes().len(), 150);
        assert_eq!(split.eval_classes().len(), 50);
        assert!(split.is_zero_shot());
        assert_eq!(split.kind(), SplitKind::Zs);
    }

    #[test]
    fn canonical_nozs_split_shares_classes() {
        let split = ClassSplit::new(SplitKind::NoZs, 200);
        assert_eq!(split.train_classes().len(), 100);
        assert_eq!(split.eval_classes().len(), 100);
        assert!(!split.is_zero_shot());
    }

    #[test]
    fn validation_split_is_disjoint_from_zs_test() {
        let val = ClassSplit::new(SplitKind::Validation, 200);
        let zs = ClassSplit::new(SplitKind::Zs, 200);
        assert_eq!(val.eval_classes().len(), 50);
        assert!(val.is_zero_shot());
        // Fig. 5 requires the validation classes to be disjoint from the ZS
        // test classes so that hyper-parameters are not tuned on test data.
        for c in val.eval_classes() {
            assert!(!zs.eval_classes().contains(c));
        }
    }

    #[test]
    fn scaled_splits_preserve_proportions() {
        let zs = ClassSplit::scaled(SplitKind::Zs, 40);
        assert_eq!(zs.train_classes().len(), 30);
        assert_eq!(zs.eval_classes().len(), 10);
        assert!(zs.is_zero_shot());
        let nozs = ClassSplit::scaled(SplitKind::NoZs, 40);
        assert_eq!(nozs.train_classes().len(), 20);
        assert!(!nozs.is_zero_shot());
        let val = ClassSplit::scaled(SplitKind::Validation, 40);
        assert!(val.is_zero_shot());
    }

    #[test]
    fn custom_split() {
        let split = ClassSplit::custom(SplitKind::Zs, vec![0, 1, 2], vec![3, 4]);
        assert!(split.is_zero_shot());
        let overlapping = ClassSplit::custom(SplitKind::Zs, vec![0, 1], vec![1, 2]);
        assert!(!overlapping.is_zero_shot());
    }

    #[test]
    fn display_names() {
        assert_eq!(SplitKind::NoZs.to_string(), "noZS");
        assert_eq!(SplitKind::Zs.to_string(), "ZS");
        assert_eq!(SplitKind::Validation.to_string(), "validation");
    }

    #[test]
    #[should_panic(expected = "200 classes")]
    fn canonical_split_requires_full_dataset() {
        let _ = ClassSplit::new(SplitKind::Zs, 100);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn custom_split_rejects_empty_sides() {
        let _ = ClassSplit::custom(SplitKind::Zs, vec![], vec![1]);
    }
}
