//! Class-level continuous attribute matrices (the analogue of CUB's
//! annotator-agreement percentages).

use crate::schema::AttributeSchema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tensor::Matrix;

/// The continuous class-attribute matrix `A ∈ R^{C×α}` plus class names.
///
/// Each row describes one class; entry `(c, x)` is the strength with which
/// attribute `x` applies to class `c` (in `[0, 1]`, like the fraction of CUB
/// annotators who marked the attribute). Per attribute group each class has a
/// dominant value with high strength, optionally a secondary value with
/// moderate strength, and low residual strengths elsewhere — which is the
/// structure the real matrix exhibits and what makes fine-grained zero-shot
/// transfer possible (classes share values across groups in novel
/// combinations).
///
/// # Example
///
/// ```
/// use dataset::{AttributeSchema, ClassAttributes};
///
/// let schema = AttributeSchema::cub200();
/// let classes = ClassAttributes::generate(&schema, 200, 42);
/// assert_eq!(classes.matrix().shape(), (200, 312));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassAttributes {
    names: Vec<String>,
    matrix: Matrix,
    /// Per class and per group, the dominant value's attribute column.
    dominant: Vec<Vec<usize>>,
}

impl ClassAttributes {
    /// Strength assigned to a class's dominant value within a group.
    pub const DOMINANT_STRENGTH: f32 = 0.9;
    /// Strength assigned to the optional secondary value.
    pub const SECONDARY_STRENGTH: f32 = 0.35;
    /// Upper bound of the residual (background) strengths.
    pub const RESIDUAL_MAX: f32 = 0.08;

    /// Generates `num_classes` mutually independent class descriptions over
    /// the given schema, deterministically from `seed`.
    ///
    /// Every class draws its dominant value independently for every group, so
    /// two classes differ in almost every group — an *easy* discrimination
    /// regime. For the fine-grained regime the paper evaluates (bird species
    /// that differ in only a few visible attributes), use
    /// [`ClassAttributes::generate_structured`].
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0`.
    pub fn generate(schema: &AttributeSchema, num_classes: usize, seed: u64) -> Self {
        Self::generate_structured(schema, num_classes, 0, 0, seed)
    }

    /// Generates `num_classes` class descriptions organised into
    /// `num_families` families (genera): classes within a family share a
    /// common prototype and differ from it in only `distinct_groups`
    /// randomly chosen attribute groups.
    ///
    /// This reproduces the *fine-grained* character of CUB-200 — most of a
    /// bird's attributes are shared with related species and only a handful
    /// are discriminative — which is what keeps zero-shot accuracy well below
    /// 100% in the paper. With `num_families == 0` (or `>= num_classes`)
    /// every class is independent.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0`.
    pub fn generate_structured(
        schema: &AttributeSchema,
        num_classes: usize,
        num_families: usize,
        distinct_groups: usize,
        seed: u64,
    ) -> Self {
        assert!(num_classes > 0, "need at least one class");
        let mut rng = StdRng::seed_from_u64(seed);
        let alpha = schema.num_attributes();
        let groups = schema.num_groups();
        let structured = num_families > 0 && num_families < num_classes;
        // Family prototypes: one dominant column per group.
        let prototype_count = if structured {
            num_families
        } else {
            num_classes
        };
        let prototypes: Vec<Vec<usize>> = (0..prototype_count)
            .map(|_| {
                (0..groups)
                    .map(|g| {
                        let columns = schema.group_columns(g);
                        columns[rng.gen_range(0..columns.len())]
                    })
                    .collect()
            })
            .collect();
        let mut matrix = Matrix::zeros(num_classes, alpha);
        let mut dominant = Vec::with_capacity(num_classes);
        for c in 0..num_classes {
            // Start from the family prototype (or an independent one).
            let prototype = &prototypes[if structured { c % num_families } else { c }];
            let mut class_dominant = prototype.clone();
            if structured {
                // Mutate a few groups so sibling species stay distinguishable
                // (always at least one, so no two classes are identical).
                let mutations = distinct_groups.clamp(1, groups);
                let mut mutated = Vec::new();
                while mutated.len() < mutations {
                    let g = rng.gen_range(0..groups);
                    if mutated.contains(&g) {
                        continue;
                    }
                    let columns = schema.group_columns(g);
                    if columns.len() < 2 {
                        mutated.push(g);
                        continue;
                    }
                    loop {
                        let candidate = columns[rng.gen_range(0..columns.len())];
                        if candidate != prototype[g] {
                            class_dominant[g] = candidate;
                            break;
                        }
                    }
                    mutated.push(g);
                }
            }
            // Low residual strengths everywhere.
            for x in 0..alpha {
                matrix.set(c, x, rng.gen_range(0.0..Self::RESIDUAL_MAX));
            }
            for (g, &dominant_col) in class_dominant.iter().enumerate() {
                let columns = schema.group_columns(g);
                matrix.set(
                    c,
                    dominant_col,
                    Self::DOMINANT_STRENGTH + rng.gen_range(0.0..(1.0 - Self::DOMINANT_STRENGTH)),
                );
                // With 30% probability the class also has a secondary value
                // (e.g. a bird whose crown is "black" for some annotators and
                // "grey" for others).
                if columns.len() > 1 && rng.gen_bool(0.3) {
                    loop {
                        let secondary = columns[rng.gen_range(0..columns.len())];
                        if secondary != dominant_col {
                            matrix.set(
                                c,
                                secondary,
                                Self::SECONDARY_STRENGTH + rng.gen_range(-0.1f32..0.1),
                            );
                            break;
                        }
                    }
                }
            }
            dominant.push(class_dominant);
        }
        let names = (0..num_classes)
            .map(|c| format!("species-{c:03}"))
            .collect();
        Self {
            names,
            matrix,
            dominant,
        }
    }

    /// Number of classes `C`.
    pub fn num_classes(&self) -> usize {
        self.matrix.rows()
    }

    /// The continuous class-attribute matrix `A ∈ R^{C×α}`.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Class names (`species-000` …).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The attribute column holding class `class`'s dominant value for group
    /// `group`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn dominant_attribute(&self, class: usize, group: usize) -> usize {
        self.dominant[class][group]
    }

    /// Returns the sub-matrix containing only the rows of the given classes
    /// (in the given order) — used to build the per-split class-attribute
    /// matrices fed to the attribute encoder.
    ///
    /// # Panics
    ///
    /// Panics if any class index is out of range.
    pub fn select(&self, classes: &[usize]) -> Matrix {
        self.matrix.select_rows(classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> AttributeSchema {
        AttributeSchema::cub200()
    }

    #[test]
    fn shape_and_determinism() {
        let s = schema();
        let a = ClassAttributes::generate(&s, 50, 1);
        let b = ClassAttributes::generate(&s, 50, 1);
        let c = ClassAttributes::generate(&s, 50, 2);
        assert_eq!(a.matrix().shape(), (50, 312));
        assert_eq!(a, b, "generation must be deterministic in the seed");
        assert_ne!(a, c, "different seeds give different classes");
        assert_eq!(a.num_classes(), 50);
        assert_eq!(a.names().len(), 50);
    }

    #[test]
    fn every_group_has_a_dominant_value() {
        let s = schema();
        let classes = ClassAttributes::generate(&s, 20, 3);
        for c in 0..20 {
            for g in 0..s.num_groups() {
                let dom = classes.dominant_attribute(c, g);
                assert_eq!(s.group_of(dom), g);
                assert!(classes.matrix().get(c, dom) >= ClassAttributes::DOMINANT_STRENGTH);
            }
        }
    }

    #[test]
    fn strengths_lie_in_unit_interval() {
        let s = schema();
        let classes = ClassAttributes::generate(&s, 30, 4);
        for &v in classes.matrix().as_slice() {
            assert!((0.0..=1.0).contains(&v), "strength {v} out of range");
        }
    }

    #[test]
    fn classes_are_distinguishable() {
        // Two random classes should differ in the dominant value of most
        // groups — otherwise zero-shot discrimination would be impossible.
        let s = schema();
        let classes = ClassAttributes::generate(&s, 100, 5);
        let mut identical_pairs = 0;
        for a in 0..20 {
            for b in (a + 1)..20 {
                let same = (0..s.num_groups())
                    .filter(|&g| {
                        classes.dominant_attribute(a, g) == classes.dominant_attribute(b, g)
                    })
                    .count();
                if same == s.num_groups() {
                    identical_pairs += 1;
                }
            }
        }
        assert_eq!(identical_pairs, 0, "classes must not collide");
    }

    #[test]
    fn select_picks_rows_in_order() {
        let s = schema();
        let classes = ClassAttributes::generate(&s, 10, 6);
        let sub = classes.select(&[7, 2]);
        assert_eq!(sub.rows(), 2);
        assert_eq!(sub.row(0), classes.matrix().row(7));
        assert_eq!(sub.row(1), classes.matrix().row(2));
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_rejected() {
        let _ = ClassAttributes::generate(&schema(), 0, 1);
    }

    #[test]
    fn structured_classes_share_most_groups_within_a_family() {
        let s = schema();
        let num_classes = 40;
        let families = 8;
        let distinct = 4;
        let classes = ClassAttributes::generate_structured(&s, num_classes, families, distinct, 9);
        // Classes in the same family (same index mod families) differ in at
        // most `distinct` groups; classes in different families differ in
        // many more on average.
        let differing = |a: usize, b: usize| {
            (0..s.num_groups())
                .filter(|&g| classes.dominant_attribute(a, g) != classes.dominant_attribute(b, g))
                .count()
        };
        let same_family = differing(0, families); // classes 0 and 8 share family 0
        assert!(
            same_family <= 2 * distinct,
            "siblings differ in {same_family} groups"
        );
        assert!(same_family >= 1, "siblings must stay distinguishable");
        let cross_family = differing(0, 1);
        assert!(
            cross_family > 2 * distinct,
            "cross-family classes differ in only {cross_family} groups"
        );
    }

    #[test]
    fn structured_generation_with_zero_families_matches_independent() {
        let s = schema();
        let a = ClassAttributes::generate(&s, 12, 3);
        let b = ClassAttributes::generate_structured(&s, 12, 0, 0, 3);
        assert_eq!(a, b);
    }
}
