//! Per-image attribute realisations.
//!
//! CUB-200 provides instance-level attribute annotations in addition to the
//! class-level matrix; the paper's phase-II training predicts the *instance*
//! attributes of each training image. This module samples synthetic
//! instance-level realisations from the class-level strengths: for each
//! attribute group the instance activates (usually) one value drawn from the
//! class's strength distribution, with annotation noise and occasional
//! missing groups — reproducing the "dominating number of inactive
//! attributes" imbalance the paper's weighted BCE loss addresses.

use crate::classes::ClassAttributes;
use crate::schema::AttributeSchema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tensor::Matrix;

/// One synthetic image: its class label and its binary attribute realisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Ground-truth class index (into the dataset's class list).
    pub class: usize,
    /// Active attribute columns (one per annotated group, unsorted duplicates
    /// never occur).
    pub active_attributes: Vec<usize>,
}

impl Instance {
    /// Dense binary attribute vector of length `alpha`.
    pub fn attribute_vector(&self, alpha: usize) -> Vec<f32> {
        let mut v = vec![0.0f32; alpha];
        for &a in &self.active_attributes {
            v[a] = 1.0;
        }
        v
    }
}

/// Parameters controlling instance sampling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceNoise {
    /// Probability that a group's active value is re-drawn uniformly at
    /// random instead of following the class distribution (annotation error /
    /// occlusion).
    pub flip_prob: f64,
    /// Probability that a group is left unannotated for the instance.
    pub dropout_prob: f64,
}

impl Default for InstanceNoise {
    fn default() -> Self {
        Self {
            flip_prob: 0.10,
            dropout_prob: 0.05,
        }
    }
}

/// A set of sampled instances together with the matrices consumed by the
/// trainers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceSet {
    instances: Vec<Instance>,
    alpha: usize,
}

impl InstanceSet {
    /// Samples `per_class` instances for every class in `classes`,
    /// deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `per_class == 0`.
    pub fn sample(
        schema: &AttributeSchema,
        classes: &ClassAttributes,
        per_class: usize,
        noise: InstanceNoise,
        seed: u64,
    ) -> Self {
        assert!(per_class > 0, "need at least one instance per class");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut instances = Vec::with_capacity(classes.num_classes() * per_class);
        for class in 0..classes.num_classes() {
            for _ in 0..per_class {
                instances.push(Self::sample_one(schema, classes, class, noise, &mut rng));
            }
        }
        Self {
            instances,
            alpha: schema.num_attributes(),
        }
    }

    fn sample_one(
        schema: &AttributeSchema,
        classes: &ClassAttributes,
        class: usize,
        noise: InstanceNoise,
        rng: &mut StdRng,
    ) -> Instance {
        let mut active = Vec::with_capacity(schema.num_groups());
        for g in 0..schema.num_groups() {
            if rng.gen_bool(noise.dropout_prob) {
                continue;
            }
            let columns = schema.group_columns(g);
            let chosen = if rng.gen_bool(noise.flip_prob) {
                columns[rng.gen_range(0..columns.len())]
            } else {
                // Sample proportionally to the *cubed* class-level strengths:
                // sharpening makes the class's dominant value clearly the most
                // likely annotation while still allowing secondary values, the
                // behaviour the per-image CUB annotations exhibit.
                let weights: Vec<f32> = columns
                    .iter()
                    .map(|&c| classes.matrix().get(class, c).max(1e-4).powi(3))
                    .collect();
                let total: f32 = weights.iter().sum();
                let mut draw = rng.gen_range(0.0..total);
                let mut pick = columns[columns.len() - 1];
                for (&col, &w) in columns.iter().zip(&weights) {
                    if draw < w {
                        pick = col;
                        break;
                    }
                    draw -= w;
                }
                pick
            };
            active.push(chosen);
        }
        Instance {
            class,
            active_attributes: active,
        }
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Returns `true` if the set holds no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Attribute dimensionality `α`.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// Borrow of the instances in sampling order (grouped by class).
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Indices of the instances whose class is in `classes`.
    pub fn indices_of_classes(&self, classes: &[usize]) -> Vec<usize> {
        self.instances
            .iter()
            .enumerate()
            .filter(|(_, inst)| classes.contains(&inst.class))
            .map(|(i, _)| i)
            .collect()
    }

    /// Dense `N×α` binary attribute-target matrix for the given instance
    /// indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn attribute_targets(&self, indices: &[usize]) -> Matrix {
        let rows: Vec<Vec<f32>> = indices
            .iter()
            .map(|&i| self.instances[i].attribute_vector(self.alpha))
            .collect();
        if rows.is_empty() {
            Matrix::zeros(0, self.alpha)
        } else {
            Matrix::from_rows(&rows)
        }
    }

    /// Class labels of the given instance indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn labels(&self, indices: &[usize]) -> Vec<usize> {
        indices.iter().map(|&i| self.instances[i].class).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (AttributeSchema, ClassAttributes) {
        let schema = AttributeSchema::cub200();
        let classes = ClassAttributes::generate(&schema, 10, 7);
        (schema, classes)
    }

    #[test]
    fn sampling_is_deterministic_and_counts_match() {
        let (schema, classes) = fixture();
        let a = InstanceSet::sample(&schema, &classes, 5, InstanceNoise::default(), 11);
        let b = InstanceSet::sample(&schema, &classes, 5, InstanceNoise::default(), 11);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert!(!a.is_empty());
        assert_eq!(a.alpha(), 312);
    }

    #[test]
    fn instances_activate_at_most_one_value_per_group() {
        let (schema, classes) = fixture();
        let set = InstanceSet::sample(&schema, &classes, 3, InstanceNoise::default(), 12);
        for inst in set.instances() {
            let mut groups_seen = vec![false; schema.num_groups()];
            for &a in &inst.active_attributes {
                let g = schema.group_of(a);
                assert!(!groups_seen[g], "group {g} activated twice");
                groups_seen[g] = true;
            }
            assert!(inst.active_attributes.len() <= schema.num_groups());
        }
    }

    #[test]
    fn most_attributes_are_inactive() {
        // The imbalance the paper's weighted BCE addresses: ≤ 28 of 312
        // attributes are active per instance.
        let (schema, classes) = fixture();
        let set = InstanceSet::sample(&schema, &classes, 4, InstanceNoise::default(), 13);
        let targets = set.attribute_targets(&(0..set.len()).collect::<Vec<_>>());
        let active_fraction = targets.mean();
        assert!(active_fraction < 0.1, "active fraction {active_fraction}");
        assert!(active_fraction > 0.05);
    }

    #[test]
    fn noise_free_instances_follow_dominant_values() {
        let (schema, classes) = fixture();
        let clean = InstanceNoise {
            flip_prob: 0.0,
            dropout_prob: 0.0,
        };
        let set = InstanceSet::sample(&schema, &classes, 5, clean, 14);
        let mut dominant_hits = 0usize;
        let mut total = 0usize;
        for inst in set.instances() {
            for &a in &inst.active_attributes {
                let g = schema.group_of(a);
                total += 1;
                if classes.dominant_attribute(inst.class, g) == a {
                    dominant_hits += 1;
                }
            }
        }
        let ratio = dominant_hits as f32 / total as f32;
        assert!(
            ratio > 0.7,
            "dominant value chosen only {ratio} of the time"
        );
    }

    #[test]
    fn class_filters_and_labels() {
        let (schema, classes) = fixture();
        let set = InstanceSet::sample(&schema, &classes, 2, InstanceNoise::default(), 15);
        let picked = set.indices_of_classes(&[3, 7]);
        assert_eq!(picked.len(), 4);
        let labels = set.labels(&picked);
        assert!(labels.iter().all(|&c| c == 3 || c == 7));
        let targets = set.attribute_targets(&picked);
        assert_eq!(targets.shape(), (4, 312));
        assert_eq!(set.attribute_targets(&[]).shape(), (0, 312));
    }

    #[test]
    fn attribute_vector_is_binary() {
        let (schema, classes) = fixture();
        let set = InstanceSet::sample(&schema, &classes, 1, InstanceNoise::default(), 16);
        let v = set.instances()[0].attribute_vector(schema.num_attributes());
        assert_eq!(v.len(), 312);
        assert!(v.iter().all(|&x| x == 0.0 || x == 1.0));
    }
}
