//! ESZSL: "An embarrassingly simple approach to zero-shot learning"
//! (Romera-Paredes & Torr, ICML 2015) — the non-generative baseline the
//! paper's headline comparison targets.
//!
//! ESZSL learns a bilinear compatibility `xᵀ V s` between an image feature
//! `x ∈ R^d` and a class attribute signature `s ∈ R^α` by minimising a
//! squared loss with Frobenius regularisation, which has the closed form
//!
//! ```text
//! V = (X Xᵀ + γ I_d)⁻¹  X Y Sᵀ  (S Sᵀ + λ I_α)⁻¹
//! ```
//!
//! where `X ∈ R^{d×N}` stacks the training features, `Y ∈ {−1,1}^{N×C}` the
//! one-vs-rest labels and `S ∈ R^{α×C}` the seen-class signatures. At test
//! time an image is assigned to the unseen class whose signature maximises
//! `xᵀ V s`.

use engine::{DenseClassMemory, DenseMetric, Scorer};
use serde::{Deserialize, Serialize};
use tensor::{ridge_solve, Matrix};

/// Regularisation constants of the ESZSL objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EszslConfig {
    /// Feature-space ridge term `γ` (applied to `X Xᵀ`).
    pub gamma: f32,
    /// Signature-space ridge term `λ` (applied to `S Sᵀ`).
    pub lambda: f32,
}

impl Default for EszslConfig {
    /// Moderate regularisation that works well across the synthetic
    /// configurations (the original paper tunes `γ, λ ∈ 10^{−3}…10^{3}` per
    /// dataset).
    fn default() -> Self {
        Self {
            gamma: 1.0,
            lambda: 1.0,
        }
    }
}

/// A fitted ESZSL model: the bilinear compatibility matrix `V ∈ R^{d×α}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Eszsl {
    compatibility: Matrix,
    config: EszslConfig,
}

impl Eszsl {
    /// Fits the closed-form ESZSL solution.
    ///
    /// * `features` — training features, one row per sample (`N×d`);
    /// * `labels` — *local* class indices into `signatures`' rows;
    /// * `signatures` — seen-class attribute signatures (`C×α`).
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree, a label is out of range, the training
    /// set is empty, or the regularised systems are numerically singular
    /// (which cannot happen for positive `gamma`/`lambda`).
    pub fn fit(
        features: &Matrix,
        labels: &[usize],
        signatures: &Matrix,
        config: &EszslConfig,
    ) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "one label per feature row required"
        );
        assert!(features.rows() > 0, "cannot fit ESZSL on an empty set");
        assert!(
            labels.iter().all(|&l| l < signatures.rows()),
            "labels must index rows of the signature matrix"
        );
        let num_classes = signatures.rows();
        // Y ∈ {−1, +1}^{N×C}.
        let mut y = Matrix::filled(features.rows(), num_classes, -1.0);
        for (i, &label) in labels.iter().enumerate() {
            y.set(i, label, 1.0);
        }
        // Gram matrices.
        let xxt = features.matmul_tn(features); // d×d  (Xᵀ-free form: Σ xᵢ xᵢᵀ)
        let sst = signatures.matmul_tn(signatures); // α×α

        // Middle term X Y Sᵀ in row-major shapes: (d×N)(N×C)(C×α) = d×α.
        let xy = features.matmul_tn(&y); // d×C
        let xys = xy.matmul(signatures); // d×α

        // Left solve: (X Xᵀ + γI)⁻¹ · XYS.
        let left = ridge_solve(&xxt, &xys, config.gamma)
            .expect("gamma > 0 keeps the feature Gram matrix positive definite");
        // Right solve: left · (S Sᵀ + λI)⁻¹  ⇔  solve the symmetric system on
        // the transpose.
        let right_t = ridge_solve(&sst, &left.transpose(), config.lambda)
            .expect("lambda > 0 keeps the signature Gram matrix positive definite");
        Self {
            compatibility: right_t.transpose(),
            config: *config,
        }
    }

    /// The learned compatibility matrix `V ∈ R^{d×α}`.
    pub fn compatibility(&self) -> &Matrix {
        &self.compatibility
    }

    /// The regularisation configuration used for fitting.
    pub fn config(&self) -> &EszslConfig {
        &self.config
    }

    /// Number of learned parameters (`d × α`), the quantity entering the
    /// Fig. 4 model-size comparison on top of the feature extractor.
    pub fn num_params(&self) -> usize {
        self.compatibility.len()
    }

    /// Projects feature rows into attribute space: `X·V` (`N×α`) — the
    /// query side of the bilinear compatibility, computed through the
    /// engine's row-parallel dense path (bit-identical to the serial
    /// matmul).
    ///
    /// # Panics
    ///
    /// Panics if the feature width disagrees with the fitted model.
    pub fn project_features(&self, features: &Matrix) -> Matrix {
        assert_eq!(
            features.cols(),
            self.compatibility.rows(),
            "feature dimensionality changed between fit and predict"
        );
        engine::dense::linear_scores(features, &self.compatibility, &engine::Pool::auto())
    }

    /// The fitted model's serving artifact: a dot-metric
    /// [`DenseClassMemory`] over the class signature rows, implementing the
    /// engine's unified [`Scorer`] trait. Score a projected query
    /// ([`Eszsl::project_features`]) against it to evaluate the bilinear
    /// rule `x·V·sᵀ`. Classes are labelled by zero-padded row index, so
    /// label tie-breaks coincide with row order.
    ///
    /// # Panics
    ///
    /// Panics if the signature width disagrees with the fitted model.
    pub fn class_memory(&self, signatures: &Matrix) -> DenseClassMemory {
        assert_eq!(
            signatures.cols(),
            self.compatibility.cols(),
            "signature dimensionality changed between fit and predict"
        );
        DenseClassMemory::indexed(signatures.clone(), DenseMetric::Dot)
    }

    /// Compatibility scores of each feature row against each signature row
    /// (`N×C`): the projected queries scored through the engine's unified
    /// [`Scorer`] over a dot-metric [`DenseClassMemory`] — bit-identical to
    /// the serial `X·V·Sᵀ` (each row's products and sums run in the same
    /// order as the one-shot bilinear kernel).
    ///
    /// # Panics
    ///
    /// Panics if the feature or signature width disagrees with the fitted
    /// model.
    pub fn scores(&self, features: &Matrix, signatures: &Matrix) -> Matrix {
        self.class_memory(signatures)
            .score_batch(&self.project_features(features))
    }

    /// Predicts the class (row of `signatures`) of every feature row.
    ///
    /// # Panics
    ///
    /// See [`Eszsl::scores`].
    pub fn predict(&self, features: &Matrix, signatures: &Matrix) -> Vec<usize> {
        self.scores(features, signatures).argmax_rows()
    }

    /// Top-1 accuracy against local labels.
    ///
    /// # Panics
    ///
    /// See [`Eszsl::scores`]; also panics if `labels.len() != features.rows()`.
    pub fn accuracy(&self, features: &Matrix, labels: &[usize], signatures: &Matrix) -> f32 {
        metrics::top1_accuracy(&self.scores(features, signatures), labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds a linearly separable synthetic ZSL problem: features are noisy
    /// linear images of the class signatures.
    fn synthetic_problem(
        seed: u64,
        num_train_classes: usize,
        num_test_classes: usize,
        samples_per_class: usize,
        d: usize,
        alpha: usize,
        noise: f32,
    ) -> (Matrix, Vec<usize>, Matrix, Matrix, Vec<usize>, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mixing = Matrix::random_normal(alpha, d, 0.0, 1.0 / (alpha as f32).sqrt(), &mut rng);
        let make_signatures = |n: usize, rng: &mut StdRng| {
            Matrix::random_uniform(n, alpha, 1.0, rng).map(|v| if v > 0.3 { 1.0 } else { 0.0 })
        };
        let train_sigs = make_signatures(num_train_classes, &mut rng);
        let test_sigs = make_signatures(num_test_classes, &mut rng);
        let sample = |sigs: &Matrix, rng: &mut StdRng| {
            let mut rows = Vec::new();
            let mut labels = Vec::new();
            for c in 0..sigs.rows() {
                for _ in 0..samples_per_class {
                    let sig = Matrix::from_rows(&[sigs.row(c).to_vec()]);
                    let clean = sig.matmul(&mixing);
                    let noisy: Vec<f32> = clean
                        .row(0)
                        .iter()
                        .map(|&v| v + noise * (rng.gen::<f32>() - 0.5))
                        .collect();
                    rows.push(noisy);
                    labels.push(c);
                }
            }
            (Matrix::from_rows(&rows), labels)
        };
        let (train_x, train_y) = sample(&train_sigs, &mut rng);
        let (test_x, test_y) = sample(&test_sigs, &mut rng);
        (train_x, train_y, train_sigs, test_x, test_y, test_sigs)
    }

    #[test]
    fn perfectly_separable_training_data_is_memorised() {
        let features = Matrix::identity(4);
        let labels = vec![0usize, 1, 2, 3];
        let signatures = Matrix::identity(4);
        let model = Eszsl::fit(&features, &labels, &signatures, &EszslConfig::default());
        assert_eq!(model.predict(&features, &signatures), labels);
        assert_eq!(model.num_params(), 16);
        assert_eq!(model.config().gamma, 1.0);
        assert_eq!(model.compatibility().shape(), (4, 4));
    }

    #[test]
    fn transfers_to_unseen_classes() {
        let (train_x, train_y, train_s, test_x, test_y, test_s) =
            synthetic_problem(3, 20, 8, 10, 64, 40, 0.3);
        let model = Eszsl::fit(&train_x, &train_y, &train_s, &EszslConfig::default());
        let acc = model.accuracy(&test_x, &test_y, &test_s);
        let chance = 1.0 / 8.0;
        assert!(acc > 4.0 * chance, "ESZSL zero-shot accuracy {acc} too low");
    }

    #[test]
    fn regularisation_controls_overfitting_direction() {
        let (train_x, train_y, train_s, test_x, test_y, test_s) =
            synthetic_problem(5, 15, 6, 8, 48, 30, 0.8);
        let mild = Eszsl::fit(
            &train_x,
            &train_y,
            &train_s,
            &EszslConfig {
                gamma: 1.0,
                lambda: 1.0,
            },
        );
        let extreme = Eszsl::fit(
            &train_x,
            &train_y,
            &train_s,
            &EszslConfig {
                gamma: 1e6,
                lambda: 1e6,
            },
        );
        // Over-regularised model collapses toward zero compatibility and
        // loses accuracy relative to the mild setting.
        let acc_mild = mild.accuracy(&test_x, &test_y, &test_s);
        let acc_extreme = extreme.accuracy(&test_x, &test_y, &test_s);
        assert!(acc_mild >= acc_extreme);
        assert!(extreme.compatibility().frobenius_norm() < mild.compatibility().frobenius_norm());
    }

    #[test]
    fn scores_shape_matches_batch_and_classes() {
        let (train_x, train_y, train_s, test_x, _test_y, test_s) =
            synthetic_problem(7, 10, 5, 4, 32, 20, 0.2);
        let model = Eszsl::fit(&train_x, &train_y, &train_s, &EszslConfig::default());
        let scores = model.scores(&test_x, &test_s);
        assert_eq!(scores.shape(), (test_x.rows(), 5));
    }

    #[test]
    #[should_panic(expected = "one label per feature row")]
    fn label_count_mismatch_panics() {
        let _ = Eszsl::fit(
            &Matrix::identity(3),
            &[0, 1],
            &Matrix::identity(3),
            &EszslConfig::default(),
        );
    }

    /// The Scorer-trait artifact evaluates the bilinear rule exactly: the
    /// projected query scored against the dot-metric memory reproduces
    /// `scores` bit for bit and `predict`'s argmax.
    #[test]
    fn class_memory_scorer_agrees_with_bilinear_scores() {
        let (train_x, train_y, train_s, test_x, _test_y, test_s) =
            synthetic_problem(11, 8, 4, 5, 24, 16, 0.2);
        let model = Eszsl::fit(&train_x, &train_y, &train_s, &EszslConfig::default());
        let reference = model.scores(&test_x, &test_s);
        let projected = model.project_features(&test_x);
        let memory = model.class_memory(&test_s);
        assert_eq!(
            memory.score_batch(&projected).as_slice(),
            reference.as_slice()
        );
        let labels: Vec<&str> = memory.labels().collect();
        let nearest = memory.nearest_batch(&projected);
        for (q, &index) in model.predict(&test_x, &test_s).iter().enumerate() {
            assert_eq!(nearest[q].0, labels[index], "query {q}");
        }
    }

    #[test]
    #[should_panic(expected = "feature dimensionality changed")]
    fn predict_rejects_wrong_feature_width() {
        let model = Eszsl::fit(
            &Matrix::identity(3),
            &[0, 1, 2],
            &Matrix::identity(3),
            &EszslConfig::default(),
        );
        let _ = model.predict(&Matrix::identity(4), &Matrix::identity(3));
    }
}
