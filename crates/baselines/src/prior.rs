//! Trivial baselines: random guessing and the majority-class prior.
//!
//! Useful as floors in the experiment harnesses — any reported zero-shot
//! accuracy should comfortably exceed both.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Predicts classes uniformly at random (seeded, so runs are reproducible).
#[derive(Debug, Clone)]
pub struct RandomBaseline {
    num_classes: usize,
    seed: u64,
}

impl RandomBaseline {
    /// Creates a random predictor over `num_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0`.
    pub fn new(num_classes: usize, seed: u64) -> Self {
        assert!(num_classes > 0, "need at least one class");
        Self { num_classes, seed }
    }

    /// Expected top-1 accuracy (`1/C`).
    pub fn expected_accuracy(&self) -> f32 {
        1.0 / self.num_classes as f32
    }

    /// Draws one prediction per sample.
    pub fn predict(&self, num_samples: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..num_samples)
            .map(|_| rng.gen_range(0..self.num_classes))
            .collect()
    }

    /// Measured accuracy of the random predictions against labels.
    pub fn accuracy(&self, labels: &[usize]) -> f32 {
        if labels.is_empty() {
            return 0.0;
        }
        let predictions = self.predict(labels.len());
        let hits = predictions
            .iter()
            .zip(labels)
            .filter(|(p, l)| p == l)
            .count();
        hits as f32 / labels.len() as f32
    }
}

/// Always predicts the most frequent class of the training labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MajorityClassBaseline {
    majority: usize,
}

impl MajorityClassBaseline {
    /// Fits the baseline (finds the most frequent label).
    ///
    /// # Panics
    ///
    /// Panics if `train_labels` is empty.
    pub fn fit(train_labels: &[usize]) -> Self {
        assert!(!train_labels.is_empty(), "need at least one training label");
        let max_label = *train_labels.iter().max().expect("non-empty");
        let mut counts = vec![0usize; max_label + 1];
        for &l in train_labels {
            counts[l] += 1;
        }
        let majority = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .expect("non-empty");
        Self { majority }
    }

    /// The class this baseline always predicts.
    pub fn majority_class(&self) -> usize {
        self.majority
    }

    /// Accuracy on a labelled evaluation set.
    pub fn accuracy(&self, labels: &[usize]) -> f32 {
        if labels.is_empty() {
            return 0.0;
        }
        labels.iter().filter(|&&l| l == self.majority).count() as f32 / labels.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_baseline_accuracy_is_near_chance() {
        let baseline = RandomBaseline::new(10, 3);
        assert!((baseline.expected_accuracy() - 0.1).abs() < 1e-6);
        let labels: Vec<usize> = (0..5000).map(|i| i % 10).collect();
        let acc = baseline.accuracy(&labels);
        assert!((acc - 0.1).abs() < 0.02, "accuracy {acc}");
        assert_eq!(baseline.accuracy(&[]), 0.0);
        assert_eq!(baseline.predict(7).len(), 7);
    }

    #[test]
    fn random_baseline_is_deterministic_in_seed() {
        let a = RandomBaseline::new(5, 9).predict(20);
        let b = RandomBaseline::new(5, 9).predict(20);
        assert_eq!(a, b);
    }

    #[test]
    fn majority_baseline_picks_most_frequent() {
        let baseline = MajorityClassBaseline::fit(&[2, 2, 1, 2, 0]);
        assert_eq!(baseline.majority_class(), 2);
        assert!((baseline.accuracy(&[2, 2, 0, 1]) - 0.5).abs() < 1e-6);
        assert_eq!(baseline.accuracy(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one training label")]
    fn majority_baseline_rejects_empty_input() {
        let _ = MajorityClassBaseline::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn random_baseline_rejects_zero_classes() {
        let _ = RandomBaseline::new(0, 1);
    }
}
