//! Direct Attribute Prediction (DAP)-style baseline (Lampert et al., 2014).
//!
//! A classical two-stage zero-shot pipeline: (1) learn a linear attribute
//! predictor from image features with ridge regression, (2) classify an
//! unseen image by comparing its *predicted* attribute vector against the
//! unseen classes' attribute signatures. It serves as a sanity floor for the
//! experiments: HDC-ZSC and ESZSL should both beat it because they optimise
//! the class decision end to end.

use engine::{DenseClassMemory, DenseMetric, Pool, Scorer};
use serde::{Deserialize, Serialize};
use tensor::{ridge_solve, Matrix};

/// A fitted DAP-style model: a ridge-regression attribute predictor
/// `W ∈ R^{d×α}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirectAttributePrediction {
    weights: Matrix,
}

impl DirectAttributePrediction {
    /// Fits the attribute predictor with ridge regression:
    /// `W = (XᵀX + γI)⁻¹ Xᵀ T`, where `T` holds one attribute-target row per
    /// training sample.
    ///
    /// # Panics
    ///
    /// Panics if the row counts disagree or the training set is empty.
    pub fn fit(features: &Matrix, attribute_targets: &Matrix, gamma: f32) -> Self {
        assert_eq!(
            features.rows(),
            attribute_targets.rows(),
            "one attribute-target row per feature row required"
        );
        assert!(features.rows() > 0, "cannot fit DAP on an empty set");
        let gram = features.matmul_tn(features); // d×d
        let xt_t = features.matmul_tn(attribute_targets); // d×α
        let weights = ridge_solve(&gram, &xt_t, gamma.max(1e-6))
            .expect("positive ridge keeps the Gram matrix positive definite");
        Self { weights }
    }

    /// The learned predictor `W ∈ R^{d×α}`.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Number of learned parameters.
    pub fn num_params(&self) -> usize {
        self.weights.len()
    }

    /// Predicted attribute scores for a batch of features (`N×α`), computed
    /// through the engine's row-parallel dense path (bit-identical to the
    /// serial matmul).
    ///
    /// # Panics
    ///
    /// Panics if the feature width disagrees with the fitted model.
    pub fn predict_attributes(&self, features: &Matrix) -> Matrix {
        engine::dense::linear_scores(features, &self.weights, &Pool::auto())
    }

    /// The fitted model's serving artifact: a cosine-metric
    /// [`DenseClassMemory`] over the class signature rows, implementing the
    /// engine's unified [`Scorer`] trait (`score_batch` / `nearest` /
    /// `top_k` with the pinned tie-break and truncation contract). Classes
    /// are labelled by zero-padded row index, so label tie-breaks coincide
    /// with row order.
    ///
    /// # Panics
    ///
    /// Panics if `signatures` has zero columns.
    pub fn class_memory(&self, signatures: &Matrix) -> DenseClassMemory {
        DenseClassMemory::indexed(signatures.clone(), DenseMetric::Cosine)
    }

    /// Class scores: cosine similarity between predicted attribute vectors
    /// and the class signatures (`N×C`), scored through the engine's
    /// unified [`Scorer`] over a cosine [`DenseClassMemory`] (bit-identical
    /// to `tensor::ops::cosine_similarity_matrix`).
    ///
    /// # Panics
    ///
    /// Panics if the widths disagree.
    pub fn class_scores(&self, features: &Matrix, signatures: &Matrix) -> Matrix {
        self.class_memory(signatures)
            .score_batch(&self.predict_attributes(features))
    }

    /// Predicts the class (row of `signatures`) of every feature row.
    pub fn predict(&self, features: &Matrix, signatures: &Matrix) -> Vec<usize> {
        self.class_scores(features, signatures).argmax_rows()
    }

    /// Top-1 accuracy against local labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != features.rows()`.
    pub fn accuracy(&self, features: &Matrix, labels: &[usize], signatures: &Matrix) -> f32 {
        metrics::top1_accuracy(&self.class_scores(features, signatures), labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_problem(seed: u64) -> (Matrix, Matrix, Matrix, Vec<usize>, Matrix) {
        // Features are noisy copies of binary attribute vectors themselves, so
        // the linear predictor must essentially learn the identity.
        let mut rng = StdRng::seed_from_u64(seed);
        let alpha = 12;
        let train_classes = 6;
        let test_classes = 4;
        let per_class = 8;
        let sig = |n: usize, rng: &mut StdRng| {
            Matrix::random_uniform(n, alpha, 1.0, rng).map(|v| if v > 0.0 { 1.0 } else { 0.0 })
        };
        let train_sigs = sig(train_classes, &mut rng);
        let test_sigs = sig(test_classes, &mut rng);
        let mut train_x = Vec::new();
        let mut train_t = Vec::new();
        for c in 0..train_classes {
            for _ in 0..per_class {
                let row: Vec<f32> = train_sigs
                    .row(c)
                    .iter()
                    .map(|&v| v + 0.2 * (rng.gen::<f32>() - 0.5))
                    .collect();
                train_x.push(row);
                train_t.push(train_sigs.row(c).to_vec());
            }
        }
        let mut test_x = Vec::new();
        let mut test_y = Vec::new();
        for c in 0..test_classes {
            for _ in 0..per_class {
                let row: Vec<f32> = test_sigs
                    .row(c)
                    .iter()
                    .map(|&v| v + 0.2 * (rng.gen::<f32>() - 0.5))
                    .collect();
                test_x.push(row);
                test_y.push(c);
            }
        }
        (
            Matrix::from_rows(&train_x),
            Matrix::from_rows(&train_t),
            Matrix::from_rows(&test_x),
            test_y,
            test_sigs,
        )
    }

    #[test]
    fn attribute_prediction_recovers_targets() {
        let (train_x, train_t, _, _, _) = toy_problem(1);
        let dap = DirectAttributePrediction::fit(&train_x, &train_t, 0.1);
        let predicted = dap.predict_attributes(&train_x);
        // Thresholded predictions should match the binary targets closely.
        let mut agree = 0usize;
        for r in 0..train_t.rows() {
            for c in 0..train_t.cols() {
                let p = if predicted.get(r, c) > 0.5 { 1.0 } else { 0.0 };
                if p == train_t.get(r, c) {
                    agree += 1;
                }
            }
        }
        let frac = agree as f32 / train_t.len() as f32;
        assert!(frac > 0.9, "attribute agreement {frac}");
        assert_eq!(dap.num_params(), 12 * 12);
        assert_eq!(dap.weights().shape(), (12, 12));
    }

    #[test]
    fn zero_shot_classification_beats_chance() {
        let (train_x, train_t, test_x, test_y, test_sigs) = toy_problem(2);
        let dap = DirectAttributePrediction::fit(&train_x, &train_t, 0.1);
        let acc = dap.accuracy(&test_x, &test_y, &test_sigs);
        assert!(acc > 0.5, "DAP accuracy {acc}");
        assert_eq!(dap.predict(&test_x, &test_sigs).len(), test_y.len());
    }

    #[test]
    #[should_panic(expected = "cannot fit DAP on an empty set")]
    fn empty_training_set_panics() {
        let _ = DirectAttributePrediction::fit(&Matrix::zeros(0, 4), &Matrix::zeros(0, 4), 1.0);
    }

    /// The Scorer-trait artifact agrees with the argmax predictor: the
    /// nearest class of each projected query is exactly `predict`'s pick.
    #[test]
    fn class_memory_scorer_agrees_with_predict() {
        let (train_x, train_t, test_x, _, test_sigs) = toy_problem(3);
        let dap = DirectAttributePrediction::fit(&train_x, &train_t, 0.1);
        let memory = dap.class_memory(&test_sigs);
        assert_eq!(memory.num_classes(), test_sigs.rows());
        let predicted = dap.predict(&test_x, &test_sigs);
        let attributes = dap.predict_attributes(&test_x);
        let nearest = memory.nearest_batch(&attributes);
        for (q, &index) in predicted.iter().enumerate() {
            let expected: Vec<&str> = memory.labels().collect();
            assert_eq!(nearest[q].0, expected[index], "query {q}");
        }
    }
}
