//! Literature reference points.
//!
//! Fig. 4 of the paper places HDC-ZSC on an accuracy-vs-parameter-count plane
//! together with published generative and non-generative zero-shot models;
//! Table I compares per-group attribute-extraction metrics against Finetag
//! and A3M. The paper *cites* these numbers rather than re-running the
//! models, and this module records the same published values (as read from
//! the paper's figure/table) so the reproduction harnesses can regenerate the
//! comparisons. Every entry is marked as a literature value — only ESZSL,
//! DAP and our own models are actually executed in this repository.

use serde::{Deserialize, Serialize};

/// Category of a reference method, controlling how it is grouped in Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MethodCategory {
    /// Non-generative compatibility methods (ESZSL, TCN, …).
    NonGenerative,
    /// Generative (GAN/VAE-based) methods.
    Generative,
    /// Models implemented and measured in this repository.
    Ours,
}

impl std::fmt::Display for MethodCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MethodCategory::NonGenerative => f.write_str("non-generative"),
            MethodCategory::Generative => f.write_str("generative"),
            MethodCategory::Ours => f.write_str("ours"),
        }
    }
}

/// One point of the Fig. 4 accuracy-vs-parameters plane.
// Serialize only: the `&'static str` name cannot be deserialized.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReferencePoint {
    /// Method name as used in the paper.
    pub name: &'static str,
    /// Method category.
    pub category: MethodCategory,
    /// Published CUB-200 zero-shot top-1 accuracy, in percent.
    pub top1_percent: f32,
    /// Published (or derived) model size, in millions of parameters.
    pub params_millions: f32,
    /// `true` for values taken from the literature/figure, `false` for values
    /// measured by this repository.
    pub literature: bool,
}

impl ReferencePoint {
    /// `true` if no other point in `points` has both higher accuracy and
    /// fewer parameters — i.e. this point lies on the Pareto front of Fig. 4.
    pub fn is_pareto_optimal(&self, points: &[ReferencePoint]) -> bool {
        !points.iter().any(|other| {
            other.name != self.name
                && other.top1_percent > self.top1_percent
                && other.params_millions < self.params_millions
        })
    }
}

/// The published reference points of Fig. 4 (CUB-200 zero-shot split),
/// including the paper's own HDC-ZSC and Trainable-MLP results.
///
/// Accuracy/parameter values are read from Fig. 4 and the surrounding text
/// (the paper reports the deltas: +9.9% / 1.72× vs ESZSL, +4.3% / 1.85× vs
/// TCN, and 1.75×–2.58× more parameters for the generative models at up to
/// +3.9% accuracy).
pub fn zsc_references() -> Vec<ReferencePoint> {
    vec![
        ReferencePoint {
            name: "ESZSL",
            category: MethodCategory::NonGenerative,
            top1_percent: 53.9,
            params_millions: 45.8,
            literature: true,
        },
        ReferencePoint {
            name: "TCN",
            category: MethodCategory::NonGenerative,
            top1_percent: 59.5,
            params_millions: 49.2,
            literature: true,
        },
        ReferencePoint {
            name: "f-CLSWGAN",
            category: MethodCategory::Generative,
            top1_percent: 57.3,
            params_millions: 46.6,
            literature: true,
        },
        ReferencePoint {
            name: "cycle-CLSWGAN",
            category: MethodCategory::Generative,
            top1_percent: 58.4,
            params_millions: 50.3,
            literature: true,
        },
        ReferencePoint {
            name: "LisGAN",
            category: MethodCategory::Generative,
            top1_percent: 58.8,
            params_millions: 53.0,
            literature: true,
        },
        ReferencePoint {
            name: "f-VAEGAN-D2",
            category: MethodCategory::Generative,
            top1_percent: 61.0,
            params_millions: 56.5,
            literature: true,
        },
        ReferencePoint {
            name: "TF-VAEGAN",
            category: MethodCategory::Generative,
            top1_percent: 64.9,
            params_millions: 60.1,
            literature: true,
        },
        ReferencePoint {
            name: "Composer",
            category: MethodCategory::Generative,
            top1_percent: 67.7,
            params_millions: 68.6,
            literature: true,
        },
        ReferencePoint {
            name: "HDC-ZSC (paper)",
            category: MethodCategory::Ours,
            top1_percent: 63.8,
            params_millions: 26.6,
            literature: true,
        },
        ReferencePoint {
            name: "Trainable-MLP (paper)",
            category: MethodCategory::Ours,
            top1_percent: 65.0,
            params_millions: 28.9,
            literature: true,
        },
    ]
}

/// One row of Table I: published per-group attribute-extraction numbers.
// Serialize only: the `&'static str` group name cannot be deserialized.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AttributeGroupReference {
    /// Attribute-group name matching `dataset::AttributeSchema::cub200`.
    pub group: &'static str,
    /// Finetag WMAP, in percent.
    pub finetag_wmap: f32,
    /// A3M top-1 accuracy, in percent.
    pub a3m_top1: f32,
    /// The paper's HDC-ZSC WMAP ("Ours" column), in percent.
    pub paper_wmap: f32,
    /// The paper's HDC-ZSC top-1 accuracy ("Ours" column), in percent.
    pub paper_top1: f32,
}

/// The published per-group numbers of Table I (Finetag, A3M, and the paper's
/// own results), keyed by the group names used by the schema in the `dataset`
/// crate.
pub fn attribute_extraction_references() -> Vec<AttributeGroupReference> {
    // (group, finetag WMAP, ours WMAP, a3m top1, ours top1) from Table I.
    let rows: [(&str, f32, f32, f32, f32); 28] = [
        ("bill shape", 54.0, 58.0, 60.0, 90.0),
        ("wing color", 57.0, 60.0, 45.0, 90.0),
        ("upperparts color", 55.0, 57.0, 43.0, 90.0),
        ("underparts color", 59.0, 62.0, 58.0, 93.0),
        ("breast pattern", 15.0, 61.0, 58.0, 81.0),
        ("back color", 50.0, 53.0, 45.0, 91.0),
        ("tail shape", 25.0, 25.0, 34.0, 84.0),
        ("upper tail color", 40.0, 42.0, 43.0, 93.0),
        ("head pattern", 30.0, 33.0, 35.0, 89.0),
        ("breast color", 58.0, 61.0, 57.0, 92.0),
        ("throat color", 57.0, 61.0, 60.0, 93.0),
        ("eye color", 76.0, 76.0, 81.0, 98.0),
        ("bill length", 73.0, 76.0, 72.0, 80.0),
        ("forehead color", 56.0, 59.0, 51.0, 92.0),
        ("under tail color", 42.0, 44.0, 38.0, 90.0),
        ("nape color", 55.0, 58.0, 49.0, 92.0),
        ("belly color", 58.0, 61.0, 59.0, 93.0),
        ("wing shape", 24.0, 25.0, 32.0, 80.0),
        ("size", 55.0, 56.0, 58.0, 81.0),
        ("shape", 47.0, 49.0, 57.0, 94.0),
        ("back pattern", 44.0, 45.0, 46.0, 77.0),
        ("tail pattern", 41.0, 43.0, 43.0, 77.0),
        ("belly pattern", 60.0, 62.0, 62.0, 81.0),
        ("primary color", 62.0, 66.0, 51.0, 90.0),
        ("leg color", 32.0, 37.0, 46.0, 92.0),
        ("bill color", 42.0, 47.0, 47.0, 91.0),
        ("crown color", 56.0, 60.0, 53.0, 93.0),
        ("wing pattern", 48.0, 50.0, 48.0, 72.0),
    ];
    rows.iter()
        .map(
            |&(group, finetag_wmap, paper_wmap, a3m_top1, paper_top1)| AttributeGroupReference {
                group,
                finetag_wmap,
                a3m_top1,
                paper_wmap,
                paper_top1,
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_models_lie_on_the_pareto_front() {
        let points = zsc_references();
        let hdc = points
            .iter()
            .find(|p| p.name == "HDC-ZSC (paper)")
            .expect("present");
        let mlp = points
            .iter()
            .find(|p| p.name == "Trainable-MLP (paper)")
            .expect("present");
        assert!(hdc.is_pareto_optimal(&points));
        assert!(mlp.is_pareto_optimal(&points));
        // ESZSL is dominated (HDC-ZSC is both more accurate and smaller).
        let eszsl = points.iter().find(|p| p.name == "ESZSL").expect("present");
        assert!(!eszsl.is_pareto_optimal(&points));
    }

    #[test]
    fn headline_deltas_match_the_abstract() {
        let points = zsc_references();
        let hdc = points
            .iter()
            .find(|p| p.name == "HDC-ZSC (paper)")
            .expect("present");
        let eszsl = points.iter().find(|p| p.name == "ESZSL").expect("present");
        let tcn = points.iter().find(|p| p.name == "TCN").expect("present");
        // +9.9% and 1.72× fewer parameters vs ESZSL.
        assert!((hdc.top1_percent - eszsl.top1_percent - 9.9).abs() < 0.2);
        assert!((eszsl.params_millions / hdc.params_millions - 1.72).abs() < 0.05);
        // +4.3% and 1.85× fewer parameters vs TCN.
        assert!((hdc.top1_percent - tcn.top1_percent - 4.3).abs() < 0.2);
        assert!((tcn.params_millions / hdc.params_millions - 1.85).abs() < 0.05);
        // Generative models: 1.75×–2.58× more parameters, at most +3.9% accuracy.
        for p in points
            .iter()
            .filter(|p| p.category == MethodCategory::Generative)
        {
            let ratio = p.params_millions / hdc.params_millions;
            assert!(ratio > 1.70 && ratio < 2.60, "{}: ratio {ratio}", p.name);
            assert!(p.top1_percent <= hdc.top1_percent + 3.9 + 0.1);
        }
    }

    #[test]
    fn table1_references_cover_all_28_groups_and_match_paper_averages() {
        let rows = attribute_extraction_references();
        assert_eq!(rows.len(), 28);
        let mean = |f: &dyn Fn(&AttributeGroupReference) -> f32| {
            rows.iter().map(f).sum::<f32>() / rows.len() as f32
        };
        // Paper-reported averages: Finetag 48.96, Ours(WMAP) 53.11,
        // A3M 51.11, Ours(top-1) 87.82.
        assert!((mean(&|r| r.finetag_wmap) - 48.96).abs() < 0.15);
        assert!((mean(&|r| r.paper_wmap) - 53.11).abs() < 0.15);
        assert!((mean(&|r| r.a3m_top1) - 51.11).abs() < 0.15);
        assert!((mean(&|r| r.paper_top1) - 87.82).abs() < 0.15);
    }

    #[test]
    fn table1_group_names_match_the_dataset_schema() {
        let schema = dataset::AttributeSchema::cub200();
        let schema_names: Vec<String> = schema.groups().iter().map(|g| g.name.clone()).collect();
        for row in attribute_extraction_references() {
            assert!(
                schema_names.iter().any(|n| n == row.group),
                "reference group '{}' missing from the schema",
                row.group
            );
        }
    }

    #[test]
    fn category_display() {
        assert_eq!(MethodCategory::Generative.to_string(), "generative");
        assert_eq!(MethodCategory::NonGenerative.to_string(), "non-generative");
        assert_eq!(MethodCategory::Ours.to_string(), "ours");
    }
}
