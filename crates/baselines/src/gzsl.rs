//! Generalized zero-shot (GZSL) evaluation of the baselines.
//!
//! Under the generalized protocol every comparator scores mixed
//! seen/unseen queries against the *union* class signature set, and is
//! summarized by the harmonic mean of its per-group accuracies
//! ([`metrics::harmonic_mean`]). This module adapts the two baseline
//! shapes to that protocol: score-matrix methods (ESZSL, DAP) go through
//! [`GzslOutcome::from_scores`], prediction-only floors (the priors) go
//! through [`GzslOutcome::from_predictions`] — so the scenario harness can
//! rank HDC-ZSC and every baseline on the same H metric.

use metrics::{partitioned_top1_accuracy, PartitionedAccuracy};
use tensor::Matrix;

/// One comparator's GZSL result: per-group top-1 accuracy plus the
/// harmonic-mean summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GzslOutcome {
    /// Top-1 accuracy over queries whose target class is seen, 0 when the
    /// batch had none.
    pub seen: f32,
    /// Top-1 accuracy over queries whose target class is unseen, 0 when
    /// the batch had none.
    pub unseen: f32,
    /// Harmonic mean of the two — 0 whenever either group collapses.
    pub harmonic: f32,
}

impl GzslOutcome {
    /// Evaluates a score-matrix comparator: `scores` is `B×C` over the
    /// union class set, `targets` one class index per row, `unseen[c]`
    /// marks class `c` unseen.
    ///
    /// # Panics
    ///
    /// See [`metrics::partitioned_top1_accuracy`].
    pub fn from_scores(scores: &Matrix, targets: &[usize], unseen: &[bool]) -> Self {
        Self::from_partition(partitioned_top1_accuracy(scores, targets, unseen))
    }

    /// Evaluates a comparator that only emits class indices (the prior
    /// floors): one prediction per target, grouped by the target's
    /// seen/unseen flag.
    ///
    /// # Panics
    ///
    /// Panics if `predictions.len() != targets.len()` or any target is
    /// `>= unseen.len()`.
    pub fn from_predictions(predictions: &[usize], targets: &[usize], unseen: &[bool]) -> Self {
        assert_eq!(
            predictions.len(),
            targets.len(),
            "one prediction per target required ({} vs {})",
            predictions.len(),
            targets.len()
        );
        let (mut hits, mut totals) = ([0usize; 2], [0usize; 2]);
        for (&pred, &target) in predictions.iter().zip(targets) {
            assert!(target < unseen.len(), "target {target} out of range");
            let group = usize::from(unseen[target]);
            totals[group] += 1;
            if pred == target {
                hits[group] += 1;
            }
        }
        let accuracy =
            |group: usize| (totals[group] > 0).then(|| hits[group] as f32 / totals[group] as f32);
        Self::from_partition(PartitionedAccuracy {
            seen: accuracy(0),
            unseen: accuracy(1),
        })
    }

    fn from_partition(partition: PartitionedAccuracy) -> Self {
        Self {
            seen: partition.seen.unwrap_or(0.0),
            unseen: partition.unseen.unwrap_or(0.0),
            harmonic: partition.harmonic(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_matrix_outcome_matches_hand_computation() {
        // 4 union classes, classes 2/3 unseen. Rows: seen hit, seen miss,
        // unseen hit, unseen miss.
        let scores = Matrix::from_rows(&[
            vec![0.9, 0.0, 0.0, 0.0],
            vec![0.9, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.8, 0.0],
            vec![0.0, 0.8, 0.0, 0.1],
        ]);
        let outcome = GzslOutcome::from_scores(&scores, &[0, 1, 2, 3], &[false, false, true, true]);
        assert_eq!(outcome.seen, 0.5);
        assert_eq!(outcome.unseen, 0.5);
        assert!((outcome.harmonic - 0.5).abs() < 1e-6);
    }

    #[test]
    fn prediction_outcome_agrees_with_score_argmax() {
        let scores = Matrix::from_rows(&[
            vec![0.9, 0.1, 0.0],
            vec![0.1, 0.9, 0.0],
            vec![0.0, 0.9, 0.1],
        ]);
        let targets = [0, 1, 2];
        let unseen = [false, false, true];
        let via_scores = GzslOutcome::from_scores(&scores, &targets, &unseen);
        let via_predictions =
            GzslOutcome::from_predictions(&scores.argmax_rows(), &targets, &unseen);
        assert_eq!(via_scores, via_predictions);
        assert_eq!(via_predictions.unseen, 0.0);
        assert_eq!(via_predictions.harmonic, 0.0, "collapsed group zeroes H");
    }

    #[test]
    fn empty_group_reports_zero_not_plain_accuracy() {
        let outcome = GzslOutcome::from_predictions(&[0, 1], &[0, 1], &[false, false]);
        assert_eq!(outcome.seen, 1.0);
        assert_eq!(outcome.unseen, 0.0);
        assert_eq!(outcome.harmonic, 0.0);
    }

    #[test]
    #[should_panic(expected = "one prediction per target")]
    fn prediction_length_mismatch_panics() {
        let _ = GzslOutcome::from_predictions(&[0], &[0, 1], &[false, true]);
    }
}
