//! Baselines and reference points for the HDC-ZSC reproduction.
//!
//! Three kinds of comparators back the paper's evaluation:
//!
//! * **ESZSL** (Romera-Paredes & Torr, ICML 2015) — the non-generative
//!   bilinear-compatibility method the paper's headline +9.9% accuracy /
//!   1.72× parameter-efficiency claim is measured against. Re-implemented
//!   from scratch in [`eszsl`] (closed-form ridge solution) and evaluated on
//!   the same synthetic features as HDC-ZSC.
//! * **DAP-style direct attribute prediction** ([`dap`]) — a classical
//!   attribute-classifier baseline useful as a sanity floor.
//! * **Literature reference points** ([`reference`](mod@reference)) — the published
//!   (accuracy, parameter count) pairs of the generative and non-generative
//!   models plotted in Fig. 4, and the published per-group Finetag / A3M
//!   numbers of Table I. The paper itself compares against these published
//!   numbers rather than re-running the models; we do the same and mark them
//!   as literature values.
//!
//! All score-producing comparators can additionally be ranked under the
//! generalized zero-shot protocol via [`gzsl::GzslOutcome`], which reports
//! per-group accuracy over the seen/unseen partition and the harmonic-mean
//! H summary (see `docs/evaluation.md`).
//!
//! # Example
//!
//! ```
//! use baselines::eszsl::{Eszsl, EszslConfig};
//! use tensor::Matrix;
//!
//! // Two seen classes with opposite attribute signatures.
//! let features = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
//! let labels = vec![0usize, 1];
//! let signatures = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
//! let model = Eszsl::fit(&features, &labels, &signatures, &EszslConfig::default());
//! assert_eq!(model.predict(&features, &signatures), vec![0, 1]);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod dap;
pub mod eszsl;
pub mod gzsl;
pub mod prior;
pub mod reference;

pub use dap::DirectAttributePrediction;
pub use eszsl::{Eszsl, EszslConfig};
pub use gzsl::GzslOutcome;
pub use prior::{MajorityClassBaseline, RandomBaseline};
pub use reference::{
    attribute_extraction_references, zsc_references, MethodCategory, ReferencePoint,
};
