//! Property tests pinning the routed class memory's exactness contract:
//! with full probing, for cluster counts {1, 2, 7}, ragged
//! (non-multiple-of-64) dimensions, `k ≥ num_classes`, and after arbitrary
//! add/update/remove interleavings, the routed top-k labels and similarity
//! bits are identical to a monolithic [`PackedClassMemory`] holding the
//! same class set — the mirror of `sharded_parity.rs` for the
//! coarse-to-fine index. A deterministic workload-generator test pins the
//! other half of the bargain: on clustered data, partial probing
//! shortlists a sub-linear candidate fraction while keeping recall high.

use dataset::workload::{SyntheticWorkload, WorkloadConfig};
use engine::{pack_signs, PackedClassMemory, PackedQueryBatch, RoutedClassMemory, RoutedConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CLUSTER_COUNTS: [usize; 3] = [1, 2, 7];

/// Routed memories under test probe exhaustively (`nprobe = 0`) — the mode
/// whose results are contractually bit-identical to the monolith. The
/// re-cluster threshold stays at its default so mutation sequences exercise
/// deterministic re-clustering mid-stream.
fn config_for(clusters: usize, seed: u64) -> RoutedConfig {
    RoutedConfig {
        clusters,
        nprobe: 0,
        seed,
        ..RoutedConfig::default()
    }
}

fn random_signs(dim: usize, rng: &mut StdRng) -> Vec<i8> {
    (0..dim)
        .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
        .collect()
}

fn monolithic_topk(memory: &PackedClassMemory, query: &[u64], k: usize) -> Vec<(String, u32)> {
    memory
        .top_k(query, k)
        .into_iter()
        .map(|(index, sim)| (memory.label(index).to_string(), sim.to_bits()))
        .collect()
}

fn routed_topk(memory: &RoutedClassMemory, query: &[u64], k: usize) -> Vec<(String, u32)> {
    memory
        .top_k(query, k)
        .into_iter()
        .map(|(label, sim)| (label.to_string(), sim.to_bits()))
        .collect()
}

/// Asserts nearest + top-k parity between a monolithic memory and its
/// routed counterparts for a set of random queries, including
/// `k ≥ num_classes` and `k = 0`.
fn assert_parity(
    mono: &PackedClassMemory,
    routed: &[RoutedClassMemory],
    dim: usize,
    rng: &mut StdRng,
) {
    let classes = mono.len();
    let ks = [
        0usize,
        1,
        classes / 2,
        classes,
        classes + 7,
        classes * 2 + 1,
    ];
    for _ in 0..3 {
        let query = pack_signs(&random_signs(dim, rng));
        let mono_nearest = mono
            .nearest(&query)
            .map(|(index, sim)| (mono.label(index).to_string(), sim.to_bits()));
        for memory in routed {
            let clusters = memory.num_clusters();
            assert_eq!(memory.len(), classes, "clusters={clusters}");
            assert!(memory.probes_exhaustively());
            let near = memory
                .nearest(&query)
                .map(|(label, sim)| (label.to_string(), sim.to_bits()));
            assert_eq!(near, mono_nearest, "dim={dim} clusters={clusters}");
            for &k in &ks {
                assert_eq!(
                    routed_topk(memory, &query, k),
                    monolithic_topk(mono, &query, k),
                    "dim={dim} clusters={clusters} k={k}"
                );
            }
        }
    }
}

proptest! {
    /// Freshly clustered memories: identical top-k labels/scores across
    /// cluster counts, ragged dims, and k at/above the class count.
    #[test]
    fn routed_topk_bit_identical_to_monolithic(
        dim in 1usize..300,
        classes in 1usize..30,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mono = PackedClassMemory::new(dim);
        for c in 0..classes {
            let row = random_signs(dim, &mut rng);
            mono.insert_signs(format!("class{c:04}"), &row);
        }
        let routed: Vec<RoutedClassMemory> = CLUSTER_COUNTS
            .iter()
            .map(|&k| RoutedClassMemory::from_packed(&mono, config_for(k, seed)))
            .collect();
        assert_parity(&mono, &routed, dim, &mut rng);
    }

    /// Parity survives arbitrary interleavings of add / update / remove —
    /// including the deterministic re-clusterings those mutations trigger:
    /// after every mutation the routed memories hold exactly the monolith's
    /// class set and keep returning identical top-k labels and bits.
    #[test]
    fn parity_after_add_update_remove_sequences(
        dim in 1usize..200,
        initial in 1usize..12,
        ops in 4usize..24,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mono = PackedClassMemory::new(dim);
        let mut routed: Vec<RoutedClassMemory> = CLUSTER_COUNTS
            .iter()
            .map(|&k| RoutedClassMemory::new(dim, config_for(k, seed)))
            .collect();
        let mut live: Vec<String> = Vec::new();
        let mut next_label = 0usize;
        let add = |mono: &mut PackedClassMemory,
                       routed: &mut Vec<RoutedClassMemory>,
                       live: &mut Vec<String>,
                       next_label: &mut usize,
                       rng: &mut StdRng| {
            let label = format!("class{:04}", *next_label);
            *next_label += 1;
            let row = random_signs(dim, rng);
            mono.insert_signs(label.clone(), &row);
            for memory in routed.iter_mut() {
                memory.add_class(label.clone(), &row);
            }
            live.push(label);
        };
        for _ in 0..initial {
            add(&mut mono, &mut routed, &mut live, &mut next_label, &mut rng);
        }
        for _ in 0..ops {
            match rng.gen::<u32>() % 3 {
                0 => add(&mut mono, &mut routed, &mut live, &mut next_label, &mut rng),
                1 if !live.is_empty() => {
                    // Update an existing class in place everywhere.
                    let target = live[rng.gen::<usize>() % live.len()].clone();
                    let row = random_signs(dim, &mut rng);
                    mono.insert_signs(target.clone(), &row);
                    for memory in routed.iter_mut() {
                        prop_assert!(memory.update_class(&target, &row));
                    }
                }
                _ if live.len() > 1 => {
                    // Remove a class everywhere (keep at least one live so
                    // nearest always has a winner).
                    let target = live.remove(rng.gen::<usize>() % live.len());
                    prop_assert!(mono.remove(&target).is_some());
                    for memory in routed.iter_mut() {
                        prop_assert!(memory.remove_class(&target));
                        prop_assert!(!memory.contains(&target));
                    }
                }
                _ => {}
            }
            assert_parity(&mono, &routed, dim, &mut rng);
        }
    }

    /// Batch lookups agree with single-query lookups (and therefore with
    /// the monolith) for every cluster count and thread count.
    #[test]
    fn batch_lookups_match_single_query_lookups(
        dim in 1usize..250,
        classes in 1usize..16,
        queries in 1usize..10,
        k in 1usize..20,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<i8>> = (0..classes).map(|_| random_signs(dim, &mut rng)).collect();
        let query_rows: Vec<Vec<i8>> =
            (0..queries).map(|_| random_signs(dim, &mut rng)).collect();
        let mut batch = PackedQueryBatch::new(dim);
        for q in &query_rows {
            batch.push_signs(q);
        }
        for &clusters in &CLUSTER_COUNTS {
            for threads in [1usize, 3] {
                let mut memory =
                    RoutedClassMemory::new(dim, config_for(clusters, seed)).with_threads(threads);
                for (c, row) in rows.iter().enumerate() {
                    memory.add_class(format!("class{c:04}"), row);
                }
                let nearest = memory.nearest_batch(&batch);
                let topk = memory.topk_batch(&batch, k);
                prop_assert_eq!(nearest.len(), queries);
                prop_assert_eq!(topk.len(), queries);
                for (q, signs) in query_rows.iter().enumerate() {
                    let packed = pack_signs(signs);
                    prop_assert_eq!(
                        &nearest[q],
                        &memory.nearest(&packed).expect("non-empty"),
                        "clusters={} threads={} q={}", clusters, threads, q
                    );
                    prop_assert_eq!(
                        &topk[q],
                        &memory.top_k(&packed, k),
                        "clusters={} threads={} q={}", clusters, threads, q
                    );
                }
            }
        }
    }
}

/// On a clustered synthetic workload (the `dataset::workload` generator
/// `serve_sim --classes` shares), partial probing at `nprobe = ⌈√k⌉`
/// shortlists well under half the classes while recall@1 against the
/// exhaustive scorer stays high — the sub-linearity bargain, pinned
/// deterministically.
#[test]
fn partial_probing_is_sublinear_with_high_recall_on_clustered_data() {
    let config = WorkloadConfig {
        dim: 512,
        classes: 600,
        clusters: 24,
        class_noise: 0.05,
        query_noise: 0.02,
        queries: 48,
        distractors: 0,
        seed: 71,
    };
    let workload = SyntheticWorkload::generate(&config);
    let mono = workload.packed_memory();
    let mut routed = RoutedClassMemory::from_packed(
        &mono,
        RoutedConfig {
            clusters: 24,
            seed: 7,
            ..RoutedConfig::default()
        },
    );
    routed.set_nprobe((routed.num_clusters() as f64).sqrt().ceil() as usize);
    assert!(!routed.probes_exhaustively());

    let mut candidate_total = 0usize;
    let mut hits = 0usize;
    for signs in &workload.queries {
        let query = pack_signs(signs);
        candidate_total += routed.candidate_classes(&query);
        let (routed_label, _) = routed.nearest(&query).expect("non-empty");
        let (mono_index, _) = mono.nearest(&query).expect("non-empty");
        if routed_label == mono.label(mono_index) {
            hits += 1;
        }
    }
    let candidate_fraction =
        candidate_total as f64 / (workload.queries.len() * config.classes) as f64;
    let recall = hits as f64 / workload.queries.len() as f64;
    assert!(
        candidate_fraction < 0.5,
        "candidate fraction {candidate_fraction:.3} is not sub-linear"
    );
    assert!(
        recall >= 0.9,
        "recall@1 {recall:.3} too low at candidate fraction {candidate_fraction:.3}"
    );
}
