//! Property tests pinning the engine's exactness contract: packed batched
//! results are bit-identical to a scalar `i8` reference across random
//! dimensions (including non-multiples of 64), class counts, batch sizes and
//! thread counts.

use engine::{
    pack_signs, similarity_from_hamming, BatchScorer, PackedClassMemory, PackedQueryBatch, Pool,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random ±1 sign vector.
fn random_signs(dim: usize, rng: &mut StdRng) -> Vec<i8> {
    (0..dim)
        .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
        .collect()
}

/// The scalar reference: bipolar cosine as `dot as f32 / dim as f32`, the
/// exact expression `hdc::BipolarHypervector::cosine` evaluates.
fn scalar_cosine(a: &[i8], b: &[i8]) -> f32 {
    let dot: i64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| i64::from(x) * i64::from(y))
        .sum();
    dot as f32 / a.len() as f32
}

/// Scalar reference nearest: max similarity, ties to the smallest label.
fn scalar_nearest(query: &[i8], labels: &[String], protos: &[Vec<i8>]) -> Option<(usize, f32)> {
    let mut best: Option<(usize, f32)> = None;
    for (i, p) in protos.iter().enumerate() {
        let sim = scalar_cosine(query, p);
        let better = match best {
            None => true,
            Some((bi, bs)) => sim > bs || (sim == bs && labels[i] < labels[bi]),
        };
        if better {
            best = Some((i, sim));
        }
    }
    best
}

/// Scalar reference top-k: sorted by similarity descending, label ascending.
fn scalar_top_k(
    query: &[i8],
    labels: &[String],
    protos: &[Vec<i8>],
    k: usize,
) -> Vec<(usize, f32)> {
    let mut scored: Vec<(usize, f32)> = protos
        .iter()
        .enumerate()
        .map(|(i, p)| (i, scalar_cosine(query, p)))
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("similarities are finite")
            .then_with(|| labels[a.0].cmp(&labels[b.0]))
    });
    scored.truncate(k);
    scored
}

/// A generated problem: `(labels, prototypes, query rows, packed memory,
/// packed batch)`.
type Problem = (
    Vec<String>,
    Vec<Vec<i8>>,
    Vec<Vec<i8>>,
    PackedClassMemory,
    PackedQueryBatch,
);

/// Builds a random problem: dims deliberately include values far from
/// multiples of 64 so the tail-word masking is always exercised.
fn build_problem(dim: usize, classes: usize, queries: usize, seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels: Vec<String> = (0..classes).map(|c| format!("class{c:04}")).collect();
    let protos: Vec<Vec<i8>> = (0..classes).map(|_| random_signs(dim, &mut rng)).collect();
    // A mix of noisy prototype copies (realistic queries with near-tie
    // scores) and fresh random vectors.
    let query_rows: Vec<Vec<i8>> = (0..queries)
        .map(|q| {
            if q % 2 == 0 && !protos.is_empty() {
                let mut noisy = protos[q % protos.len()].clone();
                for v in noisy.iter_mut() {
                    if rng.gen::<f32>() < 0.2 {
                        *v = -*v;
                    }
                }
                noisy
            } else {
                random_signs(dim, &mut rng)
            }
        })
        .collect();
    let mut memory = PackedClassMemory::new(dim);
    for (label, proto) in labels.iter().zip(&protos) {
        memory.insert_signs(label.clone(), proto);
    }
    let mut batch = PackedQueryBatch::new(dim);
    for q in &query_rows {
        batch.push_signs(q);
    }
    (labels, protos, query_rows, memory, batch)
}

proptest! {
    #[test]
    fn packed_scores_bit_identical_to_scalar(
        dim in 1usize..300,
        classes in 1usize..24,
        queries in 1usize..12,
        seed in 0u64..1_000_000,
    ) {
        let (_labels, protos, query_rows, memory, batch) =
            build_problem(dim, classes, queries, seed);
        let logits = BatchScorer::new(&memory).with_threads(3).score_batch(&batch);
        prop_assert_eq!(logits.shape(), (queries, classes));
        for (qi, query) in query_rows.iter().enumerate() {
            for (ci, proto) in protos.iter().enumerate() {
                let scalar = scalar_cosine(query, proto);
                let packed = logits.get(qi, ci);
                prop_assert_eq!(
                    scalar.to_bits(), packed.to_bits(),
                    "dim={} q={} c={}: scalar {} vs packed {}",
                    dim, qi, ci, scalar, packed
                );
            }
        }
    }

    #[test]
    fn nearest_and_topk_bit_identical_to_scalar(
        dim in 1usize..300,
        classes in 1usize..24,
        queries in 1usize..10,
        k in 1usize..30,
        seed in 0u64..1_000_000,
    ) {
        let (labels, protos, query_rows, memory, batch) =
            build_problem(dim, classes, queries, seed);
        let scorer = BatchScorer::new(&memory).with_threads(2);
        let nearest = scorer.nearest_batch(&batch);
        let topk = scorer.topk_batch(&batch, k);
        for (qi, query) in query_rows.iter().enumerate() {
            let expected = scalar_nearest(query, &labels, &protos).expect("non-empty");
            prop_assert_eq!(nearest[qi].0, expected.0, "dim={} q={}", dim, qi);
            prop_assert_eq!(nearest[qi].1.to_bits(), expected.1.to_bits());
            let expected_topk = scalar_top_k(query, &labels, &protos, k);
            prop_assert_eq!(topk[qi].len(), expected_topk.len());
            for (got, want) in topk[qi].iter().zip(&expected_topk) {
                prop_assert_eq!(got.0, want.0, "dim={} q={}", dim, qi);
                prop_assert_eq!(got.1.to_bits(), want.1.to_bits());
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_logits(
        dim in 1usize..400,
        classes in 1usize..20,
        queries in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let (_labels, _protos, _query_rows, memory, batch) =
            build_problem(dim, classes, queries, seed);
        let reference = BatchScorer::new(&memory).with_threads(1).score_batch(&batch);
        for threads in [2usize, 3, 8, 19] {
            let logits = BatchScorer::new(&memory).with_threads(threads).score_batch(&batch);
            prop_assert_eq!(
                logits.as_slice(), reference.as_slice(),
                "threads={} dim={}", threads, dim
            );
            let nearest_1 = BatchScorer::new(&memory).with_threads(1).nearest_batch(&batch);
            let nearest_n = BatchScorer::new(&memory).with_threads(threads).nearest_batch(&batch);
            prop_assert_eq!(nearest_1, nearest_n, "threads={}", threads);
        }
    }

    #[test]
    fn dense_cosine_thread_invariant_and_matches_reference(
        rows in 1usize..20,
        cols in 1usize..40,
        protos in 1usize..15,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = tensor::Matrix::random_uniform(rows, cols, 1.0, &mut rng);
        let b = tensor::Matrix::random_uniform(protos, cols, 1.0, &mut rng);
        let reference = tensor::ops::cosine_similarity_matrix(&a, &b);
        for threads in [1usize, 2, 7] {
            let scores = engine::dense::cosine_scores(&a, &b, &Pool::new(threads));
            prop_assert_eq!(scores.as_slice(), reference.as_slice(), "threads={}", threads);
        }
    }

    /// `Matrix::topk_rows` sits downstream of every engine scoring path
    /// (`metrics::topk_accuracy` consumes logit matrices through it). Its
    /// selection-based implementation must match the full-sort reference —
    /// descending by value, ties to the smaller index — including on logit
    /// matrices that are full of exact ties (quantised values).
    #[test]
    fn topk_rows_matches_full_sort_reference(
        rows in 1usize..12,
        cols in 1usize..40,
        k in 0usize..45,
        levels in 1u32..6,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Quantise to a few levels so duplicate values (ties) are common.
        let m = tensor::Matrix::random_uniform(rows, cols, 1.0, &mut rng)
            .map(|x| (x * levels as f32).round() / levels as f32);
        let got = m.topk_rows(k);
        for (r, got_row) in got.iter().enumerate() {
            let row = m.row(r);
            let mut reference: Vec<usize> = (0..cols).collect();
            // Stable sort on value only: equal values keep ascending index
            // order, the documented tie rule.
            reference.sort_by(|&a, &b| {
                row[b].partial_cmp(&row[a]).expect("finite values")
            });
            reference.truncate(k);
            prop_assert_eq!(
                got_row, &reference,
                "rows={} cols={} k={} r={}", rows, cols, k, r
            );
        }
    }

    #[test]
    fn packed_roundtrip_preserves_similarity_identity(
        dim in 1usize..600,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let signs = random_signs(dim, &mut rng);
        let words = pack_signs(&signs);
        // Self-similarity is exactly 1, and the word row hamming against
        // itself is 0.
        let mut memory = PackedClassMemory::new(dim);
        memory.insert_signs("self", &signs);
        let (index, sim) = memory.nearest(&words).expect("non-empty");
        prop_assert_eq!(index, 0);
        prop_assert_eq!(sim.to_bits(), 1.0f32.to_bits());
        prop_assert_eq!(similarity_from_hamming(dim, 0).to_bits(), 1.0f32.to_bits());
    }
}
