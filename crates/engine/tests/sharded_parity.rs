//! Property tests pinning the sharded class memory's exactness contract:
//! for shard counts {1, 2, 3, 7}, ragged (non-multiple-of-64) dimensions,
//! `k ≥ num_classes`, and after arbitrary add/update/remove interleavings,
//! the sharded top-k labels and similarity bits are identical to a
//! monolithic [`PackedClassMemory`] holding the same class set.

use engine::{pack_signs, PackedClassMemory, PackedQueryBatch, ShardedClassMemory};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn random_signs(dim: usize, rng: &mut StdRng) -> Vec<i8> {
    (0..dim)
        .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
        .collect()
}

/// `(label, top-k labels + similarity bits)` comparison rows for one query.
fn monolithic_topk(memory: &PackedClassMemory, query: &[u64], k: usize) -> Vec<(String, u32)> {
    memory
        .top_k(query, k)
        .into_iter()
        .map(|(index, sim)| (memory.label(index).to_string(), sim.to_bits()))
        .collect()
}

fn sharded_topk(memory: &ShardedClassMemory, query: &[u64], k: usize) -> Vec<(String, u32)> {
    memory
        .top_k(query, k)
        .into_iter()
        .map(|(label, sim)| (label.to_string(), sim.to_bits()))
        .collect()
}

/// Asserts nearest + top-k parity between a monolithic memory and its
/// sharded counterparts for a set of random queries, including
/// `k ≥ num_classes` and `k = 0`.
fn assert_parity(
    mono: &PackedClassMemory,
    sharded: &[ShardedClassMemory],
    dim: usize,
    rng: &mut StdRng,
) {
    let classes = mono.len();
    let ks = [
        0usize,
        1,
        classes / 2,
        classes,
        classes + 7,
        classes * 2 + 1,
    ];
    for _ in 0..3 {
        let query = pack_signs(&random_signs(dim, rng));
        let mono_nearest = mono
            .nearest(&query)
            .map(|(index, sim)| (mono.label(index).to_string(), sim.to_bits()));
        for memory in sharded {
            let shards = memory.num_shards();
            assert_eq!(memory.len(), classes, "shards={shards}");
            let near = memory
                .nearest(&query)
                .map(|(label, sim)| (label.to_string(), sim.to_bits()));
            assert_eq!(near, mono_nearest, "dim={dim} shards={shards}");
            for &k in &ks {
                assert_eq!(
                    sharded_topk(memory, &query, k),
                    monolithic_topk(mono, &query, k),
                    "dim={dim} shards={shards} k={k}"
                );
            }
        }
    }
}

proptest! {
    /// Freshly built memories: identical top-k labels/scores across shard
    /// counts, ragged dims, and k at/above the class count.
    #[test]
    fn sharded_topk_bit_identical_to_monolithic(
        dim in 1usize..300,
        classes in 1usize..30,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mono = PackedClassMemory::new(dim);
        let mut sharded: Vec<ShardedClassMemory> = SHARD_COUNTS
            .iter()
            .map(|&s| ShardedClassMemory::new(dim, s))
            .collect();
        for c in 0..classes {
            let row = random_signs(dim, &mut rng);
            let label = format!("class{c:04}");
            mono.insert_signs(label.clone(), &row);
            for memory in &mut sharded {
                memory.add_class(label.clone(), &row);
            }
        }
        assert_parity(&mono, &sharded, dim, &mut rng);
    }

    /// Parity survives arbitrary interleavings of add / update / remove:
    /// after every mutation the sharded memories hold exactly the monolith's
    /// class set and keep returning identical top-k labels and bits.
    #[test]
    fn parity_after_add_update_remove_sequences(
        dim in 1usize..200,
        initial in 1usize..12,
        ops in 4usize..24,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mono = PackedClassMemory::new(dim);
        let mut sharded: Vec<ShardedClassMemory> = SHARD_COUNTS
            .iter()
            .map(|&s| ShardedClassMemory::new(dim, s))
            .collect();
        let mut live: Vec<String> = Vec::new();
        let mut next_label = 0usize;
        let add = |mono: &mut PackedClassMemory,
                       sharded: &mut Vec<ShardedClassMemory>,
                       live: &mut Vec<String>,
                       next_label: &mut usize,
                       rng: &mut StdRng| {
            let label = format!("class{:04}", *next_label);
            *next_label += 1;
            let row = random_signs(dim, rng);
            mono.insert_signs(label.clone(), &row);
            for memory in sharded.iter_mut() {
                memory.add_class(label.clone(), &row);
            }
            live.push(label);
        };
        for _ in 0..initial {
            add(&mut mono, &mut sharded, &mut live, &mut next_label, &mut rng);
        }
        for _ in 0..ops {
            match rng.gen::<u32>() % 3 {
                0 => add(&mut mono, &mut sharded, &mut live, &mut next_label, &mut rng),
                1 if !live.is_empty() => {
                    // Update an existing class in place everywhere.
                    let target = live[rng.gen::<usize>() % live.len()].clone();
                    let row = random_signs(dim, &mut rng);
                    mono.insert_signs(target.clone(), &row);
                    for memory in sharded.iter_mut() {
                        prop_assert!(memory.update_class(&target, &row));
                    }
                }
                _ if live.len() > 1 => {
                    // Remove a class everywhere (keep at least one live so
                    // nearest always has a winner).
                    let target = live.remove(rng.gen::<usize>() % live.len());
                    prop_assert!(mono.remove(&target).is_some());
                    for memory in sharded.iter_mut() {
                        prop_assert!(memory.remove_class(&target));
                        prop_assert!(!memory.contains(&target));
                    }
                }
                _ => {}
            }
            assert_parity(&mono, &sharded, dim, &mut rng);
        }
    }

    /// Batch lookups agree with single-query lookups (and therefore with the
    /// monolith) for every shard count and thread count.
    #[test]
    fn batch_lookups_match_single_query_lookups(
        dim in 1usize..250,
        classes in 1usize..16,
        queries in 1usize..10,
        k in 1usize..20,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<i8>> = (0..classes).map(|_| random_signs(dim, &mut rng)).collect();
        let query_rows: Vec<Vec<i8>> =
            (0..queries).map(|_| random_signs(dim, &mut rng)).collect();
        let mut batch = PackedQueryBatch::new(dim);
        for q in &query_rows {
            batch.push_signs(q);
        }
        for &shards in &SHARD_COUNTS {
            for threads in [1usize, 3] {
                let mut memory = ShardedClassMemory::new(dim, shards).with_threads(threads);
                for (c, row) in rows.iter().enumerate() {
                    memory.add_class(format!("class{c:04}"), row);
                }
                let nearest = memory.nearest_batch(&batch);
                let topk = memory.topk_batch(&batch, k);
                prop_assert_eq!(nearest.len(), queries);
                prop_assert_eq!(topk.len(), queries);
                for (q, signs) in query_rows.iter().enumerate() {
                    let packed = pack_signs(signs);
                    prop_assert_eq!(
                        &nearest[q],
                        &memory.nearest(&packed).expect("non-empty"),
                        "shards={} threads={} q={}", shards, threads, q
                    );
                    prop_assert_eq!(
                        &topk[q],
                        &memory.top_k(&packed, k),
                        "shards={} threads={} q={}", shards, threads, q
                    );
                }
            }
        }
    }
}
