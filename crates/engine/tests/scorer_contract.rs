//! Generic property tests for the unified [`Scorer`] trait: one checker,
//! run against all four backends (dense, packed, sharded, routed) built
//! from the *same* labelled ±1 prototype set.
//!
//! Pinned per backend:
//!
//! * the truncation contract — `top_k` returns `min(k, num_classes)`
//!   entries, `k == 0` is empty, oversized `k` returns every class;
//! * the tie-break — similarity descending, equal similarities ordered by
//!   label ascending;
//! * batch consistency — `nearest_batch` / `topk_batch` / `score_batch`
//!   agree with their per-query counterparts bit for bit;
//! * `nearest` ≡ `top_k(1)`.
//!
//! Pinned across backends:
//!
//! * packed ↔ sharded results are **bit-identical** (labels and similarity
//!   bits) for every shard count — the monolithic-merge contract;
//! * packed ↔ routed (full probing) results are **bit-identical** for
//!   every cluster count — the coarse-to-fine exact-re-rank contract;
//! * the dense backend's cosine scores are bit-identical to the serial
//!   `tensor::ops::cosine_similarity_matrix` reference.
//!
//! Prototypes are drawn from a small pool of patterns so exact ties are
//! frequent rather than accidental.

use engine::{
    pack_signs, DenseClassMemory, PackedClassMemory, PackedQueryBatch, RoutedClassMemory,
    RoutedConfig, Scorer, ShardedClassMemory,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::Matrix;

fn random_signs(dim: usize, rng: &mut StdRng) -> Vec<i8> {
    (0..dim)
        .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
        .collect()
}

/// Asserts the full per-backend `Scorer` contract over a batch and its
/// individual queries.
fn check_contract<S: Scorer>(
    scorer: &S,
    batch: &S::Batch,
    queries: &[&S::Query],
    batch_len: usize,
    ctx: &str,
) {
    let classes = scorer.num_classes();
    assert_eq!(scorer.is_empty(), classes == 0, "{ctx}: is_empty");

    // score_batch shape.
    let scores = scorer.score_batch(batch);
    assert_eq!(scores.shape(), (batch_len, classes), "{ctx}: score shape");

    for (q, query) in queries.iter().enumerate() {
        for k in [0usize, 1, 2, classes, classes + 3, classes * 2 + 1] {
            let top = scorer.top_k(query, k);
            assert_eq!(top.len(), k.min(classes), "{ctx}: q{q} k{k} truncation");
            // Ordering: similarity descending; exact ties label-ascending.
            for pair in top.windows(2) {
                let ((la, sa), (lb, sb)) = (&pair[0], &pair[1]);
                assert!(
                    sa > sb || (sa == sb && la < lb),
                    "{ctx}: q{q} k{k} ordering violated: ({la}, {sa}) before ({lb}, {sb})"
                );
            }
        }
        // nearest ≡ top_k(1).
        let nearest = scorer.nearest(query);
        let top1 = scorer.top_k(query, 1).into_iter().next();
        match (nearest, top1) {
            (None, None) => assert_eq!(classes, 0, "{ctx}: q{q} empty only when no classes"),
            (Some((nl, ns)), Some((tl, ts))) => {
                assert_eq!(
                    (nl, ns.to_bits()),
                    (tl, ts.to_bits()),
                    "{ctx}: q{q} nearest"
                );
            }
            (a, b) => panic!("{ctx}: q{q} nearest {a:?} disagrees with top_k(1) {b:?}"),
        }
        // Oversized k covers every stored class exactly once.
        let mut all: Vec<&str> = scorer
            .top_k(query, classes + 1)
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            classes,
            "{ctx}: q{q} full top-k covers all classes"
        );
    }

    // Batch lookups agree with per-query lookups bit for bit.
    if classes > 0 {
        let nearest_batch = scorer.nearest_batch(batch);
        assert_eq!(nearest_batch.len(), batch_len, "{ctx}: nearest_batch len");
        for (q, query) in queries.iter().enumerate() {
            let (bl, bs) = &nearest_batch[q];
            let (sl, ss) = scorer.nearest(query).expect("non-empty");
            assert_eq!(
                (*bl, bs.to_bits()),
                (sl, ss.to_bits()),
                "{ctx}: q{q} batch nearest"
            );
        }
    }
    for k in [0usize, 1, 3, classes + 2] {
        let topk_batch = scorer.topk_batch(batch, k);
        assert_eq!(topk_batch.len(), batch_len, "{ctx}: topk_batch len");
        for (q, query) in queries.iter().enumerate() {
            let solo: Vec<(&str, u32)> = scorer
                .top_k(query, k)
                .into_iter()
                .map(|(l, s)| (l, s.to_bits()))
                .collect();
            let batched: Vec<(&str, u32)> = topk_batch[q]
                .iter()
                .map(|(l, s)| (*l, s.to_bits()))
                .collect();
            assert_eq!(batched, solo, "{ctx}: q{q} k{k} batch top-k");
        }
    }
}

/// One generated problem: labelled ±1 prototypes (drawn from a small pattern
/// pool so ties are common) plus query rows.
struct Problem {
    labels: Vec<String>,
    protos: Vec<Vec<i8>>,
    queries: Vec<Vec<i8>>,
}

fn build_problem(dim: usize, classes: usize, queries: usize, pool: usize, seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let patterns: Vec<Vec<i8>> = (0..pool.max(1))
        .map(|_| random_signs(dim, &mut rng))
        .collect();
    let protos: Vec<Vec<i8>> = (0..classes)
        .map(|_| patterns[rng.gen_range(0..patterns.len())].clone())
        .collect();
    let labels: Vec<String> = (0..classes).map(|c| format!("c{c:02}")).collect();
    let queries = (0..queries).map(|_| random_signs(dim, &mut rng)).collect();
    Problem {
        labels,
        protos,
        queries,
    }
}

proptest! {
    /// The full contract holds for every backend, and packed ↔ sharded are
    /// bit-identical while dense matches the serial cosine reference.
    #[test]
    fn all_backends_satisfy_the_scorer_contract(
        dim in 1usize..180,
        classes in 1usize..14,
        queries in 1usize..6,
        pool in 1usize..5,
        shards in 1usize..4,
        threads in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let problem = build_problem(dim, classes, queries, pool, seed);

        // Packed backend.
        let mut packed = PackedClassMemory::new(dim);
        for (label, proto) in problem.labels.iter().zip(&problem.protos) {
            packed.insert_signs(label.clone(), proto);
        }
        let mut packed_batch = PackedQueryBatch::new(dim);
        for q in &problem.queries {
            packed_batch.push_signs(q);
        }
        let packed_queries: Vec<Vec<u64>> = problem.queries.iter().map(|q| pack_signs(q)).collect();
        let packed_refs: Vec<&[u64]> = packed_queries.iter().map(Vec::as_slice).collect();
        check_contract(&packed, &packed_batch, &packed_refs, problem.queries.len(), "packed");

        // Sharded backend over the same class set.
        let mut sharded = ShardedClassMemory::new(dim, shards);
        for (label, proto) in problem.labels.iter().zip(&problem.protos) {
            sharded.add_class(label.clone(), proto);
        }
        let sharded = sharded.with_threads(threads);
        check_contract(&sharded, &packed_batch, &packed_refs, problem.queries.len(), "sharded");

        // Routed backend over the same class set, fully probing (the mode
        // whose contract is bit-identical to the exhaustive scan). Reuse
        // the shard count draw as the cluster count.
        let mut routed = RoutedClassMemory::new(
            dim,
            RoutedConfig { clusters: shards, seed, ..RoutedConfig::default() },
        );
        for (label, proto) in problem.labels.iter().zip(&problem.protos) {
            routed.add_class(label.clone(), proto);
        }
        let routed = routed.with_threads(threads);
        check_contract(&routed, &packed_batch, &packed_refs, problem.queries.len(), "routed");

        // Dense backend over the same class set, as floats.
        let float_rows: Vec<Vec<f32>> = problem
            .protos
            .iter()
            .map(|p| p.iter().map(|&v| f32::from(v)).collect())
            .collect();
        let dense = DenseClassMemory::cosine(
            problem.labels.clone(),
            Matrix::from_rows(&float_rows),
        )
        .with_threads(threads);
        let float_queries: Vec<Vec<f32>> = problem
            .queries
            .iter()
            .map(|q| q.iter().map(|&v| f32::from(v)).collect())
            .collect();
        let dense_batch = Matrix::from_rows(&float_queries);
        let dense_refs: Vec<&[f32]> = float_queries.iter().map(Vec::as_slice).collect();
        check_contract(&dense, &dense_batch, &dense_refs, problem.queries.len(), "dense");

        // Cross-backend bit-parity: packed ↔ sharded ↔ routed.
        for (q, query) in packed_refs.iter().enumerate() {
            for k in [1usize, classes, classes + 4] {
                let p: Vec<(&str, u32)> = Scorer::top_k(&packed, query, k)
                    .into_iter()
                    .map(|(l, s)| (l, s.to_bits()))
                    .collect();
                let s: Vec<(&str, u32)> = Scorer::top_k(&sharded, query, k)
                    .into_iter()
                    .map(|(l, s)| (l, s.to_bits()))
                    .collect();
                let r: Vec<(&str, u32)> = Scorer::top_k(&routed, query, k)
                    .into_iter()
                    .map(|(l, s)| (l, s.to_bits()))
                    .collect();
                prop_assert_eq!(p.clone(), s, "packed vs sharded q{} k{}", q, k);
                prop_assert_eq!(p, r, "packed vs routed q{} k{}", q, k);
            }
        }

        // Dense exactness: bit-identical to the serial cosine reference.
        let reference = tensor::ops::cosine_similarity_matrix(
            &dense_batch,
            &Matrix::from_rows(&float_rows),
        );
        prop_assert_eq!(
            dense.score_batch(&dense_batch).as_slice(),
            reference.as_slice()
        );

        // Sharded score_batch columns follow the shard-major labels() order
        // and carry the same bits as the packed per-class scores.
        let sharded_scores = sharded.score_batch(&packed_batch);
        let sharded_labels: Vec<&str> = sharded.labels().collect();
        for (q, query) in packed_refs.iter().enumerate() {
            let per_class = packed.scores(query);
            for (column, label) in sharded_labels.iter().enumerate() {
                let packed_index = packed.position(label).expect("same class set");
                prop_assert_eq!(
                    sharded_scores.get(q, column).to_bits(),
                    per_class[packed_index].to_bits(),
                    "q{} label {}", q, label
                );
            }
        }
    }

    /// Empty memories are well-behaved through the trait: no classes, empty
    /// top-k, `None` nearest.
    #[test]
    fn empty_memories_are_consistent(dim in 1usize..100) {
        let packed = PackedClassMemory::new(dim);
        let sharded = ShardedClassMemory::new(dim, 2);
        let routed = RoutedClassMemory::new(dim, RoutedConfig::default());
        let dense = DenseClassMemory::cosine(Vec::<String>::new(), Matrix::zeros(0, dim));
        let packed_query = vec![0u64; engine::words_per_row(dim)];
        let dense_query = vec![0.0f32; dim];
        prop_assert!(Scorer::is_empty(&packed));
        prop_assert!(Scorer::is_empty(&sharded));
        prop_assert!(Scorer::is_empty(&routed));
        prop_assert!(Scorer::is_empty(&dense));
        prop_assert!(Scorer::nearest(&packed, &packed_query).is_none());
        prop_assert!(Scorer::nearest(&sharded, &packed_query).is_none());
        prop_assert!(Scorer::nearest(&routed, &packed_query).is_none());
        prop_assert!(Scorer::nearest(&dense, &dense_query).is_none());
        prop_assert!(Scorer::top_k(&packed, &packed_query, 3).is_empty());
        prop_assert!(Scorer::top_k(&sharded, &packed_query, 3).is_empty());
        prop_assert!(Scorer::top_k(&routed, &packed_query, 3).is_empty());
        prop_assert!(Scorer::top_k(&dense, &dense_query, 3).is_empty());
    }
}
