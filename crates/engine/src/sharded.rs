//! Sharded class memory: class prototypes split across N
//! [`PackedClassMemory`] shards, scored in parallel and merged with a
//! deterministic top-k that is **bit-identical** to the monolithic scorer.
//!
//! # Why shard?
//!
//! A monolithic [`PackedClassMemory`] is immutable-in-spirit: growing to very
//! large label spaces means one enormous contiguous word matrix, and every
//! class registration while serving would either mutate the matrix under
//! readers or rebuild the world. Sharding fixes both:
//!
//! * **Scale** — each shard is its own contiguous word matrix, scored
//!   independently (in parallel across a [`minipool::Pool`] for single-query
//!   lookups, across queries for batches), so the class axis scales past what
//!   one cache-friendly sweep handles well.
//! * **Online mutation** — [`ShardedClassMemory::add_class`] /
//!   [`ShardedClassMemory::update_class`] / [`ShardedClassMemory::remove_class`]
//!   repack only the touched shard. Shards sit behind [`Arc`]s with
//!   copy-on-write semantics ([`Arc::make_mut`]), so a clone of the whole
//!   memory shares every shard and a subsequent mutation deep-copies exactly
//!   one — the property the serving layer's atomic snapshot hot-swap relies
//!   on.
//!
//! # Exactness
//!
//! Per-shard candidates carry their raw integer Hamming distances
//! ([`PackedClassMemory::top_k_hamming`]), and the cross-shard merge orders
//! them by `(hamming, label)` — exactly the monolithic comparator. Distinct
//! Hamming distances that would round to the same `f32` similarity therefore
//! still merge in the monolithic order, and the returned similarities are the
//! same `similarity_from_hamming` bits the monolith produces. The
//! `sharded_parity` property tests pin label-and-bit equality against a
//! monolithic memory for shard counts {1, 2, 3, 7}, ragged dims,
//! `k ≥ num_classes`, and arbitrary add/update/remove interleavings.

use crate::batch::PackedQueryBatch;
use crate::packed::{pack_signs, similarity_from_hamming, words_per_row, PackedClassMemory};
use minipool::Pool;
use serde::{de, DeError, Deserialize, Serialize, Value};
use std::sync::Arc;
use tensor::Matrix;

/// A labelled class memory split across `N` packed shards; see the module
/// docs for the design and exactness contract.
///
/// Every lookup returns `(label, similarity)` pairs rather than row indices:
/// rows migrate between shard-local positions as classes come and go, so the
/// label is the only stable identity.
///
/// # Example
///
/// ```
/// use engine::{pack_signs, ShardedClassMemory};
///
/// let mut memory = ShardedClassMemory::new(4, 2);
/// memory.add_class("up", &[1, 1, 1, 1]);
/// memory.add_class("down", &[-1, -1, -1, -1]);
/// memory.add_class("left", &[-1, 1, -1, -1]);
/// let query = pack_signs(&[1, 1, 1, -1]);
/// let (label, sim) = memory.nearest(&query).expect("non-empty");
/// assert_eq!((label, sim), ("up", 0.5));
/// // k past the class count truncates to everything stored.
/// assert_eq!(memory.top_k(&query, 99).len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedClassMemory {
    dim: usize,
    shards: Vec<Arc<PackedClassMemory>>,
    pool: Pool,
}

/// Equality is structural — dimensionality plus per-shard contents. The
/// scoring pool width is a performance knob (results are bit-identical for
/// every width) and does not participate.
impl PartialEq for ShardedClassMemory {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && self.shards == other.shards
    }
}

impl ShardedClassMemory {
    /// Creates an empty memory of `num_shards` shards for `dim`-bit
    /// prototypes, scoring with an auto-sized pool.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `num_shards == 0`.
    pub fn new(dim: usize, num_shards: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert!(num_shards > 0, "at least one shard is required");
        Self {
            dim,
            shards: (0..num_shards)
                .map(|_| Arc::new(PackedClassMemory::new(dim)))
                .collect(),
            pool: Pool::auto(),
        }
    }

    /// Builds a sharded memory from one float row per class by taking signs
    /// (`x < 0` → `-1`), adding classes in row order — the sharded analogue
    /// of [`PackedClassMemory::from_sign_matrix`].
    ///
    /// # Panics
    ///
    /// Panics if the label count differs from the row count, the matrix has
    /// zero columns, or `num_shards == 0`.
    pub fn from_sign_matrix<L, S>(labels: L, matrix: &Matrix, num_shards: usize) -> Self
    where
        L: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut memory = Self::new(matrix.cols(), num_shards);
        let mut count = 0;
        for (r, label) in labels.into_iter().enumerate() {
            assert!(r < matrix.rows(), "more labels than matrix rows");
            let words = crate::packed::pack_float_signs(matrix.row(r));
            memory.add_class_packed(label, &words);
            count += 1;
        }
        assert_eq!(count, matrix.rows(), "fewer labels than matrix rows");
        memory
    }

    /// Redistributes a monolithic memory across `num_shards` shards,
    /// preserving the per-class prototypes (insertion order becomes
    /// round-robin-ish via least-loaded routing).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0` or `memory` is zero-dimensional.
    pub fn from_packed(memory: &PackedClassMemory, num_shards: usize) -> Self {
        let mut sharded = Self::new(memory.dim(), num_shards);
        for index in 0..memory.len() {
            sharded.add_class_packed(memory.label(index).to_string(), memory.row_words(index));
        }
        sharded
    }

    /// Caps single-query shard fan-out and batch query fan-out at `threads`
    /// threads (clamped to at least 1). Results are bit-identical for every
    /// setting.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = Pool::new(threads);
        self
    }

    /// Number of threads lookups fan out over.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Dimensionality of the stored prototypes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Packed words per prototype row.
    pub fn words_per_row(&self) -> usize {
        words_per_row(self.dim)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_shards()`.
    pub fn shard(&self, index: usize) -> &PackedClassMemory {
        &self.shards[index]
    }

    /// Total number of stored classes across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Returns `true` if no classes are stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Total packed footprint in bytes across all shards.
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.memory_bytes()).sum()
    }

    /// The stored labels in shard-major order (shard 0's rows, then shard
    /// 1's, …). The order is deterministic for a given mutation history but
    /// — unlike the monolithic memory — not globally insertion-ordered;
    /// treat labels, not positions, as class identity.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.shards.iter().flat_map(|s| s.labels())
    }

    /// The `(shard, row)` holding `label`, if stored.
    pub fn locate(&self, label: &str) -> Option<(usize, usize)> {
        self.shards
            .iter()
            .enumerate()
            .find_map(|(s, shard)| shard.position(label).map(|row| (s, row)))
    }

    /// Returns `true` if a class is stored under `label`.
    pub fn contains(&self, label: &str) -> bool {
        self.locate(label).is_some()
    }

    /// The packed words of the class stored under `label`, if any.
    pub fn class_words(&self, label: &str) -> Option<&[u64]> {
        self.locate(label)
            .map(|(s, row)| self.shards[s].row_words(row))
    }

    /// Least-loaded shard, ties to the smallest index — the deterministic
    /// routing rule for brand-new labels.
    fn shard_for_new_class(&self) -> usize {
        let mut best = 0;
        for (s, shard) in self.shards.iter().enumerate().skip(1) {
            if shard.len() < self.shards[best].len() {
                best = s;
            }
        }
        best
    }

    /// Inserts or replaces the class stored under `label` from ±1 signs.
    /// A new label routes to the least-loaded shard (ties to the smallest
    /// shard index); an existing label is updated in place in its current
    /// shard. Returns `(shard index, replaced)`.
    ///
    /// Only the touched shard is repacked; when that shard's `Arc` is shared
    /// (a snapshot clone exists) it is deep-copied first, leaving every other
    /// shard shared.
    ///
    /// # Panics
    ///
    /// Panics if `signs.len() != self.dim()` or a sign is not `±1`.
    pub fn add_class(&mut self, label: impl Into<String>, signs: &[i8]) -> (usize, bool) {
        assert_eq!(
            signs.len(),
            self.dim,
            "prototype dimensionality must match the memory"
        );
        self.add_class_packed(label, &pack_signs(signs))
    }

    /// Inserts or replaces a class from an already-packed word row; see
    /// [`ShardedClassMemory::add_class`]. Tail bits beyond `dim` are cleared
    /// on insertion.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != self.words_per_row()`.
    pub fn add_class_packed(&mut self, label: impl Into<String>, words: &[u64]) -> (usize, bool) {
        let label = label.into();
        let shard = match self.locate(&label) {
            Some((s, _)) => s,
            None => self.shard_for_new_class(),
        };
        let (_, replaced) = Arc::make_mut(&mut self.shards[shard]).insert_packed(label, words);
        (shard, replaced)
    }

    /// Replaces the prototype of an *existing* class, returning `false`
    /// (without inserting) when `label` is not stored. Use
    /// [`ShardedClassMemory::add_class`] for insert-or-replace semantics.
    ///
    /// # Panics
    ///
    /// Panics if `signs.len() != self.dim()` or a sign is not `±1`.
    pub fn update_class(&mut self, label: &str, signs: &[i8]) -> bool {
        if !self.contains(label) {
            return false;
        }
        self.add_class(label, signs);
        true
    }

    /// Removes the class stored under `label`, repacking only its shard
    /// (the shard's word matrix is spliced, every other shard is untouched
    /// and stays `Arc`-shared). Returns `false` if the label is not stored.
    pub fn remove_class(&mut self, label: &str) -> bool {
        match self.locate(label) {
            Some((s, _)) => {
                Arc::make_mut(&mut self.shards[s]).remove(label);
                true
            }
            None => false,
        }
    }

    /// Total packed words a full sweep reads; the fan-out heuristic's input.
    fn total_words(&self) -> usize {
        self.len() * self.words_per_row()
    }

    /// Whether a *single-query* lookup should fan the shards out across the
    /// pool. `minipool` spawns fresh scoped threads per call (no persistent
    /// workers), so the fan-out only pays once the sweep itself is
    /// substantial — below the threshold a serial shard loop is strictly
    /// faster. Results are bit-identical either way; this is purely a
    /// latency knob.
    fn single_query_fanout(&self) -> bool {
        /// ~1 MiB of packed prototype words — several hundred µs of sweep,
        /// comfortably above scoped-thread spawn cost.
        const FANOUT_WORDS: usize = 128 * 1024;
        self.shards.len() > 1 && self.pool.threads() > 1 && self.total_words() >= FANOUT_WORDS
    }

    /// The most similar stored class to a packed query, as
    /// `(label, similarity)`, with shards scored in parallel across the pool
    /// (for sweeps large enough to amortise the fan-out; serially otherwise)
    /// and the winners merged on `(hamming, label)` — bit-identical to
    /// [`PackedClassMemory::nearest`] over the same class set.
    ///
    /// Returns `None` if the memory is empty.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.words_per_row()`.
    pub fn nearest(&self, query: &[u64]) -> Option<(&str, f32)> {
        assert_eq!(query.len(), self.words_per_row(), "query width");
        if !self.single_query_fanout() {
            return self.nearest_serial(query);
        }
        let per_shard: Vec<Option<(usize, usize, u64)>> = self
            .pool
            .map_chunks(self.shards.len(), |range| {
                range
                    .map(|s| {
                        self.shards[s]
                            .nearest_hamming(query)
                            .map(|(row, hamming)| (s, row, hamming))
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        self.merge_nearest(per_shard.into_iter().flatten())
    }

    /// Serial (no-spawn) shard sweep behind [`ShardedClassMemory::nearest`];
    /// also what each batch worker runs per query.
    fn nearest_serial(&self, query: &[u64]) -> Option<(&str, f32)> {
        let winners = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(s, shard)| {
                shard
                    .nearest_hamming(query)
                    .map(|(row, hamming)| (s, row, hamming))
            })
            .collect::<Vec<_>>();
        self.merge_nearest(winners.into_iter())
    }

    /// The `k` most similar stored classes, most similar first, with the
    /// monolithic `(hamming, label)` ordering and truncation contract:
    /// `min(k, self.len())` entries, `k == 0` empty. Shards are scored in
    /// parallel across the pool for sweeps large enough to amortise the
    /// fan-out (serially otherwise), each contributing at most `k`
    /// candidates to the merge.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.words_per_row()`.
    pub fn top_k(&self, query: &[u64], k: usize) -> Vec<(&str, f32)> {
        assert_eq!(query.len(), self.words_per_row(), "query width");
        if !self.single_query_fanout() {
            return self.top_k_serial(query, k);
        }
        let per_shard: Vec<Vec<(usize, u64)>> = self
            .pool
            .map_chunks(self.shards.len(), |range| {
                range
                    .map(|s| self.shards[s].top_k_hamming(query, k))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        self.merge_top_k(&per_shard, k)
    }

    /// Serial (no-spawn) shard sweep behind [`ShardedClassMemory::top_k`];
    /// also what each batch worker runs per query.
    fn top_k_serial(&self, query: &[u64], k: usize) -> Vec<(&str, f32)> {
        let per_shard: Vec<Vec<(usize, u64)>> = self
            .shards
            .iter()
            .map(|shard| shard.top_k_hamming(query, k))
            .collect();
        self.merge_top_k(&per_shard, k)
    }

    /// The nearest class of every query in the batch, parallelised across
    /// queries (each worker sweeps all shards serially for its query range).
    ///
    /// # Panics
    ///
    /// Panics if `batch.dim() != self.dim()` or the memory is empty while the
    /// batch is not.
    pub fn nearest_batch(&self, batch: &PackedQueryBatch) -> Vec<(&str, f32)> {
        assert_eq!(
            batch.dim(),
            self.dim,
            "query batch dimensionality must match the class memory"
        );
        assert!(
            batch.is_empty() || !self.is_empty(),
            "nearest_batch requires a non-empty class memory"
        );
        self.pool
            .map_chunks(batch.len(), |range| {
                range
                    .map(|q| self.nearest_serial(batch.row(q)).expect("non-empty memory"))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
    }

    /// The top-k classes of every query in the batch, parallelised across
    /// queries; same ordering and truncation contract as
    /// [`ShardedClassMemory::top_k`].
    ///
    /// # Panics
    ///
    /// Panics if `batch.dim() != self.dim()`.
    pub fn topk_batch(&self, batch: &PackedQueryBatch, k: usize) -> Vec<Vec<(&str, f32)>> {
        assert_eq!(
            batch.dim(),
            self.dim,
            "query batch dimensionality must match the class memory"
        );
        self.pool
            .map_chunks(batch.len(), |range| {
                range
                    .map(|q| self.top_k_serial(batch.row(q), k))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
    }

    /// Merges per-shard `(shard, row, hamming)` winners on `(hamming,
    /// label)` — the monolithic comparator.
    fn merge_nearest<I>(&self, winners: I) -> Option<(&str, f32)>
    where
        I: Iterator<Item = (usize, usize, u64)>,
    {
        winners
            .min_by(|&(sa, ra, ha), &(sb, rb, hb)| {
                ha.cmp(&hb)
                    .then_with(|| self.shards[sa].label(ra).cmp(self.shards[sb].label(rb)))
            })
            .map(|(s, row, hamming)| {
                (
                    self.shards[s].label(row),
                    similarity_from_hamming(self.dim, hamming),
                )
            })
    }

    /// Merges per-shard candidate lists (`per_shard[s]` is shard `s`'s
    /// `(row, hamming)` top-k) into the global top-k on `(hamming, label)`.
    fn merge_top_k(&self, per_shard: &[Vec<(usize, u64)>], k: usize) -> Vec<(&str, f32)> {
        let mut merged: Vec<(usize, usize, u64)> = per_shard
            .iter()
            .enumerate()
            .flat_map(|(s, rows)| rows.iter().map(move |&(row, hamming)| (s, row, hamming)))
            .collect();
        merged.sort_by(|&(sa, ra, ha), &(sb, rb, hb)| {
            ha.cmp(&hb)
                .then_with(|| self.shards[sa].label(ra).cmp(self.shards[sb].label(rb)))
        });
        merged.truncate(k);
        merged
            .into_iter()
            .map(|(s, row, hamming)| {
                (
                    self.shards[s].label(row),
                    similarity_from_hamming(self.dim, hamming),
                )
            })
            .collect()
    }
}

/// Serializes as `{dim, shards: [PackedClassMemory, …]}` — the exact
/// per-shard contents, in shard order. Because routing of *future* inserts
/// depends only on shard occupancies (least-loaded, ties to the smallest
/// index), a round-tripped memory not only scores bit-identically but also
/// routes every subsequent mutation exactly as the original would — the
/// property the serve-layer crash-recovery replay relies on.
impl Serialize for ShardedClassMemory {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("dim".to_string(), self.dim.to_value()),
            (
                "shards".to_string(),
                Value::Array(self.shards.iter().map(|s| s.to_value()).collect()),
            ),
        ])
    }
}

/// Hand-written (instead of derived) so cross-shard invariants — a
/// non-empty shard list, every shard at the declared dimensionality, no
/// label stored twice — are enforced with typed errors. Per-shard word
/// matrix shape and tail-bit cleanliness are validated by
/// [`PackedClassMemory`]'s own deserializer. The scoring pool is rebuilt
/// auto-sized (it is a performance knob, not state).
impl Deserialize for ShardedClassMemory {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = de::expect_object(value, "ShardedClassMemory")?;
        let dim: usize = de::field(entries, "dim", "ShardedClassMemory")?;
        let shards: Vec<PackedClassMemory> = de::field(entries, "shards", "ShardedClassMemory")?;
        let type_err = |msg: String| DeError::new(msg).in_field("ShardedClassMemory");
        if dim == 0 {
            return Err(type_err("dimensionality must be positive".into()));
        }
        if shards.is_empty() {
            return Err(type_err("at least one shard is required".into()));
        }
        for (s, shard) in shards.iter().enumerate() {
            if shard.dim() != dim {
                return Err(type_err(format!(
                    "shard {s} has dimensionality {} but the memory declares {dim}",
                    shard.dim()
                )));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for shard in &shards {
            for label in shard.labels() {
                if !seen.insert(label) {
                    return Err(type_err(format!("label `{label}` stored in two shards")));
                }
            }
        }
        Ok(Self {
            dim,
            shards: shards.into_iter().map(Arc::new).collect(),
            pool: Pool::auto(),
        })
    }
}

/// The sharded backend of the unified [`Scorer`](crate::Scorer) contract.
/// Lookups delegate to the inherent methods (parallel shard fan-out, merged
/// on `(hamming, label)` — bit-identical to the monolithic scorer);
/// [`Scorer::score_batch`](crate::Scorer::score_batch) reports similarities
/// in **shard-major** stored order (the order of
/// [`ShardedClassMemory::labels`]), stitched from the per-shard popcount
/// sweeps and parallelised across queries.
impl crate::Scorer for ShardedClassMemory {
    type Query = [u64];
    type Batch = PackedQueryBatch;

    fn dim(&self) -> usize {
        self.dim
    }

    fn num_classes(&self) -> usize {
        self.len()
    }

    fn score_batch(&self, batch: &PackedQueryBatch) -> tensor::Matrix {
        assert_eq!(
            batch.dim(),
            self.dim,
            "query batch dimensionality must match the class memory"
        );
        let classes = self.len();
        if batch.is_empty() {
            return tensor::Matrix::zeros(0, classes);
        }
        let blocks = self.pool.map_chunks(batch.len(), |range| {
            let mut out = Vec::with_capacity(range.len() * classes);
            for q in range {
                for shard in &self.shards {
                    out.extend_from_slice(&shard.scores(batch.row(q)));
                }
            }
            out
        });
        let mut data = Vec::with_capacity(batch.len() * classes);
        for block in blocks {
            data.extend_from_slice(&block);
        }
        tensor::Matrix::from_vec(batch.len(), classes, data)
    }

    fn nearest(&self, query: &[u64]) -> Option<(&str, f32)> {
        ShardedClassMemory::nearest(self, query)
    }

    fn top_k(&self, query: &[u64], k: usize) -> Vec<(&str, f32)> {
        ShardedClassMemory::top_k(self, query, k)
    }

    fn nearest_batch(&self, batch: &PackedQueryBatch) -> Vec<(&str, f32)> {
        ShardedClassMemory::nearest_batch(self, batch)
    }

    fn topk_batch(&self, batch: &PackedQueryBatch, k: usize) -> Vec<Vec<(&str, f32)>> {
        ShardedClassMemory::topk_batch(self, batch, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_signs(state: &mut u64, dim: usize) -> Vec<i8> {
        (0..dim)
            .map(|_| {
                *state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if *state >> 63 == 0 {
                    1
                } else {
                    -1
                }
            })
            .collect()
    }

    fn fixture(dim: usize, classes: usize, shards: usize) -> (ShardedClassMemory, Vec<Vec<i8>>) {
        let mut state = 99u64;
        let mut memory = ShardedClassMemory::new(dim, shards);
        let protos: Vec<Vec<i8>> = (0..classes)
            .map(|c| {
                let row = lcg_signs(&mut state, dim);
                memory.add_class(format!("class{c:03}"), &row);
                row
            })
            .collect();
        (memory, protos)
    }

    #[test]
    fn routing_balances_shards_deterministically() {
        let (memory, _) = fixture(64, 10, 3);
        let sizes: Vec<usize> = (0..3).map(|s| memory.shard(s).len()).collect();
        // Least-loaded with smallest-index ties over sequential adds is
        // round-robin: 4, 3, 3.
        assert_eq!(sizes, vec![4, 3, 3]);
        assert_eq!(memory.len(), 10);
        assert!(!memory.is_empty());
        assert_eq!(memory.labels().count(), 10);
    }

    #[test]
    fn add_update_remove_touch_one_shard() {
        let (mut memory, protos) = fixture(130, 7, 3);
        let snapshot = memory.clone();
        // All shards start shared with the snapshot clone.
        for s in 0..3 {
            assert!(Arc::ptr_eq(&memory.shards[s], &snapshot.shards[s]));
        }
        let (touched, replaced) = memory.add_class("newcomer", &protos[0]);
        assert!(!replaced);
        // Exactly the touched shard was deep-copied; the others stay shared.
        for s in 0..3 {
            assert_eq!(
                Arc::ptr_eq(&memory.shards[s], &snapshot.shards[s]),
                s != touched,
                "shard {s}"
            );
        }
        // The snapshot is untouched — COW semantics.
        assert_eq!(snapshot.len(), 7);
        assert_eq!(memory.len(), 8);
        assert!(memory.contains("newcomer"));
        assert!(!snapshot.contains("newcomer"));
        assert!(memory.remove_class("newcomer"));
        assert!(!memory.remove_class("newcomer"));
        assert_eq!(memory.len(), 7);
        assert_eq!(memory, snapshot);
    }

    #[test]
    fn update_class_only_touches_existing_labels() {
        let (mut memory, protos) = fixture(64, 4, 2);
        assert!(!memory.update_class("ghost", &protos[0]));
        assert!(!memory.contains("ghost"));
        let before = memory.locate("class001").expect("stored");
        assert!(memory.update_class("class001", &protos[3]));
        // Update stays in the same shard and row.
        assert_eq!(memory.locate("class001"), Some(before));
        assert_eq!(
            memory.class_words("class001").expect("stored"),
            &pack_signs(&protos[3])[..]
        );
    }

    #[test]
    fn lookups_match_monolithic_memory_bit_for_bit() {
        let dim = 130; // ragged on purpose
        let (memory, protos) = fixture(dim, 17, 3);
        let mut mono = PackedClassMemory::new(dim);
        for (c, proto) in protos.iter().enumerate() {
            mono.insert_signs(format!("class{c:03}"), proto);
        }
        let mut state = 7u64;
        for threads in [1usize, 2, 5] {
            let memory = memory.clone().with_threads(threads);
            assert_eq!(memory.threads(), threads);
            for _ in 0..6 {
                let query = pack_signs(&lcg_signs(&mut state, dim));
                let (label, sim) = memory.nearest(&query).expect("non-empty");
                let (mono_index, mono_sim) = mono.nearest(&query).expect("non-empty");
                assert_eq!(label, mono.label(mono_index));
                assert_eq!(sim.to_bits(), mono_sim.to_bits());
                for k in [0usize, 1, 5, 17, 40] {
                    let sharded: Vec<(&str, u32)> = memory
                        .top_k(&query, k)
                        .into_iter()
                        .map(|(l, s)| (l, s.to_bits()))
                        .collect();
                    let monolithic: Vec<(&str, u32)> = mono
                        .top_k(&query, k)
                        .into_iter()
                        .map(|(i, s)| (mono.label(i), s.to_bits()))
                        .collect();
                    assert_eq!(sharded, monolithic, "threads={threads} k={k}");
                }
            }
        }
    }

    #[test]
    fn batch_lookups_match_single_query_lookups() {
        let dim = 96;
        let (memory, _) = fixture(dim, 9, 2);
        let mut state = 21u64;
        let mut batch = PackedQueryBatch::new(dim);
        let queries: Vec<Vec<i8>> = (0..11)
            .map(|_| {
                let q = lcg_signs(&mut state, dim);
                batch.push_signs(&q);
                q
            })
            .collect();
        let nearest = memory.nearest_batch(&batch);
        let topk = memory.topk_batch(&batch, 4);
        assert_eq!(nearest.len(), queries.len());
        for (q, signs) in queries.iter().enumerate() {
            let packed = pack_signs(signs);
            assert_eq!(nearest[q], memory.nearest(&packed).expect("non-empty"));
            assert_eq!(topk[q], memory.top_k(&packed, 4));
        }
        // Empty batch short-circuits.
        let empty = PackedQueryBatch::new(dim);
        assert!(memory.nearest_batch(&empty).is_empty());
        assert!(memory.topk_batch(&empty, 3).is_empty());
    }

    #[test]
    fn from_packed_and_from_sign_matrix_agree_with_adds() {
        let matrix = Matrix::from_rows(&[
            vec![1.0, -2.0, 3.0],
            vec![-0.5, 0.5, -0.5],
            vec![1.0, 1.0, -1.0],
        ]);
        let labels = ["a", "b", "c"];
        let from_matrix = ShardedClassMemory::from_sign_matrix(labels, &matrix, 2);
        let mono = PackedClassMemory::from_sign_matrix(labels, &matrix);
        let from_packed = ShardedClassMemory::from_packed(&mono, 2);
        assert_eq!(from_matrix, from_packed);
        assert_eq!(from_matrix.len(), 3);
        assert_eq!(from_matrix.dim(), 3);
        assert!(from_matrix.memory_bytes() > 0);
        let query = pack_signs(&[1, -1, 1]);
        assert_eq!(from_matrix.top_k(&query, 3), from_packed.top_k(&query, 3));
    }

    /// Single-query lookups above the fan-out threshold take the
    /// minipool-parallel branch; results must stay bit-identical to the
    /// monolithic memory (and to the serial branch used by small memories).
    #[test]
    fn parallel_fanout_branch_matches_monolithic() {
        let dim = 65_536usize; // 1024 words per row
        let classes = 128usize; // 131072 total words ≥ the fan-out threshold
        let mut state = 0xfeed_beefu64;
        let mut next_word = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let wpr = words_per_row(dim);
        let mut mono = PackedClassMemory::new(dim);
        let mut memory = ShardedClassMemory::new(dim, 4).with_threads(3);
        for c in 0..classes {
            let row: Vec<u64> = (0..wpr).map(|_| next_word()).collect();
            mono.insert_packed(format!("class{c:03}"), &row);
            memory.add_class_packed(format!("class{c:03}"), &row);
        }
        assert!(
            memory.single_query_fanout(),
            "fixture must cross the threshold"
        );
        let query: Vec<u64> = (0..wpr).map(|_| next_word()).collect();
        let (label, sim) = memory.nearest(&query).expect("non-empty");
        let (mono_index, mono_sim) = mono.nearest(&query).expect("non-empty");
        assert_eq!(label, mono.label(mono_index));
        assert_eq!(sim.to_bits(), mono_sim.to_bits());
        let sharded: Vec<(&str, u32)> = memory
            .top_k(&query, 9)
            .into_iter()
            .map(|(l, s)| (l, s.to_bits()))
            .collect();
        let monolithic: Vec<(&str, u32)> = mono
            .top_k(&query, 9)
            .into_iter()
            .map(|(i, s)| (mono.label(i), s.to_bits()))
            .collect();
        assert_eq!(sharded, monolithic);
    }

    #[test]
    fn empty_memory_lookups() {
        let memory = ShardedClassMemory::new(32, 4);
        let query = vec![0u64; 1];
        assert!(memory.nearest(&query).is_none());
        assert!(memory.top_k(&query, 3).is_empty());
        assert!(memory.is_empty());
        assert_eq!(memory.num_shards(), 4);
        assert!(memory.locate("nothing").is_none());
        assert!(memory.class_words("nothing").is_none());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedClassMemory::new(8, 0);
    }

    /// Export → import round-trips the exact shard assignment: the imported
    /// memory is structurally equal, scores bit-identically, and — because
    /// routing depends only on shard occupancies — sends the next insert to
    /// the same shard the original would.
    #[test]
    fn serde_round_trip_preserves_shard_assignment_and_scores() {
        let dim = 70; // ragged tail on purpose
        let (mut memory, protos) = fixture(dim, 9, 3);
        memory.remove_class("class004"); // unbalance the shards
        let json = serde_json::to_string_pretty(&memory).expect("serializes");
        let imported: ShardedClassMemory = serde_json::from_str(&json).expect("imports");
        assert_eq!(imported, memory);
        assert_eq!(
            imported.labels().collect::<Vec<_>>(),
            memory.labels().collect::<Vec<_>>()
        );
        let query = pack_signs(&protos[2]);
        let a: Vec<(&str, u32)> = memory
            .top_k(&query, 9)
            .into_iter()
            .map(|(l, s)| (l, s.to_bits()))
            .collect();
        let b: Vec<(&str, u32)> = imported
            .top_k(&query, 9)
            .into_iter()
            .map(|(l, s)| (l, s.to_bits()))
            .collect();
        assert_eq!(a, b);
        let mut imported = imported;
        let (shard_a, _) = memory.add_class("next", &protos[0]);
        let (shard_b, _) = imported.add_class("next", &protos[0]);
        assert_eq!(shard_a, shard_b, "routing must survive the round trip");
        assert_eq!(memory, imported);
    }

    #[test]
    fn serde_import_rejects_malformed_documents() {
        let (memory, _) = fixture(64, 4, 2);
        let good = serde_json::to_string_pretty(&memory).expect("serializes");

        // The *declared* dimensionality disagrees with every shard's (the
        // top-level `dim` serializes first, so only it is rewritten).
        let bad_dim = good.replacen("\"dim\": 64", "\"dim\": 65", 1);
        assert!(serde_json::from_str::<ShardedClassMemory>(&bad_dim).is_err());

        // No shards at all.
        let empty = "{\"dim\": 64, \"shards\": []}";
        assert!(serde_json::from_str::<ShardedClassMemory>(empty).is_err());

        // Zero dimensionality.
        let zero = "{\"dim\": 0, \"shards\": []}";
        assert!(serde_json::from_str::<ShardedClassMemory>(zero).is_err());

        // The same label in two shards: duplicate shard 0 wholesale.
        let value = serde::Serialize::to_value(&memory);
        let dup = match value {
            Value::Object(mut entries) => {
                for (key, v) in &mut entries {
                    if key == "shards" {
                        if let Value::Array(shards) = v {
                            let first = shards[0].clone();
                            shards.push(first);
                        }
                    }
                }
                Value::Object(entries)
            }
            _ => unreachable!("memories serialize as objects"),
        };
        let err = <ShardedClassMemory as serde::Deserialize>::from_value(&dup);
        assert!(err.is_err(), "duplicate labels across shards must fail");
    }
}
