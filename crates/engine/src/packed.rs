//! Packed class memory: all prototype hypervectors in one contiguous `u64`
//! word-matrix, scored with a word-tiled popcount sweep.
//!
//! # Layout and sign convention
//!
//! Row `r` of the memory occupies `words[r*wpr .. (r+1)*wpr]` where
//! `wpr = dim.div_ceil(64)`; bit `i` of a row lives at word `i / 64`, bit
//! position `i % 64`, and unused tail bits are kept at zero. A set bit
//! encodes a bipolar `-1`, a clear bit a `+1` — the same isomorphism the
//! `hdc` crate uses between its binary and bipolar hypervectors, so packing
//! is lossless for ±1 data.
//!
//! # Exactness
//!
//! For bipolar vectors the cosine is `dot / dim` with
//! `dot = dim − 2·hamming`, an integer of magnitude ≤ `dim`. The engine
//! computes exactly that expression, so its `f32` similarities are
//! **bit-identical** to the scalar `i8` dot-product path for every
//! `dim < 2^24`, and ties can be resolved on the integer Hamming distance
//! with no float comparisons.

use serde::{de, DeError, Deserialize, Serialize, Value};
use tensor::Matrix;

/// Number of `u64` words needed for one `dim`-bit row.
#[inline]
pub fn words_per_row(dim: usize) -> usize {
    dim.div_ceil(64)
}

/// Packs bipolar signs (`-1` → set bit, `+1` → clear bit) into `words`.
///
/// # Panics
///
/// Panics if `words.len() != words_per_row(signs.len())` or a sign is not
/// `±1`.
pub fn pack_signs_into(signs: &[i8], words: &mut [u64]) {
    assert_eq!(
        words.len(),
        words_per_row(signs.len()),
        "word buffer does not match the sign count"
    );
    words.fill(0);
    for (i, &s) in signs.iter().enumerate() {
        assert!(s == 1 || s == -1, "bipolar signs must be +1 or -1");
        if s < 0 {
            words[i / 64] |= 1u64 << (i % 64);
        }
    }
}

/// Packs bipolar signs into a fresh word row; see [`pack_signs_into`].
///
/// # Panics
///
/// Panics if `signs` is empty.
pub fn pack_signs(signs: &[i8]) -> Vec<u64> {
    assert!(!signs.is_empty(), "cannot pack an empty sign row");
    let mut words = vec![0u64; words_per_row(signs.len())];
    pack_signs_into(signs, &mut words);
    words
}

/// Packs the *signs* of a float row (`x < 0` → set bit) into a fresh word
/// row, matching `BipolarHypervector::from_sign_of` followed by the
/// binary conversion (ties at exactly zero resolve to `+1`, i.e. clear).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn pack_float_signs(xs: &[f32]) -> Vec<u64> {
    assert!(!xs.is_empty(), "cannot pack an empty float row");
    let mut words = vec![0u64; words_per_row(xs.len())];
    for (i, &x) in xs.iter().enumerate() {
        if x < 0.0 {
            words[i / 64] |= 1u64 << (i % 64);
        }
    }
    words
}

/// Clears any bits beyond `dim` in the final word of a packed row, so
/// popcount-based scores stay exact no matter where the row came from.
pub fn mask_tail_word(dim: usize, words: &mut [u64]) {
    let rem = dim % 64;
    if rem != 0 {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << rem) - 1;
        }
    }
}

/// The exact bipolar cosine for a `dim`-bit pair at Hamming distance
/// `hamming`: `(dim − 2·hamming) / dim`, evaluated so it is bit-identical to
/// the scalar `dot as f32 / dim as f32` path.
#[inline]
pub fn similarity_from_hamming(dim: usize, hamming: u64) -> f32 {
    (dim as i64 - 2 * hamming as i64) as f32 / dim as f32
}

/// Queries are processed in tiles of this many rows so each streamed class
/// row is reused from L1 across the whole tile.
pub(crate) const QUERY_TILE: usize = 8;

/// Word-strip width (2 KiB) of the innermost sweep; keeps one class strip
/// plus a full query tile strip resident in L1 for very large `dim`.
const WORD_STRIP: usize = 256;

/// A labelled associative class memory stored as one contiguous packed word
/// matrix, scored one-vs-all with a blocked popcount sweep.
///
/// This is the single hot path behind `hdc::ItemMemory` lookups, the
/// [`BatchScorer`](crate::BatchScorer) and the serving benchmark.
///
/// # Example
///
/// ```
/// use engine::{pack_signs, PackedClassMemory};
///
/// let mut memory = PackedClassMemory::new(4);
/// memory.insert_signs("up", &[1, 1, 1, 1]);
/// memory.insert_signs("down", &[-1, -1, -1, -1]);
/// let query = pack_signs(&[1, 1, 1, -1]);
/// let (index, sim) = memory.nearest(&query).expect("non-empty");
/// assert_eq!(memory.label(index), "up");
/// assert_eq!(sim, 0.5);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct PackedClassMemory {
    dim: usize,
    words_per_row: usize,
    labels: Vec<String>,
    words: Vec<u64>,
}

/// Hand-written (instead of derived) so documents whose word matrix
/// disagrees with the declared shape — or that smuggle set bits past `dim`,
/// which would skew every popcount — are rejected with a typed error.
impl Deserialize for PackedClassMemory {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = de::expect_object(value, "PackedClassMemory")?;
        let dim: usize = de::field(entries, "dim", "PackedClassMemory")?;
        let wpr: usize = de::field(entries, "words_per_row", "PackedClassMemory")?;
        let labels: Vec<String> = de::field(entries, "labels", "PackedClassMemory")?;
        let words: Vec<u64> = de::field(entries, "words", "PackedClassMemory")?;
        let type_err = |msg: String| DeError::new(msg).in_field("PackedClassMemory");
        if dim == 0 && !(wpr == 0 && labels.is_empty() && words.is_empty()) {
            return Err(type_err("non-empty memory with zero dimensionality".into()));
        }
        if dim > 0 && wpr != words_per_row(dim) {
            return Err(type_err(format!(
                "words_per_row {wpr} does not match dimensionality {dim}"
            )));
        }
        if words.len() != labels.len() * wpr {
            return Err(type_err(format!(
                "{} words do not match {} rows of {wpr} words",
                words.len(),
                labels.len()
            )));
        }
        let rem = dim % 64;
        if rem != 0 && wpr > 0 {
            for (row, chunk) in words.chunks_exact(wpr).enumerate() {
                if chunk[wpr - 1] >> rem != 0 {
                    return Err(type_err(format!(
                        "row {row} has set bits beyond the declared dimensionality"
                    )));
                }
            }
        }
        Ok(Self {
            dim,
            words_per_row: wpr,
            labels,
            words,
        })
    }
}

impl PackedClassMemory {
    /// Creates an empty memory for `dim`-bit prototypes.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            dim,
            words_per_row: words_per_row(dim),
            labels: Vec::new(),
            words: Vec::new(),
        }
    }

    /// Builds a memory from one float row per class by taking signs
    /// (`x < 0` → `-1`); lossless for ±1 matrices such as HDC class
    /// signatures.
    ///
    /// # Panics
    ///
    /// Panics if the label count differs from the row count or the matrix
    /// has zero columns.
    pub fn from_sign_matrix<L, S>(labels: L, matrix: &Matrix) -> Self
    where
        L: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut memory = Self::new(matrix.cols());
        let mut count = 0;
        for (r, label) in labels.into_iter().enumerate() {
            assert!(r < matrix.rows(), "more labels than matrix rows");
            let words = pack_float_signs(matrix.row(r));
            memory.insert_packed(label, &words);
            count += 1;
        }
        assert_eq!(count, matrix.rows(), "fewer labels than matrix rows");
        memory
    }

    /// Number of stored prototypes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if no prototypes are stored.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Dimensionality of the stored prototypes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Packed words per prototype row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The stored labels in insertion order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.labels.iter().map(String::as_str)
    }

    /// The label of row `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn label(&self, index: usize) -> &str {
        &self.labels[index]
    }

    /// Position of `label`, if stored.
    pub fn position(&self, label: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == label)
    }

    /// The packed words of row `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn row_words(&self, index: usize) -> &[u64] {
        assert!(index < self.len(), "row index out of range");
        &self.words[index * self.words_per_row..(index + 1) * self.words_per_row]
    }

    /// Inserts a bipolar prototype given as ±1 signs, replacing any existing
    /// prototype with the same label. Returns the row index and whether a
    /// row was replaced.
    ///
    /// # Panics
    ///
    /// Panics if `signs.len() != self.dim()`.
    pub fn insert_signs(&mut self, label: impl Into<String>, signs: &[i8]) -> (usize, bool) {
        assert_eq!(
            signs.len(),
            self.dim,
            "prototype dimensionality must match the memory"
        );
        let words = pack_signs(signs);
        self.insert_packed(label, &words)
    }

    /// Inserts an already-packed prototype row; see
    /// [`PackedClassMemory::insert_signs`]. Bits beyond `dim` in the final
    /// word are cleared on insertion, so rows packed elsewhere cannot smuggle
    /// tail bits into the popcount (which would push similarities outside
    /// `[-1, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != self.words_per_row()` or the memory was
    /// `Default`-constructed (zero-dimensional).
    pub fn insert_packed(&mut self, label: impl Into<String>, words: &[u64]) -> (usize, bool) {
        assert!(
            self.dim > 0,
            "use PackedClassMemory::new to construct a usable memory"
        );
        assert_eq!(
            words.len(),
            self.words_per_row,
            "packed row width must match the memory"
        );
        let label = label.into();
        let row_range = if let Some(pos) = self.position(&label) {
            self.words[pos * self.words_per_row..(pos + 1) * self.words_per_row]
                .copy_from_slice(words);
            (pos, true)
        } else {
            self.labels.push(label);
            self.words.extend_from_slice(words);
            (self.labels.len() - 1, false)
        };
        let (pos, _) = row_range;
        mask_tail_word(
            self.dim,
            &mut self.words[pos * self.words_per_row..(pos + 1) * self.words_per_row],
        );
        row_range
    }

    /// Memory footprint of the packed word matrix in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Hamming distance between a packed query row and stored row `index`.
    #[inline]
    fn row_hamming(&self, index: usize, query: &[u64]) -> u64 {
        self.row_words(index)
            .iter()
            .zip(query)
            .map(|(a, b)| u64::from((a ^ b).count_ones()))
            .sum()
    }

    /// One-vs-all similarities of a packed query against every stored
    /// prototype, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.words_per_row()`.
    pub fn scores(&self, query: &[u64]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len()];
        self.scores_block_into(query, 1, &mut out);
        out
    }

    /// Scores `n_queries` packed query rows (concatenated in `queries`)
    /// against every stored prototype, writing a row-major
    /// `n_queries × len` block into `out`.
    ///
    /// The sweep is tiled twice for cache locality: queries in tiles of
    /// `QUERY_TILE` rows so each class row streams from memory once per
    /// tile, and words in strips of 2 KiB so a strip of every tile row stays
    /// in L1 even at very large `dim`.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths disagree with `n_queries` and the memory
    /// shape.
    pub fn scores_block_into(&self, queries: &[u64], n_queries: usize, out: &mut [f32]) {
        let wpr = self.words_per_row;
        let classes = self.len();
        assert_eq!(queries.len(), n_queries * wpr, "query buffer length");
        assert_eq!(out.len(), n_queries * classes, "output buffer length");
        if wpr == 0 {
            // Default-constructed (zero-dimensional) memory: nothing stored,
            // nothing to score, and `chunks(0)` below would panic.
            return;
        }
        for (tile_index, tile) in queries.chunks(QUERY_TILE * wpr).enumerate() {
            let tile_rows = tile.len() / wpr;
            let out_base = tile_index * QUERY_TILE;
            for class in 0..classes {
                let class_row = self.row_words(class);
                let mut acc = [0u64; QUERY_TILE];
                let mut strip_start = 0;
                while strip_start < wpr {
                    let strip_end = (strip_start + WORD_STRIP).min(wpr);
                    let class_strip = &class_row[strip_start..strip_end];
                    for (q, acc_q) in acc.iter_mut().enumerate().take(tile_rows) {
                        let query_strip = &tile[q * wpr + strip_start..q * wpr + strip_end];
                        let mut hamming = 0u64;
                        for (a, b) in class_strip.iter().zip(query_strip) {
                            hamming += u64::from((a ^ b).count_ones());
                        }
                        *acc_q += hamming;
                    }
                    strip_start = strip_end;
                }
                for (q, &hamming) in acc.iter().enumerate().take(tile_rows) {
                    out[(out_base + q) * classes + class] =
                        similarity_from_hamming(self.dim, hamming);
                }
            }
        }
    }

    /// Removes the prototype stored under `label`, splicing its word row out
    /// of the packed matrix and shifting later rows down. Returns the removed
    /// row index, or `None` if the label is not stored.
    ///
    /// This repacks only *this* memory — an `O(rows · words_per_row)` move of
    /// the tail of the word matrix — which is what lets a sharded memory
    /// repack a single touched shard instead of rebuilding the world.
    pub fn remove(&mut self, label: &str) -> Option<usize> {
        let pos = self.position(label)?;
        self.labels.remove(pos);
        self.words
            .drain(pos * self.words_per_row..(pos + 1) * self.words_per_row);
        Some(pos)
    }

    /// The most similar stored prototype to a packed query, as
    /// `(row index, similarity)`; ties on similarity resolve to the
    /// lexicographically smallest label so results are deterministic and
    /// independent of insertion order.
    ///
    /// Returns `None` if the memory is empty.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.words_per_row()`.
    pub fn nearest(&self, query: &[u64]) -> Option<(usize, f32)> {
        self.nearest_hamming(query)
            .map(|(index, hamming)| (index, similarity_from_hamming(self.dim, hamming)))
    }

    /// Integer-exact variant of [`PackedClassMemory::nearest`]: the winning
    /// row together with its raw Hamming distance. Downstream mergers (the
    /// sharded memory) compare candidates on this integer — never on the
    /// derived `f32` similarity — so cross-shard ordering is exactly the
    /// monolithic `(hamming, label)` order even when distinct Hamming
    /// distances would round to the same `f32`.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.words_per_row()`.
    pub fn nearest_hamming(&self, query: &[u64]) -> Option<(usize, u64)> {
        assert_eq!(query.len(), self.words_per_row, "query width");
        let mut best: Option<(usize, u64)> = None;
        for index in 0..self.len() {
            let hamming = self.row_hamming(index, query);
            let better = match best {
                None => true,
                Some((best_index, best_hamming)) => {
                    hamming < best_hamming
                        || (hamming == best_hamming && self.labels[index] < self.labels[best_index])
                }
            };
            if better {
                best = Some((index, hamming));
            }
        }
        best
    }

    /// The `k` most similar stored prototypes to a packed query, most
    /// similar first; ties on similarity are ordered by label.
    ///
    /// **Truncation contract:** when `k` exceeds the number of stored
    /// prototypes the result simply contains every prototype — `min(k,
    /// self.len())` entries, never an error and never padding. `k == 0`
    /// returns an empty vector.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.words_per_row()`.
    pub fn top_k(&self, query: &[u64], k: usize) -> Vec<(usize, f32)> {
        self.top_k_hamming(query, k)
            .into_iter()
            .map(|(index, hamming)| (index, similarity_from_hamming(self.dim, hamming)))
            .collect()
    }

    /// Integer-exact variant of [`PackedClassMemory::top_k`]: `(row index,
    /// Hamming distance)` candidates ordered by `(hamming, label)` ascending,
    /// truncated to `min(k, self.len())` entries. This is the primitive a
    /// sharded memory merges across shards.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.words_per_row()`.
    pub fn top_k_hamming(&self, query: &[u64], k: usize) -> Vec<(usize, u64)> {
        assert_eq!(query.len(), self.words_per_row, "query width");
        let mut scored: Vec<(usize, u64)> = (0..self.len())
            .map(|index| (index, self.row_hamming(index, query)))
            .collect();
        scored.sort_by(|a, b| {
            a.1.cmp(&b.1)
                .then_with(|| self.labels[a.0].cmp(&self.labels[b.0]))
        });
        scored.truncate(k);
        scored
    }
}

/// The packed backend of the unified [`Scorer`](crate::Scorer) contract:
/// queries are packed word rows, batches are [`PackedQueryBatch`](crate::PackedQueryBatch)es, and the
/// trait lookups return `(label, similarity)` by resolving the inherent
/// index-based lookups through [`PackedClassMemory::label`]. Ordering,
/// truncation and tie-break follow the inherent methods exactly.
impl crate::Scorer for PackedClassMemory {
    type Query = [u64];
    type Batch = crate::PackedQueryBatch;

    fn dim(&self) -> usize {
        self.dim
    }

    fn num_classes(&self) -> usize {
        self.len()
    }

    fn score_batch(&self, batch: &Self::Batch) -> Matrix {
        assert_eq!(
            batch.dim(),
            self.dim,
            "query batch dimensionality must match the class memory"
        );
        let classes = self.len();
        if batch.is_empty() {
            return Matrix::zeros(0, classes);
        }
        let mut out = vec![0.0f32; batch.len() * classes];
        self.scores_block_into(batch.rows(0..batch.len()), batch.len(), &mut out);
        Matrix::from_vec(batch.len(), classes, out)
    }

    fn nearest(&self, query: &Self::Query) -> Option<(&str, f32)> {
        PackedClassMemory::nearest(self, query).map(|(index, sim)| (self.label(index), sim))
    }

    fn top_k(&self, query: &Self::Query, k: usize) -> Vec<(&str, f32)> {
        PackedClassMemory::top_k(self, query, k)
            .into_iter()
            .map(|(index, sim)| (self.label(index), sim))
            .collect()
    }

    fn nearest_batch(&self, batch: &Self::Batch) -> Vec<(&str, f32)> {
        assert!(
            batch.is_empty() || !self.is_empty(),
            "nearest_batch requires a non-empty class memory"
        );
        (0..batch.len())
            .map(|q| {
                crate::Scorer::nearest(self, batch.row(q)).expect("non-empty memory checked above")
            })
            .collect()
    }

    fn topk_batch(&self, batch: &Self::Batch, k: usize) -> Vec<Vec<(&str, f32)>> {
        (0..batch.len())
            .map(|q| crate::Scorer::top_k(self, batch.row(q), k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signs(bits: &[i8]) -> Vec<i8> {
        bits.to_vec()
    }

    #[test]
    fn packing_roundtrip_and_tail_masking() {
        let s: Vec<i8> = (0..70).map(|i| if i % 3 == 0 { -1 } else { 1 }).collect();
        let words = pack_signs(&s);
        assert_eq!(words.len(), 2);
        // Tail bits beyond 70 stay clear.
        assert_eq!(words[1] >> 6, 0);
        let ones: u32 = words.iter().map(|w| w.count_ones()).sum();
        assert_eq!(ones as usize, s.iter().filter(|&&v| v == -1).count());
    }

    #[test]
    fn float_sign_packing_matches_sign_rule() {
        let words = pack_float_signs(&[0.5, -0.1, 0.0, -7.0]);
        assert_eq!(words[0] & 0b1111, 0b1010);
    }

    #[test]
    fn similarity_is_exact_integer_cosine() {
        assert_eq!(similarity_from_hamming(4, 0), 1.0);
        assert_eq!(similarity_from_hamming(4, 2), 0.0);
        assert_eq!(similarity_from_hamming(4, 4), -1.0);
        // Matches dot/d for a dim that is not a power of two.
        let dim = 100usize;
        let h = 33u64;
        let dot = dim as i64 - 2 * h as i64;
        assert_eq!(similarity_from_hamming(dim, h), dot as f32 / dim as f32);
    }

    #[test]
    fn insert_replace_and_lookup() {
        let mut mem = PackedClassMemory::new(4);
        let (i0, replaced) = mem.insert_signs("a", &signs(&[1, 1, 1, 1]));
        assert_eq!((i0, replaced), (0, false));
        let (i1, replaced) = mem.insert_signs("b", &signs(&[-1, -1, -1, -1]));
        assert_eq!((i1, replaced), (1, false));
        let (i2, replaced) = mem.insert_signs("a", &signs(&[-1, 1, 1, 1]));
        assert_eq!((i2, replaced), (0, true));
        assert_eq!(mem.len(), 2);
        assert_eq!(mem.position("b"), Some(1));
        assert_eq!(mem.label(0), "a");
        assert_eq!(mem.row_words(0), &pack_signs(&[-1, 1, 1, 1])[..]);
        assert_eq!(mem.memory_bytes(), 16);
    }

    #[test]
    fn nearest_breaks_ties_by_label() {
        let mut mem = PackedClassMemory::new(4);
        // Two prototypes equidistant from the query, inserted in reverse
        // label order.
        mem.insert_signs("zeta", &signs(&[1, 1, -1, -1]));
        mem.insert_signs("alpha", &signs(&[-1, -1, 1, 1]));
        let query = pack_signs(&signs(&[1, -1, 1, -1]));
        let (index, sim) = mem.nearest(&query).expect("non-empty");
        assert_eq!(mem.label(index), "alpha");
        assert_eq!(sim, 0.0);
        let top = mem.top_k(&query, 2);
        assert_eq!(mem.label(top[0].0), "alpha");
        assert_eq!(mem.label(top[1].0), "zeta");
    }

    #[test]
    fn insert_packed_masks_smuggled_tail_bits() {
        // A dim-3 row arriving with all 64 bits set must be trimmed to the
        // 3 live bits, keeping similarities inside [-1, 1].
        let mut mem = PackedClassMemory::new(3);
        mem.insert_packed("dirty", &[u64::MAX]);
        assert_eq!(mem.row_words(0), &[0b111u64][..]);
        let sims = mem.scores(&[0u64]);
        assert_eq!(sims, vec![-1.0]);
        // A properly packed all-negative query matches the masked row
        // exactly (query-side masking is the packing helpers' job; see
        // `mask_tail_word` and `PackedQueryBatch::push_packed`).
        let (_, sim) = mem.nearest(&pack_signs(&[-1, -1, -1])).expect("non-empty");
        assert_eq!(sim, 1.0);
        let mut dirty_query = [u64::MAX];
        mask_tail_word(3, &mut dirty_query);
        assert_eq!(mem.nearest(&dirty_query).expect("non-empty").1, 1.0);
    }

    #[test]
    #[should_panic(expected = "use PackedClassMemory::new")]
    fn default_memory_rejects_inserts() {
        let mut mem = PackedClassMemory::default();
        mem.insert_packed("a", &[]);
    }

    #[test]
    fn default_memory_lookups_are_empty_not_nan() {
        let mem = PackedClassMemory::default();
        assert!(mem.is_empty());
        assert!(mem.nearest(&[]).is_none());
        assert!(mem.top_k(&[], 3).is_empty());
        assert!(mem.scores(&[]).is_empty());
    }

    #[test]
    fn empty_memory_and_bounded_top_k() {
        let mem = PackedClassMemory::new(64);
        let query = vec![0u64; 1];
        assert!(mem.nearest(&query).is_none());
        assert!(mem.top_k(&query, 3).is_empty());
        assert!(mem.is_empty());
    }

    /// Pins the truncation contract: `k` past the stored prototype count
    /// returns everything (no error, no padding), and `k == 0` is empty.
    #[test]
    fn top_k_truncates_to_stored_count() {
        let mut mem = PackedClassMemory::new(8);
        mem.insert_signs("a", &[1; 8]);
        mem.insert_signs("b", &[-1; 8]);
        let query = pack_signs(&[1; 8]);
        assert_eq!(mem.top_k(&query, 100).len(), 2);
        assert_eq!(mem.top_k(&query, 2).len(), 2);
        assert_eq!(mem.top_k(&query, 1).len(), 1);
        assert!(mem.top_k(&query, 0).is_empty());
        assert_eq!(mem.top_k_hamming(&query, 100).len(), 2);
        // The oversized ask returns the same prefix ordering as the exact ask.
        assert_eq!(mem.top_k(&query, 100), mem.top_k(&query, 2));
    }

    #[test]
    fn remove_splices_row_and_keeps_lookups_exact() {
        // Ragged dim (2 words per row); distinct periods keep every row
        // unique so no cross-row ties confuse the lookups.
        let mut mem = PackedClassMemory::new(70);
        let rows: Vec<Vec<i8>> = (0..4usize)
            .map(|r| {
                (0..70)
                    .map(|i: usize| if (i + r).is_multiple_of(r + 2) { -1 } else { 1 })
                    .collect()
            })
            .collect();
        for (r, row) in rows.iter().enumerate() {
            mem.insert_signs(format!("c{r}"), row);
        }
        assert_eq!(mem.remove("c1"), Some(1));
        assert_eq!(mem.remove("c1"), None);
        assert_eq!(mem.len(), 3);
        let labels: Vec<&str> = mem.labels().collect();
        assert_eq!(labels, vec!["c0", "c2", "c3"]);
        // Later rows shifted down intact: lookups still score exactly.
        for (r, row) in rows.iter().enumerate() {
            if r == 1 {
                continue;
            }
            let (index, sim) = mem.nearest(&pack_signs(row)).expect("non-empty");
            assert_eq!(mem.label(index), format!("c{r}"));
            assert_eq!(sim, 1.0);
        }
        // Word matrix stays dense: 3 rows × 2 words.
        assert_eq!(mem.memory_bytes(), 3 * 2 * 8);
    }

    #[test]
    fn from_sign_matrix_binarizes_rows() {
        let matrix = Matrix::from_rows(&[vec![1.0, -2.0, 3.0], vec![-0.5, 0.5, -0.5]]);
        let mem = PackedClassMemory::from_sign_matrix(["p", "n"], &matrix);
        assert_eq!(mem.len(), 2);
        assert_eq!(mem.dim(), 3);
        assert_eq!(mem.row_words(0), &pack_signs(&[1, -1, 1])[..]);
        assert_eq!(mem.row_words(1), &pack_signs(&[-1, 1, -1])[..]);
    }

    #[test]
    fn block_scores_match_single_query_scores() {
        let dim = 130; // ragged: 3 words, 6 tail bits
        let mut mem = PackedClassMemory::new(dim);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next_sign = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if state >> 63 == 0 {
                1i8
            } else {
                -1i8
            }
        };
        for c in 0..17 {
            let row: Vec<i8> = (0..dim).map(|_| next_sign()).collect();
            mem.insert_signs(format!("c{c:02}"), &row);
        }
        let queries: Vec<Vec<i8>> = (0..11)
            .map(|_| (0..dim).map(|_| next_sign()).collect())
            .collect();
        let mut packed = Vec::new();
        for q in &queries {
            packed.extend_from_slice(&pack_signs(q));
        }
        let mut block = vec![0.0f32; queries.len() * mem.len()];
        mem.scores_block_into(&packed, queries.len(), &mut block);
        for (qi, q) in queries.iter().enumerate() {
            let single = mem.scores(&pack_signs(q));
            assert_eq!(&block[qi * mem.len()..(qi + 1) * mem.len()], &single[..]);
        }
    }
}
