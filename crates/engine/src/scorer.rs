//! The unified scoring interface over every class-memory backend.
//!
//! PR 2–4 grew three bit-identical scoring backends — the row-parallel
//! float path ([`DenseClassMemory`](crate::DenseClassMemory)), the packed
//! popcount matrix ([`PackedClassMemory`](crate::PackedClassMemory)) and the
//! copy-on-write sharded memory
//! ([`ShardedClassMemory`](crate::ShardedClassMemory)) — each with its own
//! ad-hoc call surface. [`Scorer`] is the one trait they all implement, so
//! call sites (`hdc::ItemMemory`, the DAP/ESZSL baselines, the serving
//! layer, and generic parity tests) can be written once against the
//! contract instead of three times against the backends.
//!
//! # Contract
//!
//! Every implementation promises:
//!
//! * **Determinism / tie-break** — candidates are ordered by similarity
//!   descending; candidates with *equal* similarity are ordered by label
//!   ascending (lexicographically smallest label wins), so results never
//!   depend on insertion order, shard layout or thread count.
//! * **Truncation** — [`Scorer::top_k`] returns `min(k, num_classes)`
//!   entries; `k == 0` returns an empty vector; `k` past the stored count
//!   returns every class, never an error and never padding.
//! * **Batch consistency** — [`Scorer::nearest_batch`] /
//!   [`Scorer::topk_batch`] return exactly what per-query
//!   [`Scorer::nearest`] / [`Scorer::top_k`] calls would, and row `q` of
//!   [`Scorer::score_batch`] holds query `q`'s one-vs-all similarities in
//!   the backend's stored-class order.
//! * **Exactness** — results are bit-identical to the scalar kernel the
//!   backend replaces, for every thread count (the engine-wide contract;
//!   pinned by `tests/parity.rs`, `tests/sharded_parity.rs` and the generic
//!   `tests/scorer_contract.rs`).
//!
//! The query representation differs per backend — packed `u64` words for the
//! popcount backends, `f32` rows for the dense one — so it is an associated
//! type rather than a fixed parameter.

use tensor::Matrix;

/// A labelled class memory that scores queries one-vs-all; see the module
/// docs for the ordering, truncation and exactness contract.
///
/// `Send + Sync` is a supertrait: scorers are built to be shared behind the
/// serving layer's immutable snapshots.
pub trait Scorer: Send + Sync {
    /// Borrowed single-query representation: `[u64]` packed words for the
    /// popcount backends, `[f32]` rows for the dense backend.
    type Query: ?Sized;

    /// Owned batch representation:
    /// [`PackedQueryBatch`](crate::PackedQueryBatch) for the popcount
    /// backends, [`Matrix`] (one query per row) for the dense backend.
    type Batch;

    /// Dimensionality of the stored class prototypes.
    fn dim(&self) -> usize;

    /// Number of stored classes.
    fn num_classes(&self) -> usize;

    /// Returns `true` when no classes are stored.
    fn is_empty(&self) -> bool {
        self.num_classes() == 0
    }

    /// One-vs-all similarity matrix of the whole batch: row `q` holds query
    /// `q`'s similarity against every stored class, in the backend's stored
    /// order (insertion order for the dense and packed backends, shard-major
    /// order for the sharded one).
    fn score_batch(&self, batch: &Self::Batch) -> Matrix;

    /// The most similar stored class as `(label, similarity)`, or `None`
    /// for an empty memory. Ties resolve to the lexicographically smallest
    /// label.
    fn nearest(&self, query: &Self::Query) -> Option<(&str, f32)>;

    /// The `k` most similar stored classes, most similar first, with the
    /// pinned tie-break and `min(k, num_classes)` truncation contract.
    fn top_k(&self, query: &Self::Query, k: usize) -> Vec<(&str, f32)>;

    /// [`Scorer::nearest`] for every query in the batch, in batch order.
    ///
    /// # Panics
    ///
    /// Implementations may panic when the batch is non-empty but the memory
    /// is (there is no nearest class to return).
    fn nearest_batch(&self, batch: &Self::Batch) -> Vec<(&str, f32)>;

    /// [`Scorer::top_k`] for every query in the batch, in batch order.
    fn topk_batch(&self, batch: &Self::Batch, k: usize) -> Vec<Vec<(&str, f32)>>;
}
