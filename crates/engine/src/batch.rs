//! Batched scoring: packed query batches fanned out over a [`minipool::Pool`].

use crate::packed::{
    mask_tail_word, pack_float_signs, pack_signs_into, words_per_row, PackedClassMemory, QUERY_TILE,
};
use minipool::Pool;
use tensor::Matrix;

/// A batch of packed query hypervectors stored contiguously, one word row
/// per query (same layout and sign convention as [`PackedClassMemory`]).
///
/// # Example
///
/// ```
/// use engine::PackedQueryBatch;
///
/// let mut batch = PackedQueryBatch::new(3);
/// batch.push_signs(&[1, -1, 1]);
/// batch.push_signs(&[-1, -1, -1]);
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PackedQueryBatch {
    dim: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl PackedQueryBatch {
    /// Creates an empty batch of `dim`-bit queries.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            dim,
            words_per_row: words_per_row(dim),
            words: Vec::new(),
        }
    }

    /// Creates an empty batch with room for `capacity` queries.
    pub fn with_capacity(dim: usize, capacity: usize) -> Self {
        let mut batch = Self::new(dim);
        batch.words.reserve(capacity * batch.words_per_row);
        batch
    }

    /// Packs one batch row per matrix row by taking float signs (`x < 0` →
    /// `-1`); lossless for ±1 matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has zero columns.
    pub fn from_sign_matrix(matrix: &Matrix) -> Self {
        let mut batch = Self::with_capacity(matrix.cols(), matrix.rows());
        for r in 0..matrix.rows() {
            batch
                .words
                .extend_from_slice(&pack_float_signs(matrix.row(r)));
        }
        batch
    }

    /// Appends a bipolar query given as ±1 signs.
    ///
    /// # Panics
    ///
    /// Panics if `signs.len() != self.dim()`.
    pub fn push_signs(&mut self, signs: &[i8]) {
        assert_eq!(
            signs.len(),
            self.dim,
            "query dimensionality must match the batch"
        );
        let start = self.words.len();
        self.words.resize(start + self.words_per_row, 0);
        pack_signs_into(signs, &mut self.words[start..]);
    }

    /// Appends an already-packed query row. Bits beyond `dim` in the final
    /// word are cleared, so rows packed elsewhere cannot skew the popcount.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != self.words_per_row()`.
    pub fn push_packed(&mut self, words: &[u64]) {
        assert_eq!(
            words.len(),
            self.words_per_row,
            "packed row width must match the batch"
        );
        let start = self.words.len();
        self.words.extend_from_slice(words);
        mask_tail_word(self.dim, &mut self.words[start..]);
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        // `words_per_row` is only 0 for a `Default`-constructed batch.
        self.words
            .len()
            .checked_div(self.words_per_row)
            .unwrap_or(0)
    }

    /// Returns `true` if the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Dimensionality of the queries.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Packed words per query row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The packed words of query `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn row(&self, index: usize) -> &[u64] {
        assert!(index < self.len(), "query index out of range");
        &self.words[index * self.words_per_row..(index + 1) * self.words_per_row]
    }

    /// The packed words of a contiguous query range.
    pub(crate) fn rows(&self, range: std::ops::Range<usize>) -> &[u64] {
        &self.words[range.start * self.words_per_row..range.end * self.words_per_row]
    }
}

/// Scores packed query batches against a [`PackedClassMemory`], chunking the
/// batch across a [`Pool`] of scoped threads.
///
/// Chunk boundaries depend only on the batch size and thread count, and each
/// query's scores are computed independently with the same integer popcount
/// kernel, so results are **bit-identical for every thread count** —
/// including the single-query scalar-free path.
///
/// # Example
///
/// ```
/// use engine::{BatchScorer, PackedClassMemory, PackedQueryBatch};
///
/// let mut memory = PackedClassMemory::new(4);
/// memory.insert_signs("a", &[1, 1, 1, 1]);
/// memory.insert_signs("b", &[-1, -1, -1, -1]);
/// let mut batch = PackedQueryBatch::new(4);
/// batch.push_signs(&[1, 1, 1, -1]);
/// let scorer = BatchScorer::new(&memory).with_threads(2);
/// let logits = scorer.score_batch(&batch);
/// assert_eq!(logits.shape(), (1, 2));
/// assert_eq!(logits.get(0, 0), 0.5);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchScorer<'m> {
    memory: &'m PackedClassMemory,
    pool: Pool,
}

impl<'m> BatchScorer<'m> {
    /// Creates a scorer over `memory` sized to the machine's hardware
    /// threads.
    pub fn new(memory: &'m PackedClassMemory) -> Self {
        Self {
            memory,
            pool: Pool::auto(),
        }
    }

    /// Uses exactly `threads` threads (clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = Pool::new(threads);
        self
    }

    /// Uses the given pool.
    #[must_use]
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// The backing class memory.
    pub fn memory(&self) -> &PackedClassMemory {
        self.memory
    }

    /// Number of threads a batch is chunked across.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// One-vs-all similarity logits for every query: a
    /// `batch.len() × memory.len()` matrix in `[-1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `batch.dim() != memory.dim()`.
    pub fn score_batch(&self, batch: &PackedQueryBatch) -> Matrix {
        self.check_dims(batch);
        let classes = self.memory.len();
        if batch.is_empty() {
            return Matrix::zeros(0, classes);
        }
        let blocks = self.pool.map_chunks(batch.len(), |range| {
            let mut out = vec![0.0f32; range.len() * classes];
            self.memory
                .scores_block_into(batch.rows(range.clone()), range.len(), &mut out);
            out
        });
        let mut data = Vec::with_capacity(batch.len() * classes);
        for block in blocks {
            data.extend_from_slice(&block);
        }
        Matrix::from_vec(batch.len(), classes, data)
    }

    /// The nearest class of every query, as `(row index, similarity)` pairs;
    /// ties resolve to the lexicographically smallest label, exactly like
    /// [`PackedClassMemory::nearest`].
    ///
    /// Each chunk runs the same cache-tiled block kernel as
    /// [`BatchScorer::score_batch`] and takes the argmax per row, so class
    /// rows are streamed once per query tile instead of once per query.
    /// Similarity is a monotone bijection of the integer Hamming distance
    /// (see [`crate::similarity_from_hamming`]), so the float argmax with
    /// label tie-break selects exactly the row the integer path would.
    ///
    /// # Panics
    ///
    /// Panics if the memory is empty or `batch.dim() != memory.dim()`.
    pub fn nearest_batch(&self, batch: &PackedQueryBatch) -> Vec<(usize, f32)> {
        assert!(
            !self.memory.is_empty(),
            "nearest_batch requires a non-empty class memory"
        );
        self.check_dims(batch);
        let classes = self.memory.len();
        let blocks = self.pool.map_chunks(batch.len(), |range| {
            let mut results = Vec::with_capacity(range.len());
            let mut scores = vec![0.0f32; QUERY_TILE * classes];
            let mut start = range.start;
            while start < range.end {
                let end = (start + QUERY_TILE).min(range.end);
                let rows = end - start;
                let block = &mut scores[..rows * classes];
                self.memory
                    .scores_block_into(batch.rows(start..end), rows, block);
                for row in block.chunks_exact(classes) {
                    let mut best = 0usize;
                    for (c, &sim) in row.iter().enumerate().skip(1) {
                        if sim > row[best]
                            || (sim == row[best] && self.memory.label(c) < self.memory.label(best))
                        {
                            best = c;
                        }
                    }
                    results.push((best, row[best]));
                }
                start = end;
            }
            results
        });
        blocks.into_iter().flatten().collect()
    }

    /// The `k` most similar classes of every query, most similar first, with
    /// the same deterministic tie ordering — and truncation contract
    /// (`min(k, classes)` entries per query, `k == 0` empty) — as
    /// [`PackedClassMemory::top_k`].
    ///
    /// # Panics
    ///
    /// Panics if `batch.dim() != memory.dim()`.
    pub fn topk_batch(&self, batch: &PackedQueryBatch, k: usize) -> Vec<Vec<(usize, f32)>> {
        self.check_dims(batch);
        let blocks = self.pool.map_chunks(batch.len(), |range| {
            range
                .map(|q| self.memory.top_k(batch.row(q), k))
                .collect::<Vec<_>>()
        });
        blocks.into_iter().flatten().collect()
    }

    fn check_dims(&self, batch: &PackedQueryBatch) {
        assert_eq!(
            batch.dim(),
            self.memory.dim(),
            "query batch dimensionality must match the class memory"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::pack_signs;

    fn lcg_signs(state: &mut u64, dim: usize) -> Vec<i8> {
        (0..dim)
            .map(|_| {
                *state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if *state >> 63 == 0 {
                    1
                } else {
                    -1
                }
            })
            .collect()
    }

    fn fixture(
        dim: usize,
        classes: usize,
        queries: usize,
    ) -> (PackedClassMemory, PackedQueryBatch) {
        let mut state = 7u64;
        let mut memory = PackedClassMemory::new(dim);
        for c in 0..classes {
            memory.insert_signs(format!("class{c:03}"), &lcg_signs(&mut state, dim));
        }
        let mut batch = PackedQueryBatch::new(dim);
        for _ in 0..queries {
            batch.push_signs(&lcg_signs(&mut state, dim));
        }
        (memory, batch)
    }

    #[test]
    fn score_batch_matches_per_query_scores() {
        let (memory, batch) = fixture(200, 13, 9);
        let logits = BatchScorer::new(&memory)
            .with_threads(3)
            .score_batch(&batch);
        assert_eq!(logits.shape(), (9, 13));
        for q in 0..batch.len() {
            assert_eq!(logits.row(q), &memory.scores(batch.row(q))[..]);
        }
    }

    #[test]
    fn thread_count_invariance() {
        let (memory, batch) = fixture(321, 21, 17);
        let reference = BatchScorer::new(&memory)
            .with_threads(1)
            .score_batch(&batch);
        for threads in [2usize, 4, 9] {
            let logits = BatchScorer::new(&memory)
                .with_threads(threads)
                .score_batch(&batch);
            assert_eq!(logits.as_slice(), reference.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn nearest_and_topk_agree_with_memory() {
        let (memory, batch) = fixture(96, 11, 8);
        let scorer = BatchScorer::new(&memory).with_threads(2);
        let nearest = scorer.nearest_batch(&batch);
        let topk = scorer.topk_batch(&batch, 3);
        assert_eq!(nearest.len(), 8);
        for q in 0..batch.len() {
            assert_eq!(nearest[q], memory.nearest(batch.row(q)).expect("non-empty"));
            assert_eq!(topk[q], memory.top_k(batch.row(q), 3));
            assert_eq!(nearest[q], topk[q][0]);
        }
    }

    #[test]
    fn empty_batch_scores_to_zero_rows() {
        let (memory, _) = fixture(64, 4, 0);
        let batch = PackedQueryBatch::new(64);
        let scorer = BatchScorer::new(&memory);
        // The documented batch.len() × memory.len() shape holds even for an
        // empty batch.
        assert_eq!(scorer.score_batch(&batch).shape(), (0, 4));
        assert!(scorer.nearest_batch(&batch).is_empty());
        assert!(scorer.topk_batch(&batch, 2).is_empty());
    }

    #[test]
    fn push_packed_masks_smuggled_tail_bits() {
        let mut memory = PackedClassMemory::new(3);
        memory.insert_signs("all_neg", &[-1, -1, -1]);
        let mut batch = PackedQueryBatch::new(3);
        batch.push_packed(&[u64::MAX]);
        assert_eq!(batch.row(0), &[0b111u64][..]);
        let logits = BatchScorer::new(&memory).score_batch(&batch);
        assert_eq!(logits.get(0, 0), 1.0);
    }

    #[test]
    fn batch_from_sign_matrix_packs_rows() {
        let m = Matrix::from_rows(&[vec![1.0, -1.0, 1.0], vec![-1.0, -1.0, 1.0]]);
        let batch = PackedQueryBatch::from_sign_matrix(&m);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.dim(), 3);
        assert_eq!(batch.row(0), &pack_signs(&[1, -1, 1])[..]);
        assert_eq!(batch.row(1), &pack_signs(&[-1, -1, 1])[..]);
    }
}
