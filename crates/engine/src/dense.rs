//! Parallel dense scoring for the float inference paths (ZSC class logits,
//! DAP cosine scores, ESZSL compatibility scores).
//!
//! Every function here splits the *query* operand into contiguous row chunks
//! and applies the exact same scalar kernels (`normalize_rows`, `matmul`,
//! `matmul_nt`) each chunk would see in the serial code. Row results never
//! depend on other rows, so the stitched output is **bit-identical** to the
//! serial result for every thread count — the inference rewiring in
//! `hdc_zsc` and `baselines` relies on this to keep accuracies unchanged to
//! the last bit.

use minipool::Pool;
use tensor::Matrix;

/// Minimum row norm treated as non-zero, matching both
/// `nn::CosineSimilarity` and `tensor::ops::cosine_similarity_matrix`.
pub const COSINE_EPS: f32 = 1e-12;

/// Applies `f` to contiguous row chunks of `a` and vertically stitches the
/// results in chunk order.
///
/// With a one-thread pool (or a matrix of fewer than two rows) this is
/// exactly `f(a)` with no copies.
///
/// # Panics
///
/// Panics if `f` returns chunks of differing widths.
pub fn rowwise_map<F>(a: &Matrix, pool: &Pool, f: F) -> Matrix
where
    F: Fn(&Matrix) -> Matrix + Sync,
{
    if pool.threads() == 1 || a.rows() < 2 {
        return f(a);
    }
    let cols = a.cols();
    let blocks = pool.map_chunks(a.rows(), |range| {
        let chunk = Matrix::from_vec(
            range.len(),
            cols,
            a.as_slice()[range.start * cols..range.end * cols].to_vec(),
        );
        f(&chunk)
    });
    let refs: Vec<&Matrix> = blocks.iter().collect();
    Matrix::vstack(&refs)
}

/// The `B×C` cosine-similarity matrix between the rows of `queries` (`B×d`)
/// and the rows of `prototypes` (`C×d`), computed in parallel over query
/// rows.
///
/// Bit-identical to `tensor::ops::cosine_similarity_matrix` and to the
/// inference (`train = false`) output of `nn::CosineSimilarity::forward`.
///
/// # Panics
///
/// Panics if the embedding widths differ.
pub fn cosine_scores(queries: &Matrix, prototypes: &Matrix, pool: &Pool) -> Matrix {
    assert_eq!(
        queries.cols(),
        prototypes.cols(),
        "cosine scoring requires equal embedding dims ({} vs {})",
        queries.cols(),
        prototypes.cols()
    );
    let normalized_prototypes = prototypes.normalize_rows(COSINE_EPS);
    rowwise_map(queries, pool, |chunk| {
        chunk
            .normalize_rows(COSINE_EPS)
            .matmul_nt(&normalized_prototypes)
    })
}

/// Bilinear compatibility scores `X·W·Sᵀ` (`B×C`), computed in parallel over
/// the rows of `features`; bit-identical to
/// `features.matmul(weights).matmul_nt(signatures)`.
///
/// # Panics
///
/// Panics if the shapes are incompatible.
pub fn bilinear_scores(
    features: &Matrix,
    weights: &Matrix,
    signatures: &Matrix,
    pool: &Pool,
) -> Matrix {
    rowwise_map(features, pool, |chunk| {
        chunk.matmul(weights).matmul_nt(signatures)
    })
}

/// Linear scores `X·W` (`B×α`), computed in parallel over the rows of
/// `features`; bit-identical to `features.matmul(weights)`.
///
/// # Panics
///
/// Panics if `features.cols() != weights.rows()`.
pub fn linear_scores(features: &Matrix, weights: &Matrix, pool: &Pool) -> Matrix {
    rowwise_map(features, pool, |chunk| chunk.matmul(weights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::ops::cosine_similarity_matrix;

    #[test]
    fn cosine_scores_bit_identical_to_serial_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::random_uniform(23, 17, 1.0, &mut rng);
        let b = Matrix::random_uniform(9, 17, 1.0, &mut rng);
        let reference = cosine_similarity_matrix(&a, &b);
        for threads in [1usize, 2, 5, 16] {
            let scores = cosine_scores(&a, &b, &Pool::new(threads));
            assert_eq!(scores.as_slice(), reference.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn bilinear_scores_bit_identical_to_serial_reference() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Matrix::random_uniform(19, 7, 1.0, &mut rng);
        let w = Matrix::random_uniform(7, 5, 1.0, &mut rng);
        let s = Matrix::random_uniform(4, 5, 1.0, &mut rng);
        let reference = x.matmul(&w).matmul_nt(&s);
        for threads in [1usize, 3, 8] {
            let scores = bilinear_scores(&x, &w, &s, &Pool::new(threads));
            assert_eq!(scores.as_slice(), reference.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn linear_scores_bit_identical_to_serial_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Matrix::random_uniform(11, 6, 1.0, &mut rng);
        let w = Matrix::random_uniform(6, 13, 1.0, &mut rng);
        let reference = x.matmul(&w);
        for threads in [1usize, 4] {
            let scores = linear_scores(&x, &w, &Pool::new(threads));
            assert_eq!(scores.as_slice(), reference.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn rowwise_map_handles_single_row_and_zero_norm() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 1.0]]);
        let scores = cosine_scores(&a, &b, &Pool::new(8));
        assert_eq!(scores.get(0, 0), 0.0);
    }
}
