//! Parallel dense scoring for the float inference paths (ZSC class logits,
//! DAP cosine scores, ESZSL compatibility scores).
//!
//! Every function here splits the *query* operand into contiguous row chunks
//! and applies the exact same scalar kernels (`normalize_rows`, `matmul`,
//! `matmul_nt`) each chunk would see in the serial code. Row results never
//! depend on other rows, so the stitched output is **bit-identical** to the
//! serial result for every thread count — the inference rewiring in
//! `hdc_zsc` and `baselines` relies on this to keep accuracies unchanged to
//! the last bit.

use minipool::Pool;
use tensor::Matrix;

/// Minimum row norm treated as non-zero, matching both
/// `nn::CosineSimilarity` and `tensor::ops::cosine_similarity_matrix`.
pub const COSINE_EPS: f32 = 1e-12;

/// Applies `f` to contiguous row chunks of `a` and vertically stitches the
/// results in chunk order.
///
/// With a one-thread pool (or a matrix of fewer than two rows) this is
/// exactly `f(a)` with no copies.
///
/// # Panics
///
/// Panics if `f` returns chunks of differing widths.
pub fn rowwise_map<F>(a: &Matrix, pool: &Pool, f: F) -> Matrix
where
    F: Fn(&Matrix) -> Matrix + Sync,
{
    if pool.threads() == 1 || a.rows() < 2 {
        return f(a);
    }
    let cols = a.cols();
    let blocks = pool.map_chunks(a.rows(), |range| {
        let chunk = Matrix::from_vec(
            range.len(),
            cols,
            a.as_slice()[range.start * cols..range.end * cols].to_vec(),
        );
        f(&chunk)
    });
    let refs: Vec<&Matrix> = blocks.iter().collect();
    Matrix::vstack(&refs)
}

/// The `B×C` cosine-similarity matrix between the rows of `queries` (`B×d`)
/// and the rows of `prototypes` (`C×d`), computed in parallel over query
/// rows.
///
/// Bit-identical to `tensor::ops::cosine_similarity_matrix` and to the
/// inference (`train = false`) output of `nn::CosineSimilarity::forward`.
///
/// # Panics
///
/// Panics if the embedding widths differ.
pub fn cosine_scores(queries: &Matrix, prototypes: &Matrix, pool: &Pool) -> Matrix {
    assert_eq!(
        queries.cols(),
        prototypes.cols(),
        "cosine scoring requires equal embedding dims ({} vs {})",
        queries.cols(),
        prototypes.cols()
    );
    let normalized_prototypes = prototypes.normalize_rows(COSINE_EPS);
    rowwise_map(queries, pool, |chunk| {
        chunk
            .normalize_rows(COSINE_EPS)
            .matmul_nt(&normalized_prototypes)
    })
}

/// Bilinear compatibility scores `X·W·Sᵀ` (`B×C`), computed in parallel over
/// the rows of `features`; bit-identical to
/// `features.matmul(weights).matmul_nt(signatures)`.
///
/// # Panics
///
/// Panics if the shapes are incompatible.
pub fn bilinear_scores(
    features: &Matrix,
    weights: &Matrix,
    signatures: &Matrix,
    pool: &Pool,
) -> Matrix {
    rowwise_map(features, pool, |chunk| {
        chunk.matmul(weights).matmul_nt(signatures)
    })
}

/// Linear scores `X·W` (`B×α`), computed in parallel over the rows of
/// `features`; bit-identical to `features.matmul(weights)`.
///
/// # Panics
///
/// Panics if `features.cols() != weights.rows()`.
pub fn linear_scores(features: &Matrix, weights: &Matrix, pool: &Pool) -> Matrix {
    rowwise_map(features, pool, |chunk| chunk.matmul(weights))
}

/// How a [`DenseClassMemory`] relates a query row to a prototype row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenseMetric {
    /// Cosine similarity — bit-identical to [`cosine_scores`] (and therefore
    /// to `tensor::ops::cosine_similarity_matrix`). The path the ZSC model's
    /// logits and the DAP baseline's class scores run through.
    Cosine,
    /// Raw dot product `q · s` — the second stage of a bilinear
    /// compatibility `x·V·sᵀ` once the query has been projected by `V`
    /// (the ESZSL decision rule).
    Dot,
}

/// The float backend of the unified [`Scorer`](crate::Scorer) contract: one
/// labelled prototype row per class, scored densely (cosine or dot) with
/// the row-parallel kernels above — bit-identical to the serial code for
/// every thread count.
///
/// Unlike the packed/sharded memories this backend is **immutable**: it is
/// the fitted-artifact view of a float class matrix (ZSC class embeddings,
/// DAP/ESZSL signature matrices), built once per class set.
///
/// # Example
///
/// ```
/// use engine::{DenseClassMemory, Scorer};
/// use tensor::Matrix;
///
/// let prototypes = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
/// let memory = DenseClassMemory::cosine(["x", "y"], prototypes);
/// let (label, sim) = memory.nearest(&[0.9, 0.1]).expect("non-empty");
/// assert_eq!(label, "x");
/// assert!(sim > 0.9);
/// assert_eq!(memory.top_k(&[1.0, 0.0], 5).len(), 2); // min(k, stored)
/// ```
#[derive(Debug, Clone)]
pub struct DenseClassMemory {
    labels: Vec<String>,
    prototypes: Matrix,
    /// Pre-normalised prototype rows for the cosine metric (`None` for dot).
    normalized: Option<Matrix>,
    metric: DenseMetric,
    pool: Pool,
}

impl DenseClassMemory {
    /// Builds a cosine-metric memory from one labelled prototype row per
    /// class.
    ///
    /// # Panics
    ///
    /// Panics if the label count differs from the row count or the matrix
    /// has zero columns.
    pub fn cosine<L, S>(labels: L, prototypes: Matrix) -> Self
    where
        L: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::with_metric(labels, prototypes, DenseMetric::Cosine)
    }

    /// Builds a dot-product-metric memory from one labelled prototype row
    /// per class; see [`DenseMetric::Dot`].
    ///
    /// # Panics
    ///
    /// Panics if the label count differs from the row count or the matrix
    /// has zero columns.
    pub fn dot<L, S>(labels: L, prototypes: Matrix) -> Self
    where
        L: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::with_metric(labels, prototypes, DenseMetric::Dot)
    }

    /// Builds a memory with an explicit metric.
    ///
    /// # Panics
    ///
    /// Panics if the label count differs from the row count or the matrix
    /// has zero columns.
    pub fn with_metric<L, S>(labels: L, prototypes: Matrix, metric: DenseMetric) -> Self
    where
        L: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        assert_eq!(
            labels.len(),
            prototypes.rows(),
            "one label per prototype row required"
        );
        assert!(prototypes.cols() > 0, "prototype rows must be non-empty");
        let normalized = match metric {
            DenseMetric::Cosine => Some(prototypes.normalize_rows(COSINE_EPS)),
            DenseMetric::Dot => None,
        };
        Self {
            labels,
            prototypes,
            normalized,
            metric,
            pool: Pool::auto(),
        }
    }

    /// Builds an unlabelled memory whose classes are named by their
    /// zero-padded row index (`class000`, `class001`, …) — padding keeps the
    /// lexicographic label tie-break aligned with row order, so index-based
    /// callers (the baselines' `argmax` predictors) and label-based callers
    /// agree on every tie.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has zero columns.
    pub fn indexed(prototypes: Matrix, metric: DenseMetric) -> Self {
        let width = prototypes.rows().saturating_sub(1).max(1).ilog10() as usize + 1;
        let labels: Vec<String> = (0..prototypes.rows())
            .map(|r| format!("class{r:0width$}"))
            .collect();
        Self::with_metric(labels, prototypes, metric)
    }

    /// Caps the row-parallel scoring fan-out at `threads` threads (clamped
    /// to at least 1). Results are bit-identical for every setting.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = Pool::new(threads);
        self
    }

    /// The scoring metric.
    pub fn metric(&self) -> DenseMetric {
        self.metric
    }

    /// The stored labels in insertion (row) order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.labels.iter().map(String::as_str)
    }

    /// The raw prototype matrix (one class per row).
    pub fn prototypes(&self) -> &Matrix {
        &self.prototypes
    }

    /// One-vs-all similarities of a single query row, in stored order.
    fn score_row(&self, query: &[f32]) -> Vec<f32> {
        let query = Matrix::from_vec(1, query.len(), query.to_vec());
        crate::Scorer::score_batch(self, &query).as_slice().to_vec()
    }

    /// The single best candidate under the contract order (similarity
    /// descending, label-ascending ties) in one `O(classes)` scan — the
    /// top-1 fast path behind `nearest`/`nearest_batch`, matching
    /// [`DenseClassMemory::ranked`]'s first entry exactly.
    fn best_of(&self, scores: &[f32]) -> Option<(&str, f32)> {
        let mut best: Option<(usize, f32)> = None;
        for (index, &sim) in scores.iter().enumerate() {
            let better = match best {
                None => true,
                Some((best_index, best_sim)) => {
                    sim > best_sim
                        || (sim == best_sim && self.labels[index] < self.labels[best_index])
                }
            };
            if better {
                best = Some((index, sim));
            }
        }
        best.map(|(index, sim)| (self.labels[index].as_str(), sim))
    }

    /// Orders `(index, similarity)` candidates by similarity descending with
    /// the label-ascending tie-break, truncated to `min(k, stored)`.
    fn ranked(&self, scores: Vec<f32>, k: usize) -> Vec<(&str, f32)> {
        let mut scored: Vec<(usize, f32)> = scores.into_iter().enumerate().collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("similarities are finite")
                .then_with(|| self.labels[a.0].cmp(&self.labels[b.0]))
        });
        scored.truncate(k);
        scored
            .into_iter()
            .map(|(index, sim)| (self.labels[index].as_str(), sim))
            .collect()
    }
}

/// The dense float backend of the unified [`Scorer`](crate::Scorer)
/// contract: queries are `f32` rows, batches are [`Matrix`]es with one query
/// per row.
impl crate::Scorer for DenseClassMemory {
    type Query = [f32];
    type Batch = Matrix;

    fn dim(&self) -> usize {
        self.prototypes.cols()
    }

    fn num_classes(&self) -> usize {
        self.labels.len()
    }

    fn score_batch(&self, batch: &Matrix) -> Matrix {
        assert_eq!(
            batch.cols(),
            self.prototypes.cols(),
            "query batch dimensionality must match the class memory"
        );
        match (self.metric, &self.normalized) {
            (DenseMetric::Cosine, Some(normalized)) => rowwise_map(batch, &self.pool, |chunk| {
                chunk.normalize_rows(COSINE_EPS).matmul_nt(normalized)
            }),
            _ => rowwise_map(batch, &self.pool, |chunk| chunk.matmul_nt(&self.prototypes)),
        }
    }

    fn nearest(&self, query: &[f32]) -> Option<(&str, f32)> {
        let scores = self.score_row(query);
        self.best_of(&scores)
    }

    fn top_k(&self, query: &[f32], k: usize) -> Vec<(&str, f32)> {
        self.ranked(self.score_row(query), k)
    }

    fn nearest_batch(&self, batch: &Matrix) -> Vec<(&str, f32)> {
        assert!(
            batch.rows() == 0 || !self.labels.is_empty(),
            "nearest_batch requires a non-empty class memory"
        );
        let scores = crate::Scorer::score_batch(self, batch);
        (0..batch.rows())
            .map(|q| {
                self.best_of(scores.row(q))
                    .expect("non-empty memory checked above")
            })
            .collect()
    }

    fn topk_batch(&self, batch: &Matrix, k: usize) -> Vec<Vec<(&str, f32)>> {
        let scores = crate::Scorer::score_batch(self, batch);
        (0..batch.rows())
            .map(|q| self.ranked(scores.row(q).to_vec(), k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scorer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::ops::cosine_similarity_matrix;

    #[test]
    fn cosine_scores_bit_identical_to_serial_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::random_uniform(23, 17, 1.0, &mut rng);
        let b = Matrix::random_uniform(9, 17, 1.0, &mut rng);
        let reference = cosine_similarity_matrix(&a, &b);
        for threads in [1usize, 2, 5, 16] {
            let scores = cosine_scores(&a, &b, &Pool::new(threads));
            assert_eq!(scores.as_slice(), reference.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn bilinear_scores_bit_identical_to_serial_reference() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Matrix::random_uniform(19, 7, 1.0, &mut rng);
        let w = Matrix::random_uniform(7, 5, 1.0, &mut rng);
        let s = Matrix::random_uniform(4, 5, 1.0, &mut rng);
        let reference = x.matmul(&w).matmul_nt(&s);
        for threads in [1usize, 3, 8] {
            let scores = bilinear_scores(&x, &w, &s, &Pool::new(threads));
            assert_eq!(scores.as_slice(), reference.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn linear_scores_bit_identical_to_serial_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Matrix::random_uniform(11, 6, 1.0, &mut rng);
        let w = Matrix::random_uniform(6, 13, 1.0, &mut rng);
        let reference = x.matmul(&w);
        for threads in [1usize, 4] {
            let scores = linear_scores(&x, &w, &Pool::new(threads));
            assert_eq!(scores.as_slice(), reference.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn rowwise_map_handles_single_row_and_zero_norm() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 1.0]]);
        let scores = cosine_scores(&a, &b, &Pool::new(8));
        assert_eq!(scores.get(0, 0), 0.0);
    }

    #[test]
    fn dense_memory_cosine_scores_bit_identical_to_reference() {
        let mut rng = StdRng::seed_from_u64(4);
        let prototypes = Matrix::random_uniform(7, 12, 1.0, &mut rng);
        let queries = Matrix::random_uniform(9, 12, 1.0, &mut rng);
        let reference = cosine_similarity_matrix(&queries, &prototypes);
        for threads in [1usize, 3, 8] {
            let memory = DenseClassMemory::indexed(prototypes.clone(), DenseMetric::Cosine)
                .with_threads(threads);
            assert_eq!(memory.num_classes(), 7);
            assert_eq!(Scorer::dim(&memory), 12);
            let scores = memory.score_batch(&queries);
            assert_eq!(scores.as_slice(), reference.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn dense_memory_dot_matches_matmul_nt() {
        let mut rng = StdRng::seed_from_u64(5);
        let prototypes = Matrix::random_uniform(5, 8, 1.0, &mut rng);
        let queries = Matrix::random_uniform(6, 8, 1.0, &mut rng);
        let memory = DenseClassMemory::dot((0..5).map(|c| format!("c{c}")), prototypes.clone());
        assert_eq!(memory.metric(), DenseMetric::Dot);
        let reference = queries.matmul_nt(&prototypes);
        assert_eq!(
            memory.score_batch(&queries).as_slice(),
            reference.as_slice()
        );
    }

    #[test]
    fn dense_memory_lookups_obey_truncation_and_tie_break() {
        // Two identical prototypes inserted in reverse label order: ties must
        // resolve to the lexicographically smallest label.
        let prototypes = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]]);
        let memory = DenseClassMemory::cosine(["zeta", "alpha", "other"], prototypes);
        let (label, sim) = memory.nearest(&[1.0, 0.0]).expect("non-empty");
        assert_eq!(label, "alpha");
        assert!((sim - 1.0).abs() < 1e-6);
        let top = memory.top_k(&[1.0, 0.0], 10);
        assert_eq!(top.len(), 3, "min(k, stored) truncation");
        assert_eq!(top[0].0, "alpha");
        assert_eq!(top[1].0, "zeta");
        assert!(memory.top_k(&[1.0, 0.0], 0).is_empty());
        // Batch lookups agree with per-query lookups.
        let batch = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]);
        let nearest = memory.nearest_batch(&batch);
        assert_eq!(nearest[0].0, "alpha");
        assert_eq!(nearest[1].0, "other");
        let topk = memory.topk_batch(&batch, 2);
        assert_eq!(topk[0], memory.top_k(batch.row(0), 2));
        assert_eq!(topk[1], memory.top_k(batch.row(1), 2));
    }

    #[test]
    fn indexed_labels_are_zero_padded_to_preserve_row_order_on_ties() {
        let prototypes = Matrix::from_rows(&(0..11).map(|_| vec![1.0, 1.0]).collect::<Vec<_>>());
        let memory = DenseClassMemory::indexed(prototypes, DenseMetric::Cosine);
        let labels: Vec<&str> = memory.labels().collect();
        assert_eq!(labels[0], "class00");
        assert_eq!(labels[10], "class10");
        // All prototypes identical: top-k order is exactly row order.
        let top: Vec<&str> = memory
            .top_k(&[1.0, 1.0], 11)
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(top, labels);
    }
}
