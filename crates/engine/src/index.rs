//! Routed class memory: a two-level coarse-to-fine index over class
//! prototypes for sub-linear retrieval at very large label spaces.
//!
//! # Shape
//!
//! A [`RoutedClassMemory`] clusters the stored ±1 prototypes with seeded
//! k-means (k-means++ initialisation, Lloyd refinement — all in the packed
//! Hamming domain, where the squared Euclidean distance between ±1 vectors
//! is `4 · hamming` and the binarised mean of a member set is the
//! per-bit majority sign). Each cluster keeps its members in its own
//! [`PackedClassMemory`] shard, and every cluster has one packed *centroid*
//! row. A lookup scores the query against the centroids first, visits the
//! `nprobe` nearest clusters, and **exactly re-ranks** the candidates it
//! finds there on raw integer `(hamming, label)` — the monolithic
//! comparator — so the only approximation is *which classes are candidates*,
//! never how candidates are ordered or what similarity bits they carry.
//!
//! # Exactness contract
//!
//! With full probing (`nprobe = 0`, the default, or `nprobe ≥` the live
//! cluster count) every lookup is **bit-identical** to the exhaustive
//! [`PackedClassMemory`] over the same class set: same labels, same
//! similarity bits, same `(hamming, label)` tie-break, same `min(k, stored)`
//! truncation. The `routed_parity` property tests pin this across ragged
//! dims, cluster counts, `k ≥ num_classes`, and arbitrary
//! add/update/remove interleavings. With partial probing (`0 < nprobe <`
//! live clusters) the truncation contract weakens to `min(k, candidates)`
//! and recall becomes a measured quantity — `serve_sim --index routed`
//! reports candidate-fraction and recall@k per `nprobe`.
//!
//! # Determinism
//!
//! The clustering is a pure function of `(dimension, config, insertion
//! order)`: k-means++ draws from a SplitMix64 stream seeded by
//! [`RoutedConfig::seed`], Lloyd assignment breaks ties to the lowest
//! cluster index, centroid bits break exact-half ties to `+1` (clear), and
//! re-clustering triggers on a pure mutation count. Replaying the same
//! mutation history against the same seed therefore rebuilds the *same*
//! structure — the property the serve layer's WAL crash recovery relies on
//! — and a serde round trip preserves the exact cluster assignment.

use crate::batch::PackedQueryBatch;
use crate::packed::{
    mask_tail_word, pack_signs, similarity_from_hamming, words_per_row, PackedClassMemory,
};
use minipool::Pool;
use serde::{de, DeError, Deserialize, Serialize, Value};
use std::sync::Arc;
use tensor::Matrix;

/// Tuning knobs of a [`RoutedClassMemory`]; every field participates in the
/// deterministic-structure contract (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutedConfig {
    /// Number of coarse clusters; `0` sizes automatically to `⌈√n⌉` at each
    /// (re-)clustering.
    pub clusters: usize,
    /// Clusters visited per lookup; `0` probes everything — the exhaustive
    /// fallback under which lookups are bit-identical to
    /// [`PackedClassMemory`]. Values past the live cluster count clamp.
    pub nprobe: usize,
    /// Seed of the k-means++ initialisation stream.
    pub seed: u64,
    /// Maximum Lloyd refinement passes per (re-)clustering (at least one
    /// assignment pass always runs; refinement stops early on a fixed
    /// point).
    pub kmeans_iters: usize,
    /// Re-cluster when mutations since the last build reach this percentage
    /// of the stored class count (and at least
    /// [`RoutedClassMemory::MIN_RECLUSTER_DRIFT`]); `0` disables automatic
    /// re-clustering.
    pub recluster_percent: usize,
}

impl Default for RoutedConfig {
    fn default() -> Self {
        Self {
            clusters: 0,
            nprobe: 0,
            seed: 0x5eed_c0a2,
            kmeans_iters: 6,
            recluster_percent: 50,
        }
    }
}

/// One step of the SplitMix64 stream — the only randomness in the index,
/// fully determined by [`RoutedConfig::seed`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hamming distance between two packed rows of equal width.
#[inline]
fn hamming(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| u64::from((x ^ y).count_ones()))
        .sum()
}

/// A coarse-to-fine routed class memory; see the module docs for the
/// design, exactness, and determinism contracts.
///
/// Like [`ShardedClassMemory`](crate::ShardedClassMemory), per-cluster
/// shards sit behind [`Arc`]s with copy-on-write semantics: cloning the
/// memory shares every shard, and a mutation deep-copies exactly the
/// touched cluster(s).
///
/// # Example
///
/// ```
/// use engine::{pack_signs, RoutedClassMemory, RoutedConfig};
///
/// let mut memory = RoutedClassMemory::new(4, RoutedConfig::default());
/// memory.add_class("up", &[1, 1, 1, 1]);
/// memory.add_class("down", &[-1, -1, -1, -1]);
/// let query = pack_signs(&[1, 1, 1, -1]);
/// // Default config probes everything: bit-identical to the exhaustive scan.
/// assert_eq!(memory.nearest(&query), Some(("up", 0.5)));
/// ```
#[derive(Debug, Clone)]
pub struct RoutedClassMemory {
    dim: usize,
    config: RoutedConfig,
    /// Packed centroid rows, `clusters.len() × words_per_row` words; tail
    /// bits are kept clear so centroid scoring is a plain popcount.
    centroids: Vec<u64>,
    clusters: Vec<Arc<PackedClassMemory>>,
    /// Mutations since the clustering was last built; drives re-clustering.
    drift: usize,
    pool: Pool,
}

/// Equality is structural — configuration, centroids, per-cluster contents,
/// and drift. The scoring pool width is a performance knob (results are
/// bit-identical for every width) and does not participate.
impl PartialEq for RoutedClassMemory {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim
            && self.config == other.config
            && self.centroids == other.centroids
            && self.clusters == other.clusters
            && self.drift == other.drift
    }
}

impl RoutedClassMemory {
    /// Automatic re-clustering never fires below this many mutations, so
    /// small memories don't thrash rebuilding after every other insert.
    pub const MIN_RECLUSTER_DRIFT: usize = 8;

    /// Creates an empty routed memory for `dim`-bit prototypes.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, config: RoutedConfig) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            dim,
            config,
            centroids: vec![0u64; words_per_row(dim)],
            clusters: vec![Arc::new(PackedClassMemory::new(dim))],
            drift: 0,
            pool: Pool::auto(),
        }
    }

    /// Builds a routed memory over the contents of a monolithic memory,
    /// clustering with the seeded k-means described in the module docs.
    ///
    /// # Panics
    ///
    /// Panics if `memory` is zero-dimensional.
    pub fn from_packed(memory: &PackedClassMemory, config: RoutedConfig) -> Self {
        let mut routed = Self::new(memory.dim(), config);
        let rows: Vec<(String, Vec<u64>)> = (0..memory.len())
            .map(|r| (memory.label(r).to_string(), memory.row_words(r).to_vec()))
            .collect();
        routed.rebuild_from(rows);
        routed
    }

    /// Builds a routed memory from one float row per class by taking signs
    /// (`x < 0` → `-1`) — the routed analogue of
    /// [`PackedClassMemory::from_sign_matrix`].
    ///
    /// # Panics
    ///
    /// Panics if the label count differs from the row count or the matrix
    /// has zero columns.
    pub fn from_sign_matrix<L, S>(labels: L, matrix: &Matrix, config: RoutedConfig) -> Self
    where
        L: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut routed = Self::new(matrix.cols(), config);
        let mut rows: Vec<(String, Vec<u64>)> = Vec::new();
        for (r, label) in labels.into_iter().enumerate() {
            assert!(r < matrix.rows(), "more labels than matrix rows");
            rows.push((label.into(), crate::packed::pack_float_signs(matrix.row(r))));
        }
        assert_eq!(rows.len(), matrix.rows(), "fewer labels than matrix rows");
        routed.rebuild_from(rows);
        routed
    }

    /// Caps lookup and clustering fan-out at `threads` threads (clamped to
    /// at least 1). Results are bit-identical for every setting.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = Pool::new(threads);
        self
    }

    /// Number of threads lookups and clustering fan out over.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Dimensionality of the stored prototypes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Packed words per prototype row.
    pub fn words_per_row(&self) -> usize {
        words_per_row(self.dim)
    }

    /// The configuration the index was built with (`nprobe` reflects
    /// [`RoutedClassMemory::set_nprobe`] updates).
    pub fn config(&self) -> RoutedConfig {
        self.config
    }

    /// Re-points the probe width; `0` restores exhaustive probing. Purely a
    /// recall/latency knob — the stored structure is untouched.
    pub fn set_nprobe(&mut self, nprobe: usize) {
        self.config.nprobe = nprobe;
    }

    /// Restores exhaustive probing (`nprobe = 0`): every lookup visits all
    /// clusters and is bit-identical to the monolithic scan.
    pub fn probe_all(&mut self) {
        self.config.nprobe = 0;
    }

    /// `true` when the current probe width visits every live cluster, i.e.
    /// lookups are provably exhaustive.
    pub fn probes_exhaustively(&self) -> bool {
        self.config.nprobe == 0 || self.config.nprobe >= self.live_clusters()
    }

    /// Number of coarse clusters (including any currently empty ones).
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Number of clusters currently holding at least one class.
    pub fn live_clusters(&self) -> usize {
        self.clusters.iter().filter(|c| !c.is_empty()).count()
    }

    /// The per-cluster shard at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_clusters()`.
    pub fn cluster(&self, index: usize) -> &PackedClassMemory {
        &self.clusters[index]
    }

    /// The packed centroid row of cluster `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_clusters()`.
    pub fn centroid_words(&self, index: usize) -> &[u64] {
        assert!(index < self.clusters.len(), "cluster index out of range");
        let wpr = self.words_per_row();
        &self.centroids[index * wpr..(index + 1) * wpr]
    }

    /// Mutations applied since the clustering was last built.
    pub fn drift(&self) -> usize {
        self.drift
    }

    /// Total number of stored classes across all clusters.
    pub fn len(&self) -> usize {
        self.clusters.iter().map(|c| c.len()).sum()
    }

    /// Returns `true` if no classes are stored.
    pub fn is_empty(&self) -> bool {
        self.clusters.iter().all(|c| c.is_empty())
    }

    /// Total packed footprint in bytes (centroids plus member rows).
    pub fn memory_bytes(&self) -> usize {
        self.centroids.len() * std::mem::size_of::<u64>()
            + self
                .clusters
                .iter()
                .map(|c| c.memory_bytes())
                .sum::<usize>()
    }

    /// The stored labels in cluster-major order (cluster 0's rows, then
    /// cluster 1's, …). Deterministic for a given mutation history, but
    /// labels — not positions — are class identity.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.clusters.iter().flat_map(|c| c.labels())
    }

    /// The `(cluster, row)` holding `label`, if stored.
    pub fn locate(&self, label: &str) -> Option<(usize, usize)> {
        self.clusters
            .iter()
            .enumerate()
            .find_map(|(c, cluster)| cluster.position(label).map(|row| (c, row)))
    }

    /// Returns `true` if a class is stored under `label`.
    pub fn contains(&self, label: &str) -> bool {
        self.locate(label).is_some()
    }

    /// The packed words of the class stored under `label`, if any.
    pub fn class_words(&self, label: &str) -> Option<&[u64]> {
        self.locate(label)
            .map(|(c, row)| self.clusters[c].row_words(row))
    }

    // -----------------------------------------------------------------
    // Mutation
    // -----------------------------------------------------------------

    /// Inserts or replaces the class stored under `label` from ±1 signs.
    /// A new label routes to the cluster with the nearest centroid (ties to
    /// the smallest cluster index); an existing label is re-routed the same
    /// way (its old cluster is repacked, the destination repacked — every
    /// other cluster stays `Arc`-shared). Returns
    /// `(destination cluster, replaced)`.
    ///
    /// Each mutation advances the drift counter; once drift reaches
    /// [`RoutedConfig::recluster_percent`] of the stored class count the
    /// whole index deterministically re-clusters from the current contents.
    ///
    /// # Panics
    ///
    /// Panics if `signs.len() != self.dim()` or a sign is not `±1`.
    pub fn add_class(&mut self, label: impl Into<String>, signs: &[i8]) -> (usize, bool) {
        assert_eq!(
            signs.len(),
            self.dim,
            "prototype dimensionality must match the memory"
        );
        self.add_class_packed(label, &pack_signs(signs))
    }

    /// Inserts or replaces a class from an already-packed word row; see
    /// [`RoutedClassMemory::add_class`]. Tail bits beyond `dim` are cleared
    /// before routing and insertion.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != self.words_per_row()`.
    pub fn add_class_packed(&mut self, label: impl Into<String>, words: &[u64]) -> (usize, bool) {
        assert_eq!(
            words.len(),
            self.words_per_row(),
            "packed row width must match the memory"
        );
        let label = label.into();
        let mut clean = words.to_vec();
        mask_tail_word(self.dim, &mut clean);
        let replaced = if let Some((old, _)) = self.locate(&label) {
            Arc::make_mut(&mut self.clusters[old]).remove(&label);
            true
        } else {
            false
        };
        let destination = self.route(&clean);
        Arc::make_mut(&mut self.clusters[destination]).insert_packed(label.clone(), &clean);
        self.drift += 1;
        self.maybe_recluster();
        // A drift reset means re-clustering fired and may have moved the
        // row; report the cluster it actually lives in now.
        let destination = if self.drift == 0 {
            self.locate(&label).map_or(destination, |(c, _)| c)
        } else {
            destination
        };
        (destination, replaced)
    }

    /// Replaces the prototype of an *existing* class, returning `false`
    /// (without inserting) when `label` is not stored. Use
    /// [`RoutedClassMemory::add_class`] for insert-or-replace semantics.
    ///
    /// # Panics
    ///
    /// Panics if `signs.len() != self.dim()` or a sign is not `±1`.
    pub fn update_class(&mut self, label: &str, signs: &[i8]) -> bool {
        if !self.contains(label) {
            return false;
        }
        self.add_class(label, signs);
        true
    }

    /// Removes the class stored under `label`, repacking only its cluster.
    /// Returns `false` if the label is not stored.
    pub fn remove_class(&mut self, label: &str) -> bool {
        match self.locate(label) {
            Some((c, _)) => {
                Arc::make_mut(&mut self.clusters[c]).remove(label);
                self.drift += 1;
                self.maybe_recluster();
                true
            }
            None => false,
        }
    }

    /// Deterministically re-clusters the current contents with the stored
    /// seed, resetting drift. Called automatically once drift crosses the
    /// configured threshold; callable directly after a bulk-load phase.
    pub fn recluster(&mut self) {
        let rows: Vec<(String, Vec<u64>)> = self
            .clusters
            .iter()
            .flat_map(|cluster| {
                (0..cluster.len())
                    .map(|r| (cluster.label(r).to_string(), cluster.row_words(r).to_vec()))
            })
            .collect();
        self.rebuild_from(rows);
    }

    /// Nearest-centroid routing for one clean (tail-masked) row; ties go to
    /// the smallest cluster index.
    fn route(&self, words: &[u64]) -> usize {
        let wpr = self.words_per_row();
        let mut best = 0usize;
        let mut best_h = u64::MAX;
        for c in 0..self.clusters.len() {
            let h = hamming(&self.centroids[c * wpr..(c + 1) * wpr], words);
            if h < best_h {
                best = c;
                best_h = h;
            }
        }
        best
    }

    /// Fires the deterministic re-clustering once drift reaches the
    /// configured percentage of the stored class count (with the
    /// [`RoutedClassMemory::MIN_RECLUSTER_DRIFT`] floor).
    fn maybe_recluster(&mut self) {
        let percent = self.config.recluster_percent;
        if percent == 0 || self.drift < Self::MIN_RECLUSTER_DRIFT {
            return;
        }
        if self.drift * 100 >= percent * self.len().max(1) {
            self.recluster();
        }
    }

    /// Rebuilds centroids and per-cluster shards from scratch over
    /// `rows` (label, clean packed words), in order; resets drift.
    fn rebuild_from(&mut self, rows: Vec<(String, Vec<u64>)>) {
        let wpr = self.words_per_row();
        let n = rows.len();
        if n == 0 {
            self.centroids = vec![0u64; wpr];
            self.clusters = vec![Arc::new(PackedClassMemory::new(self.dim))];
            self.drift = 0;
            return;
        }
        let k = match self.config.clusters {
            0 => (n as f64).sqrt().ceil() as usize,
            k => k,
        }
        .clamp(1, n);

        // Flat word matrix for the clustering passes.
        let mut words = Vec::with_capacity(n * wpr);
        for (_, row) in &rows {
            debug_assert_eq!(row.len(), wpr);
            words.extend_from_slice(row);
        }
        let row = |i: usize| &words[i * wpr..(i + 1) * wpr];

        // k-means++ initialisation from the seeded SplitMix64 stream: the
        // first centroid uniform, each next drawn with probability
        // proportional to its squared distance to the chosen set.
        let mut state = self.config.seed;
        let mut centroids: Vec<u64> = Vec::with_capacity(k * wpr);
        let first = (splitmix64(&mut state) % n as u64) as usize;
        centroids.extend_from_slice(row(first));
        let mut best_d: Vec<u64> = (0..n).map(|i| hamming(row(i), row(first))).collect();
        for c in 1..k {
            let total: u128 = best_d.iter().map(|&d| u128::from(d) * u128::from(d)).sum();
            let pick = if total == 0 {
                // Every remaining point coincides with a centroid; spread
                // deterministically instead of dividing by zero.
                c % n
            } else {
                let r = u128::from(splitmix64(&mut state)) % total;
                let mut acc = 0u128;
                let mut pick = n - 1;
                for (i, &d) in best_d.iter().enumerate() {
                    acc += u128::from(d) * u128::from(d);
                    if acc > r {
                        pick = i;
                        break;
                    }
                }
                pick
            };
            centroids.extend_from_slice(row(pick));
            for (i, d) in best_d.iter_mut().enumerate() {
                let h = hamming(row(i), row(pick));
                if h < *d {
                    *d = h;
                }
            }
        }

        // Lloyd refinement: assign (parallel across rows, ties to the
        // lowest cluster), re-binarise centroids as per-bit majority signs
        // (exact-half ties to +1/clear, empty clusters keep their centroid),
        // stop on a fixed point. The final assignment is always consistent
        // with the stored centroids.
        let assign_pass = |centroids: &[u64]| -> Vec<u32> {
            self.pool
                .map_chunks(n, |range| {
                    range
                        .map(|i| {
                            let mut best = 0u32;
                            let mut best_h = u64::MAX;
                            for c in 0..k {
                                let h = hamming(&centroids[c * wpr..(c + 1) * wpr], row(i));
                                if h < best_h {
                                    best = c as u32;
                                    best_h = h;
                                }
                            }
                            best
                        })
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect()
        };
        let mut assign = assign_pass(&centroids);
        for _ in 0..self.config.kmeans_iters.max(1) {
            let members: Vec<Vec<usize>> = {
                let mut m = vec![Vec::new(); k];
                for (i, &a) in assign.iter().enumerate() {
                    m[a as usize].push(i);
                }
                m
            };
            let updated: Vec<Vec<u64>> = self
                .pool
                .map_chunks(k, |range| {
                    range
                        .map(|c| {
                            if members[c].is_empty() {
                                return centroids[c * wpr..(c + 1) * wpr].to_vec();
                            }
                            let mut counts = vec![0u32; self.dim];
                            for &i in &members[c] {
                                for (w, &word) in row(i).iter().enumerate() {
                                    let mut bits = word;
                                    while bits != 0 {
                                        let b = bits.trailing_zeros() as usize;
                                        counts[w * 64 + b] += 1;
                                        bits &= bits - 1;
                                    }
                                }
                            }
                            let half = members[c].len() as u32;
                            let mut centroid = vec![0u64; wpr];
                            for (bit, &count) in counts.iter().enumerate() {
                                // Majority of set bits (-1 signs); an exact
                                // half resolves to +1, i.e. clear.
                                if 2 * count > half {
                                    centroid[bit / 64] |= 1u64 << (bit % 64);
                                }
                            }
                            centroid
                        })
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect();
            let next_centroids: Vec<u64> = updated.into_iter().flatten().collect();
            let next = assign_pass(&next_centroids);
            centroids = next_centroids;
            if next == assign {
                break;
            }
            assign = next;
        }

        // Materialise the per-cluster shards in original row order.
        let mut clusters: Vec<PackedClassMemory> =
            (0..k).map(|_| PackedClassMemory::new(self.dim)).collect();
        for (i, (label, row_words)) in rows.into_iter().enumerate() {
            clusters[assign[i] as usize].insert_packed(label, &row_words);
        }
        self.centroids = centroids;
        self.clusters = clusters.into_iter().map(Arc::new).collect();
        self.drift = 0;
    }

    // -----------------------------------------------------------------
    // Lookup
    // -----------------------------------------------------------------

    /// The clusters a lookup for `query` visits, in probe-rank order
    /// (`(centroid hamming, cluster index)` ascending). Exhaustive probing
    /// returns every non-empty cluster; partial probing the `nprobe`
    /// nearest non-empty ones. Empty clusters are never probed.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.words_per_row()`.
    pub fn probe_clusters(&self, query: &[u64]) -> Vec<usize> {
        assert_eq!(query.len(), self.words_per_row(), "query width");
        let wpr = self.words_per_row();
        let mut ranked: Vec<(u64, usize)> = self
            .clusters
            .iter()
            .enumerate()
            .filter(|(_, cluster)| !cluster.is_empty())
            .map(|(c, _)| (hamming(&self.centroids[c * wpr..(c + 1) * wpr], query), c))
            .collect();
        ranked.sort_unstable();
        if self.config.nprobe > 0 {
            ranked.truncate(self.config.nprobe);
        }
        ranked.into_iter().map(|(_, c)| c).collect()
    }

    /// Number of classes a lookup for `query` re-ranks exactly — the
    /// numerator of the candidate-fraction statistic `serve_sim` reports.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.words_per_row()`.
    pub fn candidate_classes(&self, query: &[u64]) -> usize {
        self.probe_clusters(query)
            .into_iter()
            .map(|c| self.clusters[c].len())
            .sum()
    }

    /// The most similar stored class among the probed clusters, as
    /// `(label, similarity)`, merged on `(hamming, label)`. Bit-identical
    /// to [`PackedClassMemory::nearest`] whenever probing is exhaustive.
    ///
    /// Returns `None` if the memory is empty.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.words_per_row()`.
    pub fn nearest(&self, query: &[u64]) -> Option<(&str, f32)> {
        let probed = self.probe_clusters(query);
        probed
            .into_iter()
            .filter_map(|c| {
                self.clusters[c]
                    .nearest_hamming(query)
                    .map(|(row, h)| (c, row, h))
            })
            .min_by(|&(ca, ra, ha), &(cb, rb, hb)| {
                ha.cmp(&hb)
                    .then_with(|| self.clusters[ca].label(ra).cmp(self.clusters[cb].label(rb)))
            })
            .map(|(c, row, h)| {
                (
                    self.clusters[c].label(row),
                    similarity_from_hamming(self.dim, h),
                )
            })
    }

    /// The `k` most similar classes among the probed clusters, most similar
    /// first, exactly re-ranked on `(hamming, label)`. With exhaustive
    /// probing this is bit-identical to [`PackedClassMemory::top_k`]
    /// (`min(k, stored)` entries, `k == 0` empty); with partial probing it
    /// returns `min(k, candidates)` entries.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.words_per_row()`.
    pub fn top_k(&self, query: &[u64], k: usize) -> Vec<(&str, f32)> {
        let probed = self.probe_clusters(query);
        let mut merged: Vec<(usize, usize, u64)> = probed
            .into_iter()
            .flat_map(|c| {
                self.clusters[c]
                    .top_k_hamming(query, k)
                    .into_iter()
                    .map(move |(row, h)| (c, row, h))
            })
            .collect();
        merged.sort_by(|&(ca, ra, ha), &(cb, rb, hb)| {
            ha.cmp(&hb)
                .then_with(|| self.clusters[ca].label(ra).cmp(self.clusters[cb].label(rb)))
        });
        merged.truncate(k);
        merged
            .into_iter()
            .map(|(c, row, h)| {
                (
                    self.clusters[c].label(row),
                    similarity_from_hamming(self.dim, h),
                )
            })
            .collect()
    }

    /// The nearest class of every query in the batch, parallelised across
    /// queries (each worker routes and re-ranks its own query range).
    ///
    /// # Panics
    ///
    /// Panics if `batch.dim() != self.dim()` or the memory is empty while
    /// the batch is not.
    pub fn nearest_batch(&self, batch: &PackedQueryBatch) -> Vec<(&str, f32)> {
        assert_eq!(
            batch.dim(),
            self.dim,
            "query batch dimensionality must match the class memory"
        );
        assert!(
            batch.is_empty() || !self.is_empty(),
            "nearest_batch requires a non-empty class memory"
        );
        self.pool
            .map_chunks(batch.len(), |range| {
                range
                    .map(|q| self.nearest(batch.row(q)).expect("non-empty memory"))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
    }

    /// The top-k classes of every query in the batch, parallelised across
    /// queries; same ordering and truncation behaviour as
    /// [`RoutedClassMemory::top_k`].
    ///
    /// # Panics
    ///
    /// Panics if `batch.dim() != self.dim()`.
    pub fn topk_batch(&self, batch: &PackedQueryBatch, k: usize) -> Vec<Vec<(&str, f32)>> {
        assert_eq!(
            batch.dim(),
            self.dim,
            "query batch dimensionality must match the class memory"
        );
        self.pool
            .map_chunks(batch.len(), |range| {
                range
                    .map(|q| self.top_k(batch.row(q), k))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
    }
}

/// Serializes the full deterministic structure — configuration, centroids,
/// per-cluster contents, and the drift counter — so an imported memory not
/// only scores bit-identically but also routes and re-clusters every
/// subsequent mutation exactly as the original would (the serve-layer
/// crash-recovery property).
impl Serialize for RoutedClassMemory {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("dim".to_string(), self.dim.to_value()),
            (
                "clusters_config".to_string(),
                self.config.clusters.to_value(),
            ),
            ("nprobe".to_string(), self.config.nprobe.to_value()),
            ("seed".to_string(), self.config.seed.to_value()),
            (
                "kmeans_iters".to_string(),
                self.config.kmeans_iters.to_value(),
            ),
            (
                "recluster_percent".to_string(),
                self.config.recluster_percent.to_value(),
            ),
            ("drift".to_string(), self.drift.to_value()),
            ("centroids".to_string(), self.centroids.to_value()),
            (
                "clusters".to_string(),
                Value::Array(self.clusters.iter().map(|c| c.to_value()).collect()),
            ),
        ])
    }
}

/// Hand-written so cross-cluster invariants — a non-empty cluster list,
/// centroid rows matching the cluster count with clean tail bits, every
/// cluster at the declared dimensionality, no label stored twice — are
/// enforced with typed errors. Per-cluster word-matrix shape is validated
/// by [`PackedClassMemory`]'s own deserializer; the scoring pool is rebuilt
/// auto-sized.
impl Deserialize for RoutedClassMemory {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = de::expect_object(value, "RoutedClassMemory")?;
        let dim: usize = de::field(entries, "dim", "RoutedClassMemory")?;
        let config = RoutedConfig {
            clusters: de::field(entries, "clusters_config", "RoutedClassMemory")?,
            nprobe: de::field(entries, "nprobe", "RoutedClassMemory")?,
            seed: de::field(entries, "seed", "RoutedClassMemory")?,
            kmeans_iters: de::field(entries, "kmeans_iters", "RoutedClassMemory")?,
            recluster_percent: de::field(entries, "recluster_percent", "RoutedClassMemory")?,
        };
        let drift: usize = de::field(entries, "drift", "RoutedClassMemory")?;
        let centroids: Vec<u64> = de::field(entries, "centroids", "RoutedClassMemory")?;
        let clusters: Vec<PackedClassMemory> = de::field(entries, "clusters", "RoutedClassMemory")?;
        let type_err = |msg: String| DeError::new(msg).in_field("RoutedClassMemory");
        if dim == 0 {
            return Err(type_err("dimensionality must be positive".into()));
        }
        if clusters.is_empty() {
            return Err(type_err("at least one cluster is required".into()));
        }
        let wpr = words_per_row(dim);
        if centroids.len() != clusters.len() * wpr {
            return Err(type_err(format!(
                "{} centroid words do not match {} clusters of {wpr} words",
                centroids.len(),
                clusters.len()
            )));
        }
        let rem = dim % 64;
        if rem != 0 {
            for (c, chunk) in centroids.chunks_exact(wpr).enumerate() {
                if chunk[wpr - 1] >> rem != 0 {
                    return Err(type_err(format!(
                        "centroid {c} has set bits beyond the declared dimensionality"
                    )));
                }
            }
        }
        for (c, cluster) in clusters.iter().enumerate() {
            if cluster.dim() != dim {
                return Err(type_err(format!(
                    "cluster {c} has dimensionality {} but the memory declares {dim}",
                    cluster.dim()
                )));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for cluster in &clusters {
            for label in cluster.labels() {
                if !seen.insert(label) {
                    return Err(type_err(format!("label `{label}` stored in two clusters")));
                }
            }
        }
        Ok(Self {
            dim,
            config,
            centroids,
            clusters: clusters.into_iter().map(Arc::new).collect(),
            drift,
            pool: Pool::auto(),
        })
    }
}

/// The routed backend of the unified [`Scorer`](crate::Scorer) contract.
/// Lookups delegate to the inherent probed methods; with exhaustive probing
/// (the default) the full contract holds bit-identically to the packed
/// backend, with partial probing `top_k` truncates to `min(k, candidates)`
/// (see the module docs). [`Scorer::score_batch`](crate::Scorer::score_batch)
/// is a full similarity matrix and therefore always exhaustive, reported in
/// **cluster-major** stored order (the order of
/// [`RoutedClassMemory::labels`]).
impl crate::Scorer for RoutedClassMemory {
    type Query = [u64];
    type Batch = PackedQueryBatch;

    fn dim(&self) -> usize {
        self.dim
    }

    fn num_classes(&self) -> usize {
        self.len()
    }

    fn score_batch(&self, batch: &PackedQueryBatch) -> Matrix {
        assert_eq!(
            batch.dim(),
            self.dim,
            "query batch dimensionality must match the class memory"
        );
        let classes = self.len();
        if batch.is_empty() {
            return Matrix::zeros(0, classes);
        }
        let blocks = self.pool.map_chunks(batch.len(), |range| {
            let mut out = Vec::with_capacity(range.len() * classes);
            for q in range {
                for cluster in &self.clusters {
                    out.extend_from_slice(&cluster.scores(batch.row(q)));
                }
            }
            out
        });
        let mut data = Vec::with_capacity(batch.len() * classes);
        for block in blocks {
            data.extend_from_slice(&block);
        }
        Matrix::from_vec(batch.len(), classes, data)
    }

    fn nearest(&self, query: &[u64]) -> Option<(&str, f32)> {
        RoutedClassMemory::nearest(self, query)
    }

    fn top_k(&self, query: &[u64], k: usize) -> Vec<(&str, f32)> {
        RoutedClassMemory::top_k(self, query, k)
    }

    fn nearest_batch(&self, batch: &PackedQueryBatch) -> Vec<(&str, f32)> {
        RoutedClassMemory::nearest_batch(self, batch)
    }

    fn topk_batch(&self, batch: &PackedQueryBatch, k: usize) -> Vec<Vec<(&str, f32)>> {
        RoutedClassMemory::topk_batch(self, batch, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_signs(state: &mut u64, dim: usize) -> Vec<i8> {
        (0..dim)
            .map(|_| {
                *state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if *state >> 63 == 0 {
                    1
                } else {
                    -1
                }
            })
            .collect()
    }

    fn fixture(
        dim: usize,
        classes: usize,
        config: RoutedConfig,
    ) -> (RoutedClassMemory, PackedClassMemory, Vec<Vec<i8>>) {
        let mut state = 0xfeed_5eedu64;
        let mut mono = PackedClassMemory::new(dim);
        let protos: Vec<Vec<i8>> = (0..classes)
            .map(|c| {
                let row = lcg_signs(&mut state, dim);
                mono.insert_signs(format!("class{c:03}"), &row);
                row
            })
            .collect();
        let routed = RoutedClassMemory::from_packed(&mono, config);
        (routed, mono, protos)
    }

    #[test]
    fn full_probe_lookups_match_monolithic_bit_for_bit() {
        let dim = 130; // ragged on purpose
        let config = RoutedConfig {
            clusters: 4,
            ..RoutedConfig::default()
        };
        let (routed, mono, _) = fixture(dim, 23, config);
        assert_eq!(routed.len(), 23);
        assert!(routed.probes_exhaustively());
        let mut state = 3u64;
        for _ in 0..8 {
            let query = pack_signs(&lcg_signs(&mut state, dim));
            let (label, sim) = routed.nearest(&query).expect("non-empty");
            let (mono_index, mono_sim) = mono.nearest(&query).expect("non-empty");
            assert_eq!(label, mono.label(mono_index));
            assert_eq!(sim.to_bits(), mono_sim.to_bits());
            for k in [0usize, 1, 7, 23, 50] {
                let r: Vec<(&str, u32)> = routed
                    .top_k(&query, k)
                    .into_iter()
                    .map(|(l, s)| (l, s.to_bits()))
                    .collect();
                let m: Vec<(&str, u32)> = mono
                    .top_k(&query, k)
                    .into_iter()
                    .map(|(i, s)| (mono.label(i), s.to_bits()))
                    .collect();
                assert_eq!(r, m, "k={k}");
            }
        }
    }

    #[test]
    fn clustered_data_routes_to_few_candidates() {
        // Three well-separated centers with small per-class perturbations:
        // nprobe=1 should shortlist roughly a third of the classes and
        // still find the true nearest for unperturbed center queries.
        let dim = 256;
        let mut state = 7u64;
        let centers: Vec<Vec<i8>> = (0..3).map(|_| lcg_signs(&mut state, dim)).collect();
        let mut mono = PackedClassMemory::new(dim);
        for c in 0..30usize {
            let mut row = centers[c % 3].clone();
            // flip a handful of positions, distinct per class
            for f in 0..5 {
                let at = (c * 31 + f * 17) % dim;
                row[at] = -row[at];
            }
            mono.insert_signs(format!("class{c:03}"), &row);
        }
        let mut routed = RoutedClassMemory::from_packed(
            &mono,
            RoutedConfig {
                clusters: 3,
                ..RoutedConfig::default()
            },
        );
        routed.set_nprobe(1);
        assert!(!routed.probes_exhaustively());
        for (i, center) in centers.iter().enumerate() {
            let query = pack_signs(center);
            let candidates = routed.candidate_classes(&query);
            assert!(
                candidates < 30,
                "center {i}: probing all {candidates} classes is not sub-linear"
            );
            let (label, _) = routed.nearest(&query).expect("non-empty");
            let (mono_index, _) = mono.nearest(&query).expect("non-empty");
            assert_eq!(label, mono.label(mono_index), "center {i}");
        }
    }

    #[test]
    fn mutations_route_and_drift_deterministically() {
        let dim = 64;
        let config = RoutedConfig {
            clusters: 2,
            recluster_percent: 0, // isolate routing from re-clustering
            ..RoutedConfig::default()
        };
        let (mut routed, _, protos) = fixture(dim, 10, config);
        assert_eq!(routed.drift(), 0);
        let twin = routed.clone();
        let (cluster_a, replaced) = routed.add_class("newcomer", &protos[0]);
        assert!(!replaced);
        assert_eq!(routed.drift(), 1);
        // COW: only the destination cluster was deep-copied.
        let mut shared = 0;
        for c in 0..routed.num_clusters() {
            if Arc::ptr_eq(&routed.clusters[c], &twin.clusters[c]) {
                shared += 1;
            }
        }
        assert_eq!(shared, routed.num_clusters() - 1);
        // The clone routes identically.
        let mut twin = twin;
        let (cluster_b, _) = twin.add_class("newcomer", &protos[0]);
        assert_eq!(cluster_a, cluster_b);
        assert_eq!(routed, twin);
        // update re-routes, remove splices.
        assert!(routed.update_class("newcomer", &protos[5]));
        assert!(!routed.update_class("ghost", &protos[5]));
        assert!(routed.remove_class("newcomer"));
        assert!(!routed.remove_class("newcomer"));
        assert_eq!(routed.len(), 10);
    }

    #[test]
    fn recluster_fires_on_drift_and_preserves_results() {
        let dim = 96;
        let config = RoutedConfig {
            clusters: 3,
            recluster_percent: 50,
            ..RoutedConfig::default()
        };
        let (mut routed, mut mono, _) = fixture(dim, 20, config);
        let mut state = 11u64;
        // Additions grow the class count alongside drift, so cross the 50%
        // threshold with in-place updates (constant class count).
        for c in 0..4 {
            let row = lcg_signs(&mut state, dim);
            routed.add_class(format!("extra{c:02}"), &row);
            mono.insert_signs(format!("extra{c:02}"), &row);
        }
        for c in 0..12 {
            let row = lcg_signs(&mut state, dim);
            routed.update_class(&format!("class{c:03}"), &row);
            mono.insert_signs(format!("class{c:03}"), &row);
        }
        assert!(
            routed.drift() < 12,
            "drift must reset when re-clustering fires"
        );
        let query = pack_signs(&lcg_signs(&mut state, dim));
        let r: Vec<(&str, u32)> = routed
            .top_k(&query, 32)
            .into_iter()
            .map(|(l, s)| (l, s.to_bits()))
            .collect();
        let m: Vec<(&str, u32)> = mono
            .top_k(&query, 32)
            .into_iter()
            .map(|(i, s)| (mono.label(i), s.to_bits()))
            .collect();
        assert_eq!(r, m);
    }

    #[test]
    fn batch_lookups_match_single_query_lookups() {
        let dim = 70;
        let (routed, _, _) = fixture(
            dim,
            9,
            RoutedConfig {
                clusters: 2,
                ..RoutedConfig::default()
            },
        );
        let mut state = 21u64;
        let mut batch = PackedQueryBatch::new(dim);
        let queries: Vec<Vec<i8>> = (0..7)
            .map(|_| {
                let q = lcg_signs(&mut state, dim);
                batch.push_signs(&q);
                q
            })
            .collect();
        let nearest = routed.nearest_batch(&batch);
        let topk = routed.topk_batch(&batch, 4);
        for (q, signs) in queries.iter().enumerate() {
            let packed = pack_signs(signs);
            assert_eq!(nearest[q], routed.nearest(&packed).expect("non-empty"));
            assert_eq!(topk[q], routed.top_k(&packed, 4));
        }
        let empty = PackedQueryBatch::new(dim);
        assert!(routed.nearest_batch(&empty).is_empty());
        assert!(routed.topk_batch(&empty, 3).is_empty());
    }

    #[test]
    fn empty_memory_lookups() {
        let memory = RoutedClassMemory::new(32, RoutedConfig::default());
        let query = vec![0u64; 1];
        assert!(memory.is_empty());
        assert!(memory.nearest(&query).is_none());
        assert!(memory.top_k(&query, 3).is_empty());
        assert!(memory.probe_clusters(&query).is_empty());
        assert_eq!(memory.candidate_classes(&query), 0);
        assert_eq!(memory.live_clusters(), 0);
        assert!(memory.locate("nothing").is_none());
        assert!(memory.class_words("nothing").is_none());
    }

    #[test]
    #[should_panic(expected = "dimensionality must be positive")]
    fn zero_dim_rejected() {
        let _ = RoutedClassMemory::new(0, RoutedConfig::default());
    }

    /// Same seed, same insertion order ⇒ same clustering, even via
    /// different construction paths of the same rows.
    #[test]
    fn clustering_is_seed_deterministic() {
        let dim = 100;
        let config = RoutedConfig {
            clusters: 4,
            seed: 42,
            ..RoutedConfig::default()
        };
        let (a, mono, _) = fixture(dim, 15, config);
        let b = RoutedClassMemory::from_packed(&mono, config);
        assert_eq!(a, b);
        let different_seed =
            RoutedClassMemory::from_packed(&mono, RoutedConfig { seed: 43, ..config });
        // A different seed is allowed to (and here does) produce a
        // different structure; results at full probe stay identical.
        let query = pack_signs(&lcg_signs(&mut 9u64, dim));
        assert_eq!(a.top_k(&query, 15), different_seed.top_k(&query, 15));
    }

    /// Export → import round-trips the exact structure: equal memories,
    /// identical lookups, identical routing of the next mutation.
    #[test]
    fn serde_round_trip_preserves_structure_and_routing() {
        let dim = 70; // ragged tail on purpose
        let config = RoutedConfig {
            clusters: 3,
            recluster_percent: 0,
            ..RoutedConfig::default()
        };
        let (mut memory, _, protos) = fixture(dim, 9, config);
        memory.remove_class("class004");
        let json = serde_json::to_string_pretty(&memory).expect("serializes");
        let mut imported: RoutedClassMemory = serde_json::from_str(&json).expect("imports");
        assert_eq!(imported, memory);
        assert_eq!(imported.drift(), memory.drift());
        let query = pack_signs(&protos[2]);
        assert_eq!(imported.top_k(&query, 9), memory.top_k(&query, 9));
        let (cluster_a, _) = memory.add_class("next", &protos[0]);
        let (cluster_b, _) = imported.add_class("next", &protos[0]);
        assert_eq!(cluster_a, cluster_b, "routing must survive the round trip");
        assert_eq!(memory, imported);
    }

    #[test]
    fn serde_import_rejects_malformed_documents() {
        let (memory, _, _) = fixture(64, 6, RoutedConfig::default());
        let good = serde_json::to_string_pretty(&memory).expect("serializes");

        let bad_dim = good.replacen("\"dim\": 64", "\"dim\": 65", 1);
        assert!(serde_json::from_str::<RoutedClassMemory>(&bad_dim).is_err());

        let no_clusters = "{\"dim\": 64, \"clusters_config\": 0, \"nprobe\": 0, \"seed\": 1, \
                           \"kmeans_iters\": 4, \"recluster_percent\": 50, \"drift\": 0, \
                           \"centroids\": [], \"clusters\": []}";
        assert!(serde_json::from_str::<RoutedClassMemory>(no_clusters).is_err());

        // Duplicate a cluster wholesale: same labels in two clusters, and
        // (to hit the duplicate check, not the count check) duplicate the
        // centroid words too.
        let value = serde::Serialize::to_value(&memory);
        let dup = match value {
            Value::Object(mut entries) => {
                let mut extra_centroid: Option<Value> = None;
                for (key, v) in &mut entries {
                    if key == "clusters" {
                        if let Value::Array(clusters) = v {
                            let first = clusters[0].clone();
                            clusters.push(first);
                        }
                    }
                    if key == "centroids" {
                        if let Value::Array(words) = v {
                            let wpr = memory.words_per_row();
                            let mut more = words.clone();
                            more.extend(words[..wpr].to_vec());
                            extra_centroid = Some(Value::Array(more));
                        }
                    }
                }
                for (key, v) in &mut entries {
                    if key == "centroids" {
                        *v = extra_centroid.clone().expect("centroids present");
                    }
                }
                Value::Object(entries)
            }
            _ => unreachable!("memories serialize as objects"),
        };
        let err = <RoutedClassMemory as serde::Deserialize>::from_value(&dup);
        assert!(err.is_err(), "duplicate labels across clusters must fail");

        // Centroid smuggling tail bits past dim.
        let ragged = fixture(70, 4, RoutedConfig::default()).0;
        let value = serde::Serialize::to_value(&ragged);
        let smuggled = match value {
            Value::Object(mut entries) => {
                for (key, v) in &mut entries {
                    if key == "centroids" {
                        if let Value::Array(words) = v {
                            let last = words.len() - 1;
                            words[last] = u64::MAX.to_value();
                        }
                    }
                }
                Value::Object(entries)
            }
            _ => unreachable!(),
        };
        assert!(<RoutedClassMemory as serde::Deserialize>::from_value(&smuggled).is_err());
    }
}
