//! Batched, multi-threaded inference engine for HDC associative lookup and
//! zero-shot-classification scoring.
//!
//! The classic efficient-HDC-inference observation is that one-vs-all
//! associative lookup over binary hypervectors reduces to a dense
//! XOR-popcount sweep that vectorises and parallelises almost perfectly.
//! This crate is the single implementation of that hot path for the whole
//! workspace:
//!
//! * [`PackedClassMemory`] — every class/prototype hypervector packed into
//!   one contiguous `u64` word-matrix; one-vs-all Hamming similarity is a
//!   word-tiled, blocked popcount sweep.
//! * [`ShardedClassMemory`] — class prototypes split across N packed shards
//!   with copy-on-write `Arc` sharing: incremental `add_class` /
//!   `update_class` / `remove_class` repack only the touched shard, and the
//!   cross-shard top-k merge (on integer Hamming distances plus label
//!   tie-breaks) is bit-identical to the monolithic scorer.
//!   `hdc::ItemMemory` is built on one and delegates `nearest`/`top_k` to
//!   it; the `serve` crate hot-swaps snapshots of one under live traffic.
//! * [`RoutedClassMemory`] — a two-level coarse-to-fine index: seeded
//!   k-means centroids route each query to its `nprobe` nearest clusters
//!   (each a per-cluster packed shard), and the candidates are exactly
//!   re-ranked on `(hamming, label)` — sub-linear candidate generation with
//!   bit-identical results under full probing.
//! * [`PackedQueryBatch`] + [`BatchScorer`] — batched `score_batch` /
//!   `nearest_batch` / `topk_batch`, chunked across a vendored
//!   work-stealing-free scoped-thread pool ([`minipool::Pool`]).
//! * [`dense`] — row-parallel float scoring (cosine logits, bilinear
//!   compatibility) used by the `hdc_zsc` model's inference path and the
//!   `baselines` predictors, plus [`DenseClassMemory`], the float-backed
//!   class memory.
//! * [`Scorer`] — the one trait unifying all three class-memory backends
//!   (dense, packed, sharded): `score_batch` / `nearest` / `top_k` with a
//!   pinned similarity-descending, label-ascending tie-break and the
//!   `min(k, stored)` truncation contract.
//!
//! # Exactness contract
//!
//! Every path promises **bit-identical** results to the scalar code it
//! replaces, for every thread count: packed similarities are computed from
//! integer Hamming distances exactly as `dot / dim`, ties resolve on
//! integers plus a deterministic label order, and the dense helpers apply
//! the unmodified serial kernels to independent row chunks. The crate's
//! `tests/parity.rs` property tests enforce this across ragged (non-64
//! multiple) dimensions, batch sizes and thread counts.
//!
//! # Example
//!
//! ```
//! use engine::{BatchScorer, PackedClassMemory, PackedQueryBatch};
//!
//! let mut memory = PackedClassMemory::new(6);
//! memory.insert_signs("left", &[-1, -1, -1, 1, 1, 1]);
//! memory.insert_signs("right", &[1, 1, 1, -1, -1, -1]);
//!
//! let mut batch = PackedQueryBatch::new(6);
//! batch.push_signs(&[-1, -1, -1, 1, 1, -1]);
//! batch.push_signs(&[1, 1, 1, 1, -1, -1]);
//!
//! let scorer = BatchScorer::new(&memory).with_threads(2);
//! let nearest = scorer.nearest_batch(&batch);
//! assert_eq!(memory.label(nearest[0].0), "left");
//! assert_eq!(memory.label(nearest[1].0), "right");
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod dense;
pub mod index;
pub mod packed;
pub mod scorer;
pub mod sharded;

pub use batch::{BatchScorer, PackedQueryBatch};
pub use dense::{DenseClassMemory, DenseMetric};
pub use index::{RoutedClassMemory, RoutedConfig};
pub use minipool::Pool;
pub use packed::{
    mask_tail_word, pack_float_signs, pack_signs, pack_signs_into, similarity_from_hamming,
    words_per_row, PackedClassMemory,
};
pub use scorer::Scorer;
pub use sharded::ShardedClassMemory;
