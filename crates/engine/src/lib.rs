//! Batched, multi-threaded inference engine for HDC associative lookup and
//! zero-shot-classification scoring.
//!
//! The classic efficient-HDC-inference observation is that one-vs-all
//! associative lookup over binary hypervectors reduces to a dense
//! XOR-popcount sweep that vectorises and parallelises almost perfectly.
//! This crate is the single implementation of that hot path for the whole
//! workspace:
//!
//! * [`PackedClassMemory`] — every class/prototype hypervector packed into
//!   one contiguous `u64` word-matrix; one-vs-all Hamming similarity is a
//!   word-tiled, blocked popcount sweep. `hdc::ItemMemory` keeps one of
//!   these in sync and delegates `nearest`/`top_k` to it.
//! * [`PackedQueryBatch`] + [`BatchScorer`] — batched `score_batch` /
//!   `nearest_batch` / `topk_batch`, chunked across a vendored
//!   work-stealing-free scoped-thread pool ([`minipool::Pool`]).
//! * [`dense`] — row-parallel float scoring (cosine logits, bilinear
//!   compatibility) used by the `hdc_zsc` model's inference path and the
//!   `baselines` predictors.
//!
//! # Exactness contract
//!
//! Every path promises **bit-identical** results to the scalar code it
//! replaces, for every thread count: packed similarities are computed from
//! integer Hamming distances exactly as `dot / dim`, ties resolve on
//! integers plus a deterministic label order, and the dense helpers apply
//! the unmodified serial kernels to independent row chunks. The crate's
//! `tests/parity.rs` property tests enforce this across ragged (non-64
//! multiple) dimensions, batch sizes and thread counts.
//!
//! # Example
//!
//! ```
//! use engine::{BatchScorer, PackedClassMemory, PackedQueryBatch};
//!
//! let mut memory = PackedClassMemory::new(6);
//! memory.insert_signs("left", &[-1, -1, -1, 1, 1, 1]);
//! memory.insert_signs("right", &[1, 1, 1, -1, -1, -1]);
//!
//! let mut batch = PackedQueryBatch::new(6);
//! batch.push_signs(&[-1, -1, -1, 1, 1, -1]);
//! batch.push_signs(&[1, 1, 1, 1, -1, -1]);
//!
//! let scorer = BatchScorer::new(&memory).with_threads(2);
//! let nearest = scorer.nearest_batch(&batch);
//! assert_eq!(memory.label(nearest[0].0), "left");
//! assert_eq!(memory.label(nearest[1].0), "right");
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod dense;
pub mod packed;

pub use batch::{BatchScorer, PackedQueryBatch};
pub use minipool::Pool;
pub use packed::{
    mask_tail_word, pack_float_signs, pack_signs, pack_signs_into, similarity_from_hamming,
    words_per_row, PackedClassMemory,
};
