//! Property-based tests for the HDC substrate: algebraic laws of binding,
//! bundling and permutation, and consistency between the binary and bipolar
//! representations.

use hdc::{bundler::bundle_bipolar, BinaryHypervector, BipolarHypervector, Bundler};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy producing a pair of independent random bipolar hypervectors of a
/// shared (moderate) dimensionality plus the RNG seed used to build them.
fn hv_pair() -> impl Strategy<Value = (BipolarHypervector, BipolarHypervector)> {
    (64usize..1024, any::<u64>()).prop_map(|(dim, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            BipolarHypervector::random(dim, &mut rng),
            BipolarHypervector::random(dim, &mut rng),
        )
    })
}

fn hv_triple() -> impl Strategy<Value = (BipolarHypervector, BipolarHypervector, BipolarHypervector)>
{
    (64usize..512, any::<u64>()).prop_map(|(dim, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            BipolarHypervector::random(dim, &mut rng),
            BipolarHypervector::random(dim, &mut rng),
            BipolarHypervector::random(dim, &mut rng),
        )
    })
}

proptest! {
    #[test]
    fn binding_is_commutative((a, b) in hv_pair()) {
        prop_assert_eq!(a.bind(&b), b.bind(&a));
    }

    #[test]
    fn binding_is_self_inverse((a, b) in hv_pair()) {
        prop_assert_eq!(a.bind(&b).bind(&b), a);
    }

    #[test]
    fn binding_is_associative((a, b, c) in hv_triple()) {
        prop_assert_eq!(a.bind(&b).bind(&c), a.bind(&b.bind(&c)));
    }

    #[test]
    fn binding_preserves_similarity((a, b, c) in hv_triple()) {
        let before = a.cosine(&b);
        let after = a.bind(&c).cosine(&b.bind(&c));
        prop_assert!((before - after).abs() < 1e-6);
    }

    #[test]
    fn cosine_is_symmetric_and_bounded((a, b) in hv_pair()) {
        let ab = a.cosine(&b);
        let ba = b.cosine(&a);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!((-1.0..=1.0).contains(&ab));
        prop_assert!((a.cosine(&a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn binary_bipolar_roundtrip((a, _b) in hv_pair()) {
        prop_assert_eq!(a.to_binary().to_bipolar(), a);
    }

    #[test]
    fn binary_similarity_equals_bipolar_cosine((a, b) in hv_pair()) {
        let binary_sim = a.to_binary().similarity(&b.to_binary());
        prop_assert!((binary_sim - a.cosine(&b)).abs() < 1e-5);
    }

    #[test]
    fn xor_binding_commutes_with_conversion((a, b) in hv_pair()) {
        let via_binary = a.to_binary().bind(&b.to_binary()).to_bipolar();
        prop_assert_eq!(via_binary, a.bind(&b));
    }

    #[test]
    fn permutation_is_invertible((a, _b) in hv_pair(), shift in 0usize..2048) {
        let d = a.dim();
        let permuted = a.permute(shift);
        let back = permuted.permute(d - (shift % d));
        prop_assert_eq!(back, a);
    }

    #[test]
    fn permutation_preserves_pairwise_similarity((a, b) in hv_pair(), shift in 0usize..2048) {
        let before = a.cosine(&b);
        let after = a.permute(shift).cosine(&b.permute(shift));
        prop_assert!((before - after).abs() < 1e-6);
    }

    #[test]
    fn bundle_contains_every_item(seed in any::<u64>(), n in 1usize..9) {
        let dim = 2048;
        let mut rng = StdRng::seed_from_u64(seed);
        let items: Vec<_> = (0..n).map(|_| BipolarHypervector::random(dim, &mut rng)).collect();
        let bundle = bundle_bipolar(&items).expect("non-empty");
        // Each constituent must be markedly more similar to the bundle than
        // an unrelated random hypervector would be (|cos| ≈ 0.02 at d=2048).
        for item in &items {
            prop_assert!(bundle.cosine(item) > 0.15, "cos = {}", bundle.cosine(item));
        }
    }

    #[test]
    fn binary_hamming_triangle_inequality(seed in any::<u64>(), dim in 64usize..512) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = BinaryHypervector::random(dim, &mut rng);
        let b = BinaryHypervector::random(dim, &mut rng);
        let c = BinaryHypervector::random(dim, &mut rng);
        prop_assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
    }

    #[test]
    fn binary_popcount_bounds(seed in any::<u64>(), dim in 1usize..512) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = BinaryHypervector::random(dim, &mut rng);
        prop_assert!(a.count_ones() <= dim);
    }
}

// Exactness laws of the i32-counter bundler that streaming continual
// learning builds on: addition order never matters, any partition of a
// stream across bundlers merges back to the sequential result, and the
// counters stay exact at counts far past what a vote-margin could track.
proptest! {
    #[test]
    fn bundling_is_order_independent(seed in any::<u64>(), n in 2usize..10) {
        let dim = 256;
        let mut rng = StdRng::seed_from_u64(seed);
        let items: Vec<_> =
            (0..n).map(|_| BipolarHypervector::random(dim, &mut rng)).collect();
        // A seed-derived rotation gives a nontrivial permutation of the
        // addition order without needing a permutation strategy.
        let shift = (seed % n as u64) as usize;
        let mut forward = Bundler::new(dim);
        let mut rotated = Bundler::new(dim);
        for hv in &items {
            forward.add(hv);
        }
        for i in 0..n {
            rotated.add(&items[(i + shift) % n]);
        }
        prop_assert_eq!(forward.counts(), rotated.counts());
        prop_assert_eq!(forward.finish(), rotated.finish());
    }

    #[test]
    fn merge_equals_sequential_addition(seed in any::<u64>(), n in 1usize..12, split in 0usize..12) {
        let dim = 192;
        let split = split % (n + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let items: Vec<_> =
            (0..n).map(|_| BipolarHypervector::random(dim, &mut rng)).collect();
        let mut sequential = Bundler::new(dim);
        for hv in &items {
            sequential.add(hv);
        }
        let mut left = Bundler::new(dim);
        let mut right = Bundler::new(dim);
        for hv in &items[..split] {
            left.add(hv);
        }
        for hv in &items[split..] {
            right.add(hv);
        }
        left.merge(&right);
        prop_assert_eq!(left.counts(), sequential.counts());
        prop_assert_eq!(left.len(), sequential.len());
        if !left.is_empty() {
            prop_assert_eq!(left.finish(), sequential.finish());
        }
    }

    #[test]
    fn counters_stay_exact_at_large_counts(seed in any::<u64>(), weight in 1i32..1_000_000) {
        // Weighted adds reach counter magnitudes a float (or saturating
        // vote) accumulator would corrupt; the i32 counters must hold the
        // exact algebraic sum.
        let dim = 64;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = BipolarHypervector::random(dim, &mut rng);
        let b = BipolarHypervector::random(dim, &mut rng);
        let mut bundler = Bundler::new(dim);
        bundler.try_add_weighted(&a, weight).expect("same dim");
        bundler.try_add_weighted(&b, weight - 1).expect("same dim");
        bundler.try_add_weighted(&a, -weight).expect("same dim");
        // The ±weight contributions of `a` cancel exactly, leaving only
        // (weight - 1) · b — no drift, no rounding, at any magnitude.
        let expected: Vec<i32> =
            b.as_slice().iter().map(|&s| (weight - 1) * s as i32).collect();
        prop_assert_eq!(bundler.counts(), expected.as_slice());
        if weight > 1 {
            prop_assert_eq!(bundler.finish(), b);
        }
    }
}

// Round-trip properties of the binary↔bipolar isomorphism (`+1 ↔ 0`,
// `-1 ↔ 1`): the algebra (bind, bundle, similarity) must commute with the
// conversion in both directions.
proptest! {
    #[test]
    fn binary_roundtrip_from_binary_side(seed in any::<u64>(), dim in 1usize..1024) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = BinaryHypervector::random(dim, &mut rng);
        prop_assert_eq!(a.to_bipolar().to_binary(), a);
    }

    #[test]
    fn bind_commutes_with_conversion_bipolar_to_binary((a, b) in hv_pair()) {
        let via_bipolar = a.bind(&b).to_binary();
        prop_assert_eq!(via_bipolar, a.to_binary().bind(&b.to_binary()));
    }

    #[test]
    fn similarity_commutes_with_conversion_binary_to_bipolar(
        seed in any::<u64>(),
        dim in 64usize..1024,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = BinaryHypervector::random(dim, &mut rng);
        let b = BinaryHypervector::random(dim, &mut rng);
        let binary_sim = a.similarity(&b);
        let bipolar_sim = a.to_bipolar().cosine(&b.to_bipolar());
        prop_assert!((binary_sim - bipolar_sim).abs() < 1e-5);
    }

    #[test]
    fn bundle_commutes_with_conversion(seed in any::<u64>(), k in 0usize..4) {
        // Odd operand counts so the majority vote is tie-free and the
        // property is intrinsic to the algebra, not to tie-break policy.
        let n = 2 * k + 1;
        let dim = 1024;
        let mut rng = StdRng::seed_from_u64(seed);
        let items: Vec<BipolarHypervector> =
            (0..n).map(|_| BipolarHypervector::random(dim, &mut rng)).collect();
        let binary_items: Vec<BinaryHypervector> =
            items.iter().map(BipolarHypervector::to_binary).collect();
        let via_bipolar = bundle_bipolar(&items).expect("non-empty").to_binary();
        let via_binary = hdc::bundler::bundle_binary(&binary_items).expect("non-empty");
        prop_assert_eq!(via_bipolar, via_binary);
    }

    #[test]
    fn bundle_similarity_commutes_with_conversion(seed in any::<u64>(), k in 1usize..4) {
        let n = 2 * k + 1;
        let dim = 2048;
        let mut rng = StdRng::seed_from_u64(seed);
        let items: Vec<BipolarHypervector> =
            (0..n).map(|_| BipolarHypervector::random(dim, &mut rng)).collect();
        let bundle = bundle_bipolar(&items).expect("non-empty");
        for item in &items {
            let bipolar_sim = bundle.cosine(item);
            let binary_sim = bundle.to_binary().similarity(&item.to_binary());
            prop_assert!(
                (bipolar_sim - binary_sim).abs() < 1e-5,
                "cosine {} vs hamming-derived {}",
                bipolar_sim,
                binary_sim
            );
        }
    }
}
