//! Hyperdimensional computing (HDC) substrate for the HDC-ZSC reproduction.
//!
//! The paper's attribute encoder is built entirely from *stationary* binary /
//! bipolar hypervectors: an attribute-**group** codebook (`G = 28` atomic
//! hypervectors for CUB-200), an attribute-**value** codebook (`V = 61`), and
//! an attribute dictionary of `α = 312` codevectors materialised on the fly by
//! *binding* the appropriate group and value hypervectors. This crate provides
//! all the HDC machinery that encoder needs, plus the usual HDC toolkit
//! (bundling, permutation, item memories, similarity search) so the library is
//! useful beyond the single paper experiment.
//!
//! Two concrete hypervector representations are provided:
//!
//! * [`BinaryHypervector`] — bit-packed (`u64` words) dense binary vectors;
//!   binding is XOR, bundling is majority vote, similarity is (normalised)
//!   Hamming distance. This is the "edge device" representation the paper's
//!   outlook section targets.
//! * [`BipolarHypervector`] — `{-1, +1}` vectors stored as `i8`; binding is
//!   the Hadamard (elementwise) product, bundling is the sign of the sum,
//!   similarity is the cosine. This is the representation used during
//!   training because it interoperates directly with floating-point matrices.
//!
//! The two representations are isomorphic (`+1 ↔ 0`, `-1 ↔ 1`) and the crate
//! provides loss-free conversions plus property tests asserting that binding
//! and similarity commute with the conversion.
//!
//! # Example
//!
//! ```
//! use hdc::{BipolarHypervector, Codebook, HdcConfig};
//! use rand::SeedableRng;
//!
//! let cfg = HdcConfig::new(2048);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let groups = Codebook::random(4, &cfg, &mut rng);
//! let values = Codebook::random(6, &cfg, &mut rng);
//! // Bind "group 2" with "value 5" to obtain a fresh quasi-orthogonal codevector.
//! let bound = groups.get(2).bind(values.get(5));
//! assert!(bound.cosine(groups.get(2)).abs() < 0.1);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod accumulator;
pub mod binary;
pub mod bipolar;
pub mod bundler;
pub mod codebook;
pub mod encoding;
pub mod item_memory;
pub mod similarity;

pub use accumulator::ClassAccumulator;
pub use binary::BinaryHypervector;
pub use bipolar::BipolarHypervector;
pub use bundler::Bundler;
pub use codebook::{Codebook, CodebookMemory};
pub use encoding::LevelEncoder;
pub use item_memory::ItemMemory;
pub use similarity::{cosine, hamming_distance, normalized_hamming_similarity};

use serde::{Deserialize, Serialize};

/// Configuration shared by hypervector constructors: the dimensionality of
/// the hyperdimensional space.
///
/// The paper uses `d = 1536` (preferred) and `d = 2048`; any positive
/// dimensionality is supported.
///
/// # Example
///
/// ```
/// let cfg = hdc::HdcConfig::new(1536);
/// assert_eq!(cfg.dim(), 1536);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HdcConfig {
    dim: usize,
}

impl HdcConfig {
    /// Creates a configuration for `dim`-dimensional hypervectors.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "hypervector dimensionality must be positive");
        Self { dim }
    }

    /// Dimensionality of the hypervectors.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Default for HdcConfig {
    /// The paper's preferred dimensionality, `d = 1536`.
    fn default() -> Self {
        Self { dim: 1536 }
    }
}

/// Errors produced by HDC operations on incompatible operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HdcError {
    /// Two hypervectors of different dimensionality were combined.
    DimensionMismatch {
        /// Dimensionality of the left operand.
        left: usize,
        /// Dimensionality of the right operand.
        right: usize,
    },
    /// An index into a codebook or item memory was out of range.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of stored entries.
        len: usize,
    },
    /// An empty input was provided where at least one element is required.
    EmptyInput,
}

impl std::fmt::Display for HdcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HdcError::DimensionMismatch { left, right } => {
                write!(f, "hypervector dimensionality mismatch: {left} vs {right}")
            }
            HdcError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for {len} entries")
            }
            HdcError::EmptyInput => write!(f, "operation requires at least one hypervector"),
        }
    }
}

impl std::error::Error for HdcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_matches_paper() {
        assert_eq!(HdcConfig::default().dim(), 1536);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn config_rejects_zero_dim() {
        let _ = HdcConfig::new(0);
    }

    #[test]
    fn error_display() {
        let e = HdcError::DimensionMismatch { left: 8, right: 16 };
        assert!(e.to_string().contains("8 vs 16"));
        let e = HdcError::IndexOutOfRange { index: 5, len: 3 };
        assert!(e.to_string().contains("index 5"));
        assert!(HdcError::EmptyInput.to_string().contains("at least one"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HdcError>();
    }
}
