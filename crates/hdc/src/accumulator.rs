//! Persistable per-class bundling state for streaming continual learning.
//!
//! HDC prototype learning is naturally incremental: a class prototype is the
//! elementwise sign of an exact `i32` counter sum over its examples
//! ([`Bundler`]), so folding one more example is *sum + re-sign* — order
//! independent, exact at any count, and bit-reproducible from the counters
//! alone. [`ClassAccumulator`] keeps one such counter state per class label,
//! which is everything a serving layer needs to bundle streamed labeled
//! examples into existing class hypervectors and to resume the stream
//! exactly after a crash: persist the counters, reload them, and the next
//! re-signed prototype is bit-identical to the uninterrupted run.
//!
//! # Example
//!
//! ```
//! use hdc::{BipolarHypervector, ClassAccumulator};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut acc = ClassAccumulator::new(256);
//! for _ in 0..3 {
//!     let example = BipolarHypervector::random(256, &mut rng);
//!     acc.observe("sparrow", &example).unwrap();
//! }
//! let prototype = acc.prototype("sparrow").unwrap();
//! assert_eq!(prototype.dim(), 256);
//! assert_eq!(acc.observations("sparrow"), Some(3));
//! ```

use crate::{BipolarHypervector, Bundler, HdcError};
use serde::{de, DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// Per-class exact counter state, keyed by label; see the module docs.
///
/// Classes are held in label order (a `BTreeMap`), so iteration — and the
/// serialized form — is deterministic regardless of observation order.
///
/// # Serialization
///
/// Serializes as `{ "dim": …, "classes": [ { "label", "n", "counts" }, … ] }`
/// with classes in label order. Deserialization validates the state: a
/// positive `dim`, per-class counts of exactly `dim` entries, at least one
/// observation per stored class, no count magnitude exceeding the
/// observation count (accumulators only ever fold unit-weight examples), and
/// no duplicate labels.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassAccumulator {
    dim: usize,
    classes: BTreeMap<String, Bundler>,
}

impl ClassAccumulator {
    /// Creates an empty accumulator for hypervectors of dimensionality
    /// `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            dim,
            classes: BTreeMap::new(),
        }
    }

    /// Dimensionality of the accumulated hypervectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes holding accumulated state.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Returns `true` when no class has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Returns `true` when `label` holds accumulated state.
    pub fn contains(&self, label: &str) -> bool {
        self.classes.contains_key(label)
    }

    /// The stored labels, in sorted order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.classes.keys().map(String::as_str)
    }

    /// The raw counter state of one class, when it has been observed.
    pub fn counts(&self, label: &str) -> Option<&[i32]> {
        self.classes.get(label).map(Bundler::counts)
    }

    /// How many examples `label` has folded in, when it has been observed.
    pub fn observations(&self, label: &str) -> Option<usize> {
        self.classes.get(label).map(Bundler::len)
    }

    /// Folds one example into `label`'s counters, creating the class state
    /// on first observation. Exact integer addition: any permutation of the
    /// same examples yields identical counters.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] when the example's
    /// dimensionality differs from the accumulator's.
    pub fn observe(
        &mut self,
        label: impl Into<String>,
        example: &BipolarHypervector,
    ) -> Result<(), HdcError> {
        if example.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: example.dim(),
            });
        }
        let dim = self.dim;
        self.classes
            .entry(label.into())
            .or_insert_with(|| Bundler::new(dim))
            .try_add(example)
    }

    /// Re-signs `label`'s counters into its current prototype (exact ties
    /// broken by the bundler's deterministic tie-break hypervector), or
    /// `None` when the class has no accumulated state.
    pub fn prototype(&self, label: &str) -> Option<BipolarHypervector> {
        self.classes
            .get(label)
            .map(|b| b.try_finish().expect("stored class state is non-empty"))
    }

    /// Drops `label`'s accumulated state, returning whether it existed.
    pub fn remove(&mut self, label: &str) -> bool {
        self.classes.remove(label).is_some()
    }

    /// Drops every class's accumulated state (e.g. after a full model swap
    /// invalidates the prototypes the counters were seeded from).
    pub fn clear(&mut self) {
        self.classes.clear();
    }

    /// Merges another accumulator into this one, class by class
    /// ([`Bundler::merge`]): the result is as if every example observed by
    /// `other` had been observed here instead.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] when the dimensionalities
    /// differ; nothing is merged then.
    pub fn merge(&mut self, other: &ClassAccumulator) -> Result<(), HdcError> {
        if other.dim != self.dim {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: other.dim,
            });
        }
        let dim = self.dim;
        for (label, bundler) in &other.classes {
            self.classes
                .entry(label.clone())
                .or_insert_with(|| Bundler::new(dim))
                .try_merge(bundler)?;
        }
        Ok(())
    }
}

impl Serialize for ClassAccumulator {
    fn to_value(&self) -> Value {
        let classes: Vec<Value> = self
            .classes
            .iter()
            .map(|(label, bundler)| {
                Value::Object(vec![
                    ("label".to_string(), label.to_value()),
                    ("n".to_string(), bundler.len().to_value()),
                    ("counts".to_string(), bundler.counts().to_vec().to_value()),
                ])
            })
            .collect();
        Value::Object(vec![
            ("dim".to_string(), self.dim.to_value()),
            ("classes".to_string(), Value::Array(classes)),
        ])
    }
}

impl Deserialize for ClassAccumulator {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = de::expect_object(value, "ClassAccumulator")?;
        let dim: usize = de::field(entries, "dim", "ClassAccumulator")?;
        if dim == 0 {
            return Err(DeError::new("accumulator dimensionality must be positive"));
        }
        let classes_value = entries
            .iter()
            .find(|(k, _)| k == "classes")
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::missing_field("classes", "ClassAccumulator"))?;
        let Value::Array(items) = classes_value else {
            return Err(DeError::expected("array", classes_value).in_field("classes"));
        };
        let mut classes = BTreeMap::new();
        for item in items {
            let fields = de::expect_object(item, "ClassAccumulator class")?;
            let label: String = de::field(fields, "label", "ClassAccumulator class")?;
            let n: usize = de::field(fields, "n", "ClassAccumulator class")?;
            let counts: Vec<i32> = de::field(fields, "counts", "ClassAccumulator class")?;
            if counts.len() != dim {
                return Err(DeError::new(format!(
                    "class `{label}` carries {} counts for dimensionality {dim}",
                    counts.len()
                )));
            }
            if n == 0 {
                return Err(DeError::new(format!(
                    "class `{label}` stores state without any observation"
                )));
            }
            // Unit-weight folds bound every counter by the observation
            // count; state outside that envelope cannot have come from an
            // accumulator and is rejected as corrupt.
            let bound = u32::try_from(n).unwrap_or(u32::MAX);
            if counts.iter().any(|c| c.unsigned_abs() > bound) {
                return Err(DeError::new(format!(
                    "class `{label}` carries a count exceeding its {n} observations"
                )));
            }
            let tie_break_seed = Bundler::new(dim).tie_break_seed();
            let bundler = Bundler::from_parts(counts, n, tie_break_seed)
                .map_err(|e| DeError::new(e.to_string()))?;
            if classes.insert(label.clone(), bundler).is_some() {
                return Err(DeError::new(format!("duplicate class `{label}`")));
            }
        }
        Ok(Self { dim, classes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_examples(n: usize, dim: usize, seed: u64) -> Vec<BipolarHypervector> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| BipolarHypervector::random(dim, &mut rng))
            .collect()
    }

    #[test]
    fn observe_is_order_independent() {
        let examples = random_examples(6, 128, 10);
        let mut forward = ClassAccumulator::new(128);
        let mut backward = ClassAccumulator::new(128);
        for hv in &examples {
            forward.observe("c", hv).expect("same dim");
        }
        for hv in examples.iter().rev() {
            backward.observe("c", hv).expect("same dim");
        }
        assert_eq!(forward.counts("c"), backward.counts("c"));
        assert_eq!(forward.prototype("c"), backward.prototype("c"));
    }

    #[test]
    fn prototype_matches_direct_bundling() {
        let examples = random_examples(5, 512, 11);
        let mut acc = ClassAccumulator::new(512);
        for hv in &examples {
            acc.observe("c", hv).expect("same dim");
        }
        let direct = crate::bundler::bundle_bipolar(&examples).expect("non-empty");
        assert_eq!(acc.prototype("c").expect("observed"), direct);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut acc = ClassAccumulator::new(64);
        let wrong = BipolarHypervector::ones(32);
        assert!(matches!(
            acc.observe("c", &wrong),
            Err(HdcError::DimensionMismatch {
                left: 64,
                right: 32
            })
        ));
        assert!(acc.is_empty());
    }

    #[test]
    fn remove_and_clear_drop_state() {
        let examples = random_examples(2, 64, 12);
        let mut acc = ClassAccumulator::new(64);
        acc.observe("a", &examples[0]).expect("same dim");
        acc.observe("b", &examples[1]).expect("same dim");
        assert_eq!(acc.len(), 2);
        assert!(acc.remove("a"));
        assert!(!acc.remove("a"));
        assert!(acc.contains("b"));
        acc.clear();
        assert!(acc.is_empty());
        assert_eq!(acc.prototype("b"), None);
    }

    #[test]
    fn merge_matches_single_stream() {
        let examples = random_examples(8, 128, 13);
        let mut whole = ClassAccumulator::new(128);
        let mut left = ClassAccumulator::new(128);
        let mut right = ClassAccumulator::new(128);
        for (i, hv) in examples.iter().enumerate() {
            let label = if i % 2 == 0 { "even" } else { "odd" };
            whole.observe(label, hv).expect("same dim");
            let half = if i < 4 { &mut left } else { &mut right };
            half.observe(label, hv).expect("same dim");
        }
        left.merge(&right).expect("same dim");
        for label in ["even", "odd"] {
            assert_eq!(left.counts(label), whole.counts(label));
            assert_eq!(left.observations(label), whole.observations(label));
        }
        let mut wrong = ClassAccumulator::new(64);
        assert!(wrong.merge(&whole).is_err());
    }

    #[test]
    fn serde_round_trip_is_bit_exact() {
        let examples = random_examples(7, 96, 14);
        let mut acc = ClassAccumulator::new(96);
        for (i, hv) in examples.iter().enumerate() {
            acc.observe(format!("class_{}", i % 3), hv).expect("dim");
        }
        let json = serde_json::to_string(&acc.to_value()).expect("serializable");
        let value = serde_json::parse_value(&json).expect("valid JSON");
        let restored = ClassAccumulator::from_value(&value).expect("valid state");
        assert_eq!(restored.dim(), acc.dim());
        assert_eq!(restored.len(), acc.len());
        for label in ["class_0", "class_1", "class_2"] {
            assert_eq!(restored.counts(label), acc.counts(label));
            assert_eq!(restored.observations(label), acc.observations(label));
            assert_eq!(restored.prototype(label), acc.prototype(label));
        }
    }

    #[test]
    fn deserialization_validates_state() {
        let examples = random_examples(1, 8, 15);
        let mut acc = ClassAccumulator::new(8);
        acc.observe("c", &examples[0]).expect("dim");
        let good = acc.to_value();
        let corrupt = |edit: &dyn Fn(&mut Value)| {
            let mut v = good.clone();
            edit(&mut v);
            ClassAccumulator::from_value(&v)
        };
        // A count magnitude past the observation total is impossible state.
        assert!(corrupt(&|v| set_count(v, 5.0)).is_err());
        // Zero observations cannot hold state.
        assert!(corrupt(&|v| set_class_field(v, "n", Value::Number(0.0))).is_err());
        // Counts must match the declared dimensionality.
        assert!(
            corrupt(&|v| set_class_field(v, "counts", Value::Array(vec![Value::Number(1.0)])))
                .is_err()
        );
        // Dimensionality must be positive.
        assert!(corrupt(&|v| set_field(v, "dim", Value::Number(0.0))).is_err());
        // The untouched document still loads.
        assert!(ClassAccumulator::from_value(&good).is_ok());
    }

    fn set_field(value: &mut Value, name: &str, to: Value) {
        let Value::Object(entries) = value else {
            panic!("expected object")
        };
        for (k, v) in entries {
            if k == name {
                *v = to;
                return;
            }
        }
        panic!("field `{name}` not found");
    }

    fn set_class_field(value: &mut Value, name: &str, to: Value) {
        let Value::Object(entries) = value else {
            panic!("expected object")
        };
        for (k, v) in entries {
            if k == "classes" {
                let Value::Array(items) = v else {
                    panic!("expected array")
                };
                set_field(&mut items[0], name, to);
                return;
            }
        }
        panic!("classes not found");
    }

    fn set_count(value: &mut Value, to: f64) {
        set_class_field(value, "counts", Value::Array(vec![Value::Number(to); 8]));
    }
}
