//! Bit-packed dense binary hypervectors.
//!
//! Bits are stored in `u64` words; bit `i` of the hypervector lives at word
//! `i / 64`, bit position `i % 64`. Unused bits in the final word are kept at
//! zero so popcount-based operations stay exact.

use crate::{BipolarHypervector, HdcError};
use rand::Rng;
use serde::{de, DeError, Deserialize, Serialize, Value};

/// A dense binary hypervector packed into `u64` words.
///
/// Binding is elementwise XOR, bundling is bitwise majority, and similarity is
/// the normalised Hamming similarity `1 − 2·hamming/d ∈ [-1, 1]` (so that it
/// matches the cosine of the equivalent bipolar vector).
///
/// # Example
///
/// ```
/// use hdc::BinaryHypervector;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let a = BinaryHypervector::random(4096, &mut rng);
/// let b = BinaryHypervector::random(4096, &mut rng);
/// // Random hypervectors are quasi-orthogonal: similarity near 0.
/// assert!(a.similarity(&b).abs() < 0.1);
/// // Binding is invertible: (a ⊕ b) ⊕ b = a.
/// assert_eq!(a.bind(&b).bind(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct BinaryHypervector {
    dim: usize,
    words: Vec<u64>,
}

/// Hand-written (instead of derived) so documents whose word count disagrees
/// with the declared dimensionality, or that smuggle set bits past `dim`
/// (which would corrupt every popcount), are rejected with a typed error.
impl Deserialize for BinaryHypervector {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = de::expect_object(value, "BinaryHypervector")?;
        let dim: usize = de::field(entries, "dim", "BinaryHypervector")?;
        let words: Vec<u64> = de::field(entries, "words", "BinaryHypervector")?;
        if dim == 0 {
            return Err(
                DeError::new("dimensionality must be positive").in_field("BinaryHypervector")
            );
        }
        if words.len() != dim.div_ceil(64) {
            return Err(DeError::new(format!(
                "{} words do not match dimensionality {dim}",
                words.len()
            ))
            .in_field("BinaryHypervector"));
        }
        let rem = dim % 64;
        if rem != 0 && words.last().is_some_and(|w| w >> rem != 0) {
            return Err(DeError::new("set bits beyond the declared dimensionality")
                .in_field("BinaryHypervector"));
        }
        Ok(Self { dim, words })
    }
}

impl BinaryHypervector {
    /// Creates an all-zeros hypervector of the given dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn zeros(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            dim,
            words: vec![0u64; dim.div_ceil(64)],
        }
    }

    /// Creates a hypervector with uniformly random bits (each bit is 1 with
    /// probability 1/2), i.e. a sample from the dense binary Rademacher-like
    /// distribution used for atomic hypervectors in the paper.
    pub fn random<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Self {
        let mut hv = Self::zeros(dim);
        for w in &mut hv.words {
            *w = rng.gen();
        }
        hv.mask_tail();
        hv
    }

    /// Builds a hypervector from a slice of bools.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn from_bits(bits: &[bool]) -> Self {
        assert!(!bits.is_empty(), "dimensionality must be positive");
        let mut hv = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                hv.set_bit(i, true);
            }
        }
        hv
    }

    /// Dimensionality of the hypervector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow of the packed words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Returns the bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.dim, "bit index out of range");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[inline]
    pub fn set_bit(&mut self, i: usize, value: bool) {
        assert!(i < self.dim, "bit index out of range");
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Binds two hypervectors with elementwise XOR.
    ///
    /// Binding produces a vector quasi-orthogonal to both operands and is its
    /// own inverse (`a.bind(b).bind(b) == a`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ; use [`BinaryHypervector::try_bind`]
    /// for a checked variant.
    pub fn bind(&self, other: &BinaryHypervector) -> BinaryHypervector {
        self.try_bind(other).expect("bind dimensionality mismatch")
    }

    /// Checked variant of [`BinaryHypervector::bind`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensionalities differ.
    pub fn try_bind(&self, other: &BinaryHypervector) -> Result<BinaryHypervector, HdcError> {
        if self.dim != other.dim {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: other.dim,
            });
        }
        let words = self
            .words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| a ^ b)
            .collect();
        Ok(BinaryHypervector {
            dim: self.dim,
            words,
        })
    }

    /// Hamming distance (number of differing bits) to another hypervector.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn hamming(&self, other: &BinaryHypervector) -> usize {
        assert_eq!(
            self.dim, other.dim,
            "hamming distance requires equal dimensionality"
        );
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Normalised Hamming similarity in `[-1, 1]`:
    /// `1 − 2·hamming(a,b)/d`, which equals the cosine of the corresponding
    /// bipolar hypervectors.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn similarity(&self, other: &BinaryHypervector) -> f32 {
        1.0 - 2.0 * self.hamming(other) as f32 / self.dim as f32
    }

    /// Cyclic permutation (rotation) of the bits by `shift` positions.
    ///
    /// Permutation preserves pairwise distances and is used to encode
    /// sequence/role information in HDC.
    pub fn permute(&self, shift: usize) -> BinaryHypervector {
        let shift = shift % self.dim;
        if shift == 0 {
            return self.clone();
        }
        let mut out = BinaryHypervector::zeros(self.dim);
        for i in 0..self.dim {
            if self.bit(i) {
                out.set_bit((i + shift) % self.dim, true);
            }
        }
        out
    }

    /// Converts to the equivalent bipolar hypervector (`bit 0 → +1`,
    /// `bit 1 → -1`).
    pub fn to_bipolar(&self) -> BipolarHypervector {
        let values: Vec<i8> = (0..self.dim)
            .map(|i| if self.bit(i) { -1 } else { 1 })
            .collect();
        BipolarHypervector::from_signs(&values)
    }

    /// Memory footprint of the packed representation in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Flips each bit independently with probability `p` (noise injection, as
    /// used in robustness experiments).
    pub fn flip_noise<R: Rng + ?Sized>(&self, p: f64, rng: &mut R) -> BinaryHypervector {
        let mut out = self.clone();
        for i in 0..self.dim {
            if rng.gen_bool(p) {
                out.set_bit(i, !out.bit(i));
            }
        }
        out
    }

    /// Clears any bits beyond `dim` in the last word.
    fn mask_tail(&mut self) {
        let rem = self.dim % 64;
        if rem != 0 {
            let mask = (1u64 << rem) - 1;
            if let Some(last) = self.words.last_mut() {
                *last &= mask;
            }
        }
    }
}

impl std::fmt::Display for BinaryHypervector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let shown: String = (0..self.dim.min(32))
            .map(|i| if self.bit(i) { '1' } else { '0' })
            .collect();
        let ellipsis = if self.dim > 32 { "…" } else { "" };
        write!(f, "BinaryHV<{}>[{}{}]", self.dim, shown, ellipsis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_has_no_set_bits() {
        let hv = BinaryHypervector::zeros(100);
        assert_eq!(hv.count_ones(), 0);
        assert_eq!(hv.dim(), 100);
        assert_eq!(hv.memory_bytes(), 16);
    }

    #[test]
    fn random_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(42);
        let hv = BinaryHypervector::random(8192, &mut rng);
        let ones = hv.count_ones() as f32;
        assert!((ones / 8192.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn tail_bits_are_masked() {
        let mut rng = StdRng::seed_from_u64(43);
        let hv = BinaryHypervector::random(70, &mut rng);
        // Bits 70..128 must be zero.
        assert_eq!(hv.words()[1] >> 6, 0);
        assert!(hv.count_ones() <= 70);
    }

    #[test]
    fn set_and_get_bits() {
        let mut hv = BinaryHypervector::zeros(130);
        hv.set_bit(0, true);
        hv.set_bit(64, true);
        hv.set_bit(129, true);
        assert!(hv.bit(0) && hv.bit(64) && hv.bit(129));
        assert!(!hv.bit(1));
        hv.set_bit(64, false);
        assert!(!hv.bit(64));
        assert_eq!(hv.count_ones(), 2);
    }

    #[test]
    fn from_bits_roundtrip() {
        let bits = vec![true, false, true, true, false];
        let hv = BinaryHypervector::from_bits(&bits);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(hv.bit(i), b);
        }
    }

    #[test]
    fn bind_is_self_inverse_and_commutative() {
        let mut rng = StdRng::seed_from_u64(44);
        let a = BinaryHypervector::random(2048, &mut rng);
        let b = BinaryHypervector::random(2048, &mut rng);
        assert_eq!(a.bind(&b), b.bind(&a));
        assert_eq!(a.bind(&b).bind(&b), a);
    }

    #[test]
    fn bind_produces_quasi_orthogonal_output() {
        let mut rng = StdRng::seed_from_u64(45);
        let a = BinaryHypervector::random(8192, &mut rng);
        let b = BinaryHypervector::random(8192, &mut rng);
        let bound = a.bind(&b);
        assert!(bound.similarity(&a).abs() < 0.08);
        assert!(bound.similarity(&b).abs() < 0.08);
    }

    #[test]
    fn try_bind_rejects_mismatched_dims() {
        let a = BinaryHypervector::zeros(64);
        let b = BinaryHypervector::zeros(128);
        assert!(matches!(
            a.try_bind(&b),
            Err(HdcError::DimensionMismatch {
                left: 64,
                right: 128
            })
        ));
    }

    #[test]
    fn hamming_and_similarity() {
        let a = BinaryHypervector::from_bits(&[true, true, false, false]);
        let b = BinaryHypervector::from_bits(&[true, false, true, false]);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.similarity(&b), 0.0);
        assert_eq!(a.similarity(&a), 1.0);
        let complement = BinaryHypervector::from_bits(&[false, false, true, true]);
        assert_eq!(a.similarity(&complement), -1.0);
    }

    #[test]
    fn permute_preserves_popcount_and_distance() {
        let mut rng = StdRng::seed_from_u64(46);
        let a = BinaryHypervector::random(1024, &mut rng);
        let b = BinaryHypervector::random(1024, &mut rng);
        let pa = a.permute(37);
        let pb = b.permute(37);
        assert_eq!(pa.count_ones(), a.count_ones());
        assert_eq!(a.hamming(&b), pa.hamming(&pb));
        // Permuted vector is dissimilar to the original.
        assert!(a.similarity(&pa).abs() < 0.1);
        // Full rotation is identity.
        assert_eq!(a.permute(1024), a);
        assert_eq!(a.permute(0), a);
    }

    #[test]
    fn to_bipolar_preserves_similarity() {
        let mut rng = StdRng::seed_from_u64(47);
        let a = BinaryHypervector::random(4096, &mut rng);
        let b = BinaryHypervector::random(4096, &mut rng);
        let sim_binary = a.similarity(&b);
        let sim_bipolar = a.to_bipolar().cosine(&b.to_bipolar());
        assert!((sim_binary - sim_bipolar).abs() < 1e-5);
    }

    #[test]
    fn flip_noise_changes_expected_fraction() {
        let mut rng = StdRng::seed_from_u64(48);
        let a = BinaryHypervector::random(8192, &mut rng);
        let noisy = a.flip_noise(0.1, &mut rng);
        let frac = a.hamming(&noisy) as f64 / 8192.0;
        assert!((frac - 0.1).abs() < 0.02, "flip fraction {frac}");
        let clean = a.flip_noise(0.0, &mut rng);
        assert_eq!(clean, a);
    }

    #[test]
    fn display_contains_dim() {
        let hv = BinaryHypervector::zeros(64);
        assert!(format!("{hv}").contains("BinaryHV<64>"));
    }

    #[test]
    #[should_panic(expected = "bit index out of range")]
    fn bit_out_of_range_panics() {
        let hv = BinaryHypervector::zeros(8);
        let _ = hv.bit(8);
    }
}
