//! Similarity measures between hypervectors and between float embeddings and
//! hypervector dictionaries.

use crate::{BinaryHypervector, BipolarHypervector};
use tensor::Matrix;

/// Hamming distance between two binary hypervectors.
///
/// Convenience free function mirroring
/// [`BinaryHypervector::hamming`].
///
/// # Panics
///
/// Panics if the dimensionalities differ.
pub fn hamming_distance(a: &BinaryHypervector, b: &BinaryHypervector) -> usize {
    a.hamming(b)
}

/// Normalised Hamming similarity in `[-1, 1]` between two binary
/// hypervectors; equals the cosine of the corresponding bipolar vectors.
///
/// # Panics
///
/// Panics if the dimensionalities differ.
pub fn normalized_hamming_similarity(a: &BinaryHypervector, b: &BinaryHypervector) -> f32 {
    a.similarity(b)
}

/// Cosine similarity between two bipolar hypervectors.
///
/// # Panics
///
/// Panics if the dimensionalities differ.
pub fn cosine(a: &BipolarHypervector, b: &BipolarHypervector) -> f32 {
    a.cosine(b)
}

/// Cosine similarity between a dense `f32` embedding and every row of a ±1
/// dictionary matrix, returning one similarity per row.
///
/// This is the attribute-prediction head of the paper
/// (`q = cossim(γ(x), B)`): the image embedding is compared against all
/// `α = 312` attribute codevectors.
///
/// # Panics
///
/// Panics if `embedding.len() != dictionary.cols()`.
pub fn cosine_to_dictionary(embedding: &[f32], dictionary: &Matrix) -> Vec<f32> {
    assert_eq!(
        embedding.len(),
        dictionary.cols(),
        "embedding dim {} does not match dictionary width {}",
        embedding.len(),
        dictionary.cols()
    );
    let emb_norm = embedding.iter().map(|x| x * x).sum::<f32>().sqrt();
    (0..dictionary.rows())
        .map(|r| {
            let row = dictionary.row(r);
            let dot: f32 = row.iter().zip(embedding).map(|(a, b)| a * b).sum();
            let row_norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            let denom = emb_norm * row_norm;
            if denom < 1e-12 {
                0.0
            } else {
                dot / denom
            }
        })
        .collect()
}

/// Finds the index of the most similar row of `dictionary` to `embedding`
/// under cosine similarity, together with that similarity.
///
/// Returns `None` for an empty dictionary.
///
/// # Panics
///
/// Panics if `embedding.len() != dictionary.cols()`.
pub fn nearest_row(embedding: &[f32], dictionary: &Matrix) -> Option<(usize, f32)> {
    if dictionary.rows() == 0 {
        return None;
    }
    let sims = cosine_to_dictionary(embedding, dictionary);
    sims.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, &s)| (i, s))
}

/// Expected absolute cosine similarity between two independent random
/// d-dimensional bipolar hypervectors (≈ `sqrt(2/(π d))`), useful for
/// calibrating quasi-orthogonality thresholds in tests and benches.
pub fn expected_random_cosine(dim: usize) -> f32 {
    (2.0 / (std::f32::consts::PI * dim as f32)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn free_functions_match_methods() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = BipolarHypervector::random(1024, &mut rng);
        let b = BipolarHypervector::random(1024, &mut rng);
        assert_eq!(cosine(&a, &b), a.cosine(&b));
        let ab = a.to_binary();
        let bb = b.to_binary();
        assert_eq!(hamming_distance(&ab, &bb), ab.hamming(&bb));
        assert_eq!(normalized_hamming_similarity(&ab, &bb), ab.similarity(&bb));
    }

    #[test]
    fn cosine_to_dictionary_identifies_self() {
        let mut rng = StdRng::seed_from_u64(2);
        let hvs: Vec<_> = (0..10)
            .map(|_| BipolarHypervector::random(2048, &mut rng))
            .collect();
        let dict = BipolarHypervector::stack_to_matrix(&hvs);
        let query = hvs[3].to_f32();
        let sims = cosine_to_dictionary(&query, &dict);
        assert_eq!(sims.len(), 10);
        assert!((sims[3] - 1.0).abs() < 1e-5);
        for (i, s) in sims.iter().enumerate() {
            if i != 3 {
                assert!(s.abs() < 0.1);
            }
        }
        let (best, best_sim) = nearest_row(&query, &dict).expect("non-empty dict");
        assert_eq!(best, 3);
        assert!((best_sim - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cosine_to_dictionary_handles_noisy_query() {
        let mut rng = StdRng::seed_from_u64(3);
        let hvs: Vec<_> = (0..20)
            .map(|_| BipolarHypervector::random(4096, &mut rng))
            .collect();
        let dict = BipolarHypervector::stack_to_matrix(&hvs);
        // Noisy float version of entry 7.
        let query: Vec<f32> = hvs[7]
            .to_f32()
            .iter()
            .map(|v| v + 0.3 * (rng.gen::<f32>() - 0.5))
            .collect();
        let (best, _) = nearest_row(&query, &dict).expect("non-empty dict");
        assert_eq!(best, 7);
    }

    #[test]
    fn zero_embedding_gives_zero_similarity() {
        let dict = Matrix::from_rows(&[vec![1.0, -1.0]]);
        let sims = cosine_to_dictionary(&[0.0, 0.0], &dict);
        assert_eq!(sims, vec![0.0]);
    }

    #[test]
    fn nearest_row_empty_dictionary() {
        let dict = Matrix::zeros(0, 4);
        assert!(nearest_row(&[1.0, 0.0, 0.0, 0.0], &dict).is_none());
    }

    #[test]
    fn expected_random_cosine_shrinks_with_dim() {
        assert!(expected_random_cosine(1024) > expected_random_cosine(8192));
        let mut rng = StdRng::seed_from_u64(4);
        // Empirical mean |cos| over pairs should be close to the formula.
        let d = 2048;
        let n = 50;
        let hvs: Vec<_> = (0..n)
            .map(|_| BipolarHypervector::random(d, &mut rng))
            .collect();
        let mut acc = 0.0f32;
        let mut count = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                acc += hvs[i].cosine(&hvs[j]).abs();
                count += 1;
            }
        }
        let empirical = acc / count as f32;
        let expected = expected_random_cosine(d);
        assert!((empirical - expected).abs() < expected * 0.3);
    }

    use rand::Rng;
}
