//! Bundling (superposition) of hypervectors.
//!
//! Bundling combines a set of hypervectors into a single vector that is
//! *similar* to every input — the complementary operation to binding, which
//! produces a vector *dissimilar* to its inputs. For dense bipolar vectors
//! bundling is the elementwise sign of the sum (majority vote), with ties
//! broken by a deterministic tie-breaking hypervector so the operation stays
//! reproducible across runs.

use crate::{BinaryHypervector, BipolarHypervector, HdcError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Accumulating bundler for bipolar hypervectors.
///
/// Collects an arbitrary number of hypervectors and produces their majority
/// bundle. Intermediate sums are kept as `i32` counters, so bundling is exact
/// regardless of the number of inputs.
///
/// # Example
///
/// ```
/// use hdc::{BipolarHypervector, Bundler};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let items: Vec<_> = (0..5).map(|_| BipolarHypervector::random(4096, &mut rng)).collect();
/// let mut bundler = Bundler::new(4096);
/// for hv in &items {
///     bundler.add(hv);
/// }
/// let bundle = bundler.finish();
/// // The bundle is similar to every constituent.
/// for hv in &items {
///     assert!(bundle.cosine(hv) > 0.2);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bundler {
    dim: usize,
    counts: Vec<i32>,
    n: usize,
    tie_break_seed: u64,
}

impl Bundler {
    /// Creates an empty bundler for hypervectors of dimensionality `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            dim,
            counts: vec![0; dim],
            n: 0,
            tie_break_seed: 0x5eed_71e0_u64 ^ dim as u64,
        }
    }

    /// Creates a bundler whose tie-breaking hypervector is derived from the
    /// provided seed (useful to make ensembles of bundles decorrelated).
    pub fn with_tie_break_seed(dim: usize, seed: u64) -> Self {
        let mut b = Self::new(dim);
        b.tie_break_seed = seed;
        b
    }

    /// Number of hypervectors accumulated so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if no hypervectors have been added yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality of the bundled hypervectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Adds a hypervector to the bundle.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionality differs; use [`Bundler::try_add`] for a
    /// checked variant.
    pub fn add(&mut self, hv: &BipolarHypervector) {
        self.try_add(hv).expect("bundler dimensionality mismatch");
    }

    /// Checked variant of [`Bundler::add`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensionality differs.
    pub fn try_add(&mut self, hv: &BipolarHypervector) -> Result<(), HdcError> {
        if hv.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: hv.dim(),
            });
        }
        for (c, &v) in self.counts.iter_mut().zip(hv.as_slice()) {
            *c += v as i32;
        }
        self.n += 1;
        Ok(())
    }

    /// Adds a hypervector with an integer weight (equivalent to adding it
    /// `weight` times; negative weights subtract).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensionality differs.
    pub fn try_add_weighted(
        &mut self,
        hv: &BipolarHypervector,
        weight: i32,
    ) -> Result<(), HdcError> {
        if hv.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: hv.dim(),
            });
        }
        for (c, &v) in self.counts.iter_mut().zip(hv.as_slice()) {
            *c += weight * v as i32;
        }
        self.n += 1;
        Ok(())
    }

    /// Produces the majority bundle: the sign of the accumulated counts, with
    /// exact ties broken by a deterministic pseudo-random hypervector derived
    /// from the tie-break seed (the standard trick for bundling an even number
    /// of operands).
    ///
    /// # Panics
    ///
    /// Panics if no hypervectors have been added; use [`Bundler::try_finish`]
    /// for a checked variant.
    pub fn finish(&self) -> BipolarHypervector {
        self.try_finish().expect("cannot bundle zero hypervectors")
    }

    /// Checked variant of [`Bundler::finish`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] if no hypervectors have been added.
    pub fn try_finish(&self) -> Result<BipolarHypervector, HdcError> {
        if self.n == 0 {
            return Err(HdcError::EmptyInput);
        }
        let mut rng = StdRng::seed_from_u64(self.tie_break_seed);
        let tie_break = BipolarHypervector::random(self.dim, &mut rng);
        let signs: Vec<i8> = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| match c.cmp(&0) {
                std::cmp::Ordering::Greater => 1,
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => tie_break.get(i),
            })
            .collect();
        Ok(BipolarHypervector::from_signs(&signs))
    }

    /// Returns the raw accumulated counts (the un-thresholded bundle), useful
    /// for analog/integer associative memories.
    pub fn counts(&self) -> &[i32] {
        &self.counts
    }

    /// The seed of the deterministic tie-breaking hypervector used by
    /// [`Bundler::finish`].
    pub fn tie_break_seed(&self) -> u64 {
        self.tie_break_seed
    }

    /// Folds another bundler's accumulated state into this one, as if every
    /// hypervector added to `other` had been added here instead. Because
    /// bundling is an exact integer sum, `merge` commutes with sequential
    /// addition: any partition of the inputs across bundlers, merged in any
    /// order, yields identical counts. The tie-break seed of `self` is kept.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ; use [`Bundler::try_merge`] for
    /// a checked variant.
    pub fn merge(&mut self, other: &Bundler) {
        self.try_merge(other)
            .expect("bundler dimensionality mismatch");
    }

    /// Checked variant of [`Bundler::merge`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensionality differs.
    pub fn try_merge(&mut self, other: &Bundler) -> Result<(), HdcError> {
        if other.dim != self.dim {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: other.dim,
            });
        }
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.n += other.n;
        Ok(())
    }

    /// Reconstructs a bundler from previously captured state — the exact
    /// inverse of reading [`Bundler::counts`], [`Bundler::len`] and
    /// [`Bundler::tie_break_seed`]. Because the counters *are* the complete
    /// state, the rebuilt bundler produces bit-identical bundles. No bound
    /// is enforced between counts and `n` ([`Bundler::try_add_weighted`]
    /// legitimately exceeds `±n`); callers persisting unit-weight streams
    /// should validate that invariant themselves (see
    /// `hdc::ClassAccumulator`).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] when `counts` is empty.
    pub fn from_parts(counts: Vec<i32>, n: usize, tie_break_seed: u64) -> Result<Self, HdcError> {
        if counts.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        Ok(Self {
            dim: counts.len(),
            counts,
            n,
            tie_break_seed,
        })
    }
}

/// Bundles a slice of bipolar hypervectors with the majority rule.
///
/// # Errors
///
/// Returns [`HdcError::EmptyInput`] for an empty slice and
/// [`HdcError::DimensionMismatch`] if the dimensionalities differ.
pub fn bundle_bipolar(hvs: &[BipolarHypervector]) -> Result<BipolarHypervector, HdcError> {
    let first = hvs.first().ok_or(HdcError::EmptyInput)?;
    let mut bundler = Bundler::new(first.dim());
    for hv in hvs {
        bundler.try_add(hv)?;
    }
    bundler.try_finish()
}

/// Bundles a slice of binary hypervectors with the bitwise-majority rule
/// (ties broken deterministically), by converting through the bipolar
/// representation.
///
/// # Errors
///
/// Returns [`HdcError::EmptyInput`] for an empty slice and
/// [`HdcError::DimensionMismatch`] if the dimensionalities differ.
pub fn bundle_binary(hvs: &[BinaryHypervector]) -> Result<BinaryHypervector, HdcError> {
    let bipolar: Vec<BipolarHypervector> = hvs.iter().map(|hv| hv.to_bipolar()).collect();
    Ok(bundle_bipolar(&bipolar)?.to_binary())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_bundler_errors() {
        let bundler = Bundler::new(64);
        assert!(bundler.is_empty());
        assert!(matches!(bundler.try_finish(), Err(HdcError::EmptyInput)));
        assert!(bundle_bipolar(&[]).is_err());
    }

    #[test]
    fn single_item_bundle_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = BipolarHypervector::random(512, &mut rng);
        let bundle = bundle_bipolar(std::slice::from_ref(&a)).expect("non-empty");
        assert_eq!(bundle, a);
    }

    #[test]
    fn bundle_is_similar_to_all_constituents() {
        let mut rng = StdRng::seed_from_u64(2);
        let items: Vec<_> = (0..7)
            .map(|_| BipolarHypervector::random(8192, &mut rng))
            .collect();
        let bundle = bundle_bipolar(&items).expect("non-empty");
        let unrelated = BipolarHypervector::random(8192, &mut rng);
        for hv in &items {
            assert!(bundle.cosine(hv) > 0.2, "bundle must stay similar to items");
        }
        assert!(bundle.cosine(&unrelated).abs() < 0.08);
    }

    #[test]
    fn bundle_of_even_count_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let items: Vec<_> = (0..4)
            .map(|_| BipolarHypervector::random(1024, &mut rng))
            .collect();
        let a = bundle_bipolar(&items).expect("non-empty");
        let b = bundle_bipolar(&items).expect("non-empty");
        assert_eq!(a, b, "tie-breaking must be deterministic");
    }

    #[test]
    fn weighted_add_biases_bundle() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = BipolarHypervector::random(4096, &mut rng);
        let b = BipolarHypervector::random(4096, &mut rng);
        let mut bundler = Bundler::new(4096);
        bundler.try_add_weighted(&a, 5).expect("same dim");
        bundler.try_add_weighted(&b, 1).expect("same dim");
        let bundle = bundler.finish();
        assert!(bundle.cosine(&a) > bundle.cosine(&b));
        assert_eq!(bundler.len(), 2);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut bundler = Bundler::new(64);
        let wrong = BipolarHypervector::ones(32);
        assert!(bundler.try_add(&wrong).is_err());
        assert!(bundler.try_add_weighted(&wrong, 2).is_err());
    }

    #[test]
    fn binary_bundling_matches_bipolar_bundling() {
        let mut rng = StdRng::seed_from_u64(5);
        let bipolar: Vec<_> = (0..5)
            .map(|_| BipolarHypervector::random(512, &mut rng))
            .collect();
        let binary: Vec<_> = bipolar.iter().map(|hv| hv.to_binary()).collect();
        let via_binary = bundle_binary(&binary).expect("non-empty");
        let via_bipolar = bundle_bipolar(&bipolar).expect("non-empty").to_binary();
        assert_eq!(via_binary, via_bipolar);
    }

    #[test]
    fn counts_accessor_reflects_additions() {
        let a = BipolarHypervector::from_signs(&[1, -1, 1]);
        let b = BipolarHypervector::from_signs(&[1, 1, -1]);
        let mut bundler = Bundler::new(3);
        bundler.add(&a);
        bundler.add(&b);
        assert_eq!(bundler.counts(), &[2, 0, 0]);
        assert_eq!(bundler.dim(), 3);
    }

    #[test]
    fn merge_matches_sequential_addition() {
        let mut rng = StdRng::seed_from_u64(6);
        let items: Vec<_> = (0..9)
            .map(|_| BipolarHypervector::random(256, &mut rng))
            .collect();
        let mut sequential = Bundler::new(256);
        for hv in &items {
            sequential.add(hv);
        }
        let mut left = Bundler::new(256);
        let mut right = Bundler::new(256);
        for hv in &items[..4] {
            left.add(hv);
        }
        for hv in &items[4..] {
            right.add(hv);
        }
        left.merge(&right);
        assert_eq!(left.counts(), sequential.counts());
        assert_eq!(left.len(), sequential.len());
        assert_eq!(left.finish(), sequential.finish());
    }

    #[test]
    fn merge_rejects_dimension_mismatch() {
        let mut a = Bundler::new(64);
        let b = Bundler::new(32);
        assert!(matches!(
            a.try_merge(&b),
            Err(HdcError::DimensionMismatch {
                left: 64,
                right: 32
            })
        ));
    }

    #[test]
    fn from_parts_round_trips_exactly() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut bundler = Bundler::with_tie_break_seed(128, 99);
        for _ in 0..5 {
            bundler.add(&BipolarHypervector::random(128, &mut rng));
        }
        let rebuilt = Bundler::from_parts(
            bundler.counts().to_vec(),
            bundler.len(),
            bundler.tie_break_seed(),
        )
        .expect("non-empty counts");
        assert_eq!(rebuilt.counts(), bundler.counts());
        assert_eq!(rebuilt.len(), bundler.len());
        assert_eq!(rebuilt.finish(), bundler.finish());
        assert!(matches!(
            Bundler::from_parts(Vec::new(), 0, 0),
            Err(HdcError::EmptyInput)
        ));
    }

    #[test]
    fn custom_tie_break_seed_changes_tie_resolution_only() {
        let a = BipolarHypervector::from_signs(&[1, -1, 1, -1]);
        let b = a.negate();
        // All positions tie.
        let mut b1 = Bundler::with_tie_break_seed(4, 1);
        b1.add(&a);
        b1.add(&b);
        let mut b2 = Bundler::with_tie_break_seed(4, 2);
        b2.add(&a);
        b2.add(&b);
        // Both resolve every tie, so the outputs are valid bipolar vectors.
        assert_eq!(b1.finish().dim(), 4);
        assert_eq!(b2.finish().dim(), 4);
    }
}
