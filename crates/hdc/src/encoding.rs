//! Scalar-to-hypervector encodings.
//!
//! The paper's class-attribute matrix `A` contains *continuous* per-class
//! attribute strengths (the fraction of annotators that marked an attribute).
//! While HDC-ZSC consumes those continuous values directly via the product
//! `A × B`, a purely symbolic HDC pipeline needs a way to encode scalars into
//! hypervectors. [`LevelEncoder`] implements the standard level (thermometer)
//! encoding in which nearby scalar values map to similar hypervectors; it is
//! used by the auxiliary examples and by the binding-ablation bench.

use crate::{BipolarHypervector, HdcConfig};
use rand::Rng;

/// Level (thermometer) encoder mapping scalars in `[lo, hi]` to bipolar
/// hypervectors such that the cosine similarity between two encoded values
/// decreases linearly with their scalar distance.
///
/// The encoder interpolates between a `lo` anchor hypervector and a `hi`
/// anchor hypervector by flipping a progressively larger prefix of a fixed
/// random permutation of component indices.
///
/// # Example
///
/// ```
/// use hdc::{HdcConfig, LevelEncoder};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let enc = LevelEncoder::new(0.0, 1.0, 16, &HdcConfig::new(4096), &mut rng);
/// let near = enc.encode(0.50).cosine(&enc.encode(0.55));
/// let far = enc.encode(0.10).cosine(&enc.encode(0.90));
/// assert!(near > far);
/// ```
#[derive(Debug, Clone)]
pub struct LevelEncoder {
    lo: f32,
    hi: f32,
    levels: Vec<BipolarHypervector>,
}

impl LevelEncoder {
    /// Creates a level encoder covering `[lo, hi]` with `levels` discrete
    /// steps.
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2` or `hi <= lo`.
    pub fn new<R: Rng + ?Sized>(
        lo: f32,
        hi: f32,
        levels: usize,
        config: &HdcConfig,
        rng: &mut R,
    ) -> Self {
        assert!(levels >= 2, "need at least two levels");
        assert!(hi > lo, "hi must exceed lo");
        let dim = config.dim();
        let base = BipolarHypervector::random(dim, rng);
        // A fixed random order in which components flip as the level rises.
        let mut order: Vec<usize> = (0..dim).collect();
        for i in (1..dim).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut level_vectors = Vec::with_capacity(levels);
        let mut current = base.as_slice().to_vec();
        level_vectors.push(BipolarHypervector::from_signs(&current));
        let flips_per_level = dim / (levels - 1);
        let mut cursor = 0usize;
        for _ in 1..levels {
            for _ in 0..flips_per_level {
                if cursor < dim {
                    current[order[cursor]] = -current[order[cursor]];
                    cursor += 1;
                }
            }
            level_vectors.push(BipolarHypervector::from_signs(&current));
        }
        Self {
            lo,
            hi,
            levels: level_vectors,
        }
    }

    /// Number of discrete levels.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Dimensionality of the emitted hypervectors.
    pub fn dim(&self) -> usize {
        self.levels[0].dim()
    }

    /// Lower bound of the encoded range.
    pub fn lo(&self) -> f32 {
        self.lo
    }

    /// Upper bound of the encoded range.
    pub fn hi(&self) -> f32 {
        self.hi
    }

    /// Encodes a scalar, clamping it into `[lo, hi]` first.
    pub fn encode(&self, value: f32) -> BipolarHypervector {
        let clamped = value.clamp(self.lo, self.hi);
        let t = (clamped - self.lo) / (self.hi - self.lo);
        let idx = (t * (self.levels.len() - 1) as f32).round() as usize;
        self.levels[idx.min(self.levels.len() - 1)].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn encoder(dim: usize, levels: usize) -> LevelEncoder {
        let mut rng = StdRng::seed_from_u64(21);
        LevelEncoder::new(0.0, 1.0, levels, &HdcConfig::new(dim), &mut rng)
    }

    #[test]
    fn construction_parameters() {
        let enc = encoder(2048, 8);
        assert_eq!(enc.levels(), 8);
        assert_eq!(enc.dim(), 2048);
        assert_eq!(enc.lo(), 0.0);
        assert_eq!(enc.hi(), 1.0);
    }

    #[test]
    fn identical_values_encode_identically() {
        let enc = encoder(1024, 16);
        assert_eq!(enc.encode(0.37), enc.encode(0.37));
    }

    #[test]
    fn similarity_decreases_with_distance() {
        let enc = encoder(8192, 32);
        let s_near = enc.encode(0.5).cosine(&enc.encode(0.53));
        let s_mid = enc.encode(0.5).cosine(&enc.encode(0.7));
        let s_far = enc.encode(0.0).cosine(&enc.encode(1.0));
        assert!(s_near > s_mid);
        assert!(s_mid > s_far);
        // Extremes are approximately anti-correlated (all components flipped).
        assert!(s_far < -0.8);
    }

    #[test]
    fn values_are_clamped_to_range() {
        let enc = encoder(512, 4);
        assert_eq!(enc.encode(-5.0), enc.encode(0.0));
        assert_eq!(enc.encode(7.0), enc.encode(1.0));
    }

    #[test]
    fn endpoint_similarity_is_roughly_linear() {
        let enc = encoder(8192, 64);
        let zero = enc.encode(0.0);
        // cos(encode(0), encode(t)) ≈ 1 - 2t for the flip construction.
        for &t in &[0.25f32, 0.5, 0.75] {
            let cos = zero.cosine(&enc.encode(t));
            assert!(
                (cos - (1.0 - 2.0 * t)).abs() < 0.1,
                "t={t}: cos {cos} should be near {}",
                1.0 - 2.0 * t
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least two levels")]
    fn rejects_single_level() {
        let mut rng = StdRng::seed_from_u64(22);
        let _ = LevelEncoder::new(0.0, 1.0, 1, &HdcConfig::new(64), &mut rng);
    }

    #[test]
    #[should_panic(expected = "hi must exceed lo")]
    fn rejects_empty_range() {
        let mut rng = StdRng::seed_from_u64(23);
        let _ = LevelEncoder::new(1.0, 1.0, 4, &HdcConfig::new(64), &mut rng);
    }
}
