//! Dense bipolar (`{-1, +1}`) hypervectors.
//!
//! Bipolar hypervectors interoperate directly with floating-point linear
//! algebra: the attribute dictionary `B ∈ {-1,+1}^{α×d}` of the paper is a
//! stack of bipolar hypervectors converted to a [`tensor::Matrix`] row per
//! attribute.

use crate::{BinaryHypervector, HdcError};
use rand::Rng;
use serde::{de, DeError, Deserialize, Serialize, Value};
use tensor::Matrix;

/// A dense bipolar hypervector with entries in `{-1, +1}` stored as `i8`.
///
/// Binding is the Hadamard (elementwise) product, bundling is the sign of the
/// elementwise sum, similarity is the cosine (equivalently the normalised dot
/// product, since every entry has unit magnitude).
///
/// # Example
///
/// ```
/// use hdc::BipolarHypervector;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let g = BipolarHypervector::random(2048, &mut rng);
/// let v = BipolarHypervector::random(2048, &mut rng);
/// let attribute = g.bind(&v);
/// // Binding with the value recovers the group (Hadamard binding is self-inverse).
/// assert_eq!(attribute.bind(&v), g);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct BipolarHypervector {
    values: Vec<i8>,
}

/// Hand-written (instead of derived) so documents carrying entries outside
/// `{-1, +1}` are rejected with a typed error instead of breaking the ±1
/// invariant every downstream kernel relies on.
impl Deserialize for BipolarHypervector {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = de::expect_object(value, "BipolarHypervector")?;
        let values: Vec<i8> = de::field(entries, "values", "BipolarHypervector")?;
        if values.is_empty() {
            return Err(
                DeError::new("dimensionality must be positive").in_field("BipolarHypervector")
            );
        }
        if let Some(bad) = values.iter().find(|&&v| v != 1 && v != -1) {
            return Err(
                DeError::new(format!("bipolar entries must be +1 or -1, found {bad}"))
                    .in_field("BipolarHypervector"),
            );
        }
        Ok(Self { values })
    }
}

impl BipolarHypervector {
    /// Creates an all `+1` hypervector (the identity element of binding).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn ones(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            values: vec![1i8; dim],
        }
    }

    /// Samples a hypervector from the Rademacher distribution (each entry is
    /// `+1` or `-1` with probability 1/2), the atomic-hypervector
    /// initialisation described in §III-A of the paper.
    pub fn random<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            values: (0..dim)
                .map(|_| if rng.gen::<bool>() { 1 } else { -1 })
                .collect(),
        }
    }

    /// Builds a hypervector from explicit signs.
    ///
    /// # Panics
    ///
    /// Panics if `signs` is empty or contains a value other than `+1`/`-1`.
    pub fn from_signs(signs: &[i8]) -> Self {
        assert!(!signs.is_empty(), "dimensionality must be positive");
        assert!(
            signs.iter().all(|&s| s == 1 || s == -1),
            "bipolar hypervector entries must be +1 or -1"
        );
        Self {
            values: signs.to_vec(),
        }
    }

    /// Builds a hypervector by taking the sign of each float (ties at exactly
    /// zero resolve to `+1`).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn from_sign_of(xs: &[f32]) -> Self {
        assert!(!xs.is_empty(), "dimensionality must be positive");
        Self {
            values: xs.iter().map(|&x| if x < 0.0 { -1 } else { 1 }).collect(),
        }
    }

    /// Dimensionality of the hypervector.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Borrow of the underlying sign buffer.
    pub fn as_slice(&self) -> &[i8] {
        &self.values
    }

    /// Returns the sign at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> i8 {
        self.values[i]
    }

    /// Binds two hypervectors with the Hadamard (elementwise) product.
    ///
    /// For bipolar vectors binding is commutative, associative, self-inverse
    /// and similarity-preserving; the result is quasi-orthogonal to both
    /// operands.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ; use
    /// [`BipolarHypervector::try_bind`] for a checked variant.
    pub fn bind(&self, other: &BipolarHypervector) -> BipolarHypervector {
        self.try_bind(other).expect("bind dimensionality mismatch")
    }

    /// Checked variant of [`BipolarHypervector::bind`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensionalities differ.
    pub fn try_bind(&self, other: &BipolarHypervector) -> Result<BipolarHypervector, HdcError> {
        if self.dim() != other.dim() {
            return Err(HdcError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
            });
        }
        Ok(BipolarHypervector {
            values: self
                .values
                .iter()
                .zip(other.values.iter())
                .map(|(a, b)| a * b)
                .collect(),
        })
    }

    /// Dot product with another hypervector (an integer in `[-d, d]`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn dot(&self, other: &BipolarHypervector) -> i64 {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dot product requires equal dimensionality"
        );
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(&a, &b)| (a as i64) * (b as i64))
            .sum()
    }

    /// Cosine similarity in `[-1, 1]` (dot product divided by `d`, since all
    /// entries have unit magnitude).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn cosine(&self, other: &BipolarHypervector) -> f32 {
        self.dot(other) as f32 / self.dim() as f32
    }

    /// Cyclic permutation (rotation) by `shift` positions.
    pub fn permute(&self, shift: usize) -> BipolarHypervector {
        let d = self.dim();
        let shift = shift % d;
        let mut values = vec![0i8; d];
        for (i, &v) in self.values.iter().enumerate() {
            values[(i + shift) % d] = v;
        }
        BipolarHypervector { values }
    }

    /// Elementwise negation (the additive inverse under bundling).
    pub fn negate(&self) -> BipolarHypervector {
        BipolarHypervector {
            values: self.values.iter().map(|v| -v).collect(),
        }
    }

    /// Converts to the equivalent packed binary hypervector (`+1 → 0`,
    /// `-1 → 1`).
    pub fn to_binary(&self) -> BinaryHypervector {
        BinaryHypervector::from_bits(&self.values.iter().map(|&v| v == -1).collect::<Vec<bool>>())
    }

    /// Converts to a row of `f32` values (for use in dense matrices).
    pub fn to_f32(&self) -> Vec<f32> {
        self.values.iter().map(|&v| v as f32).collect()
    }

    /// Stacks a slice of hypervectors into a dense `n × d` matrix of ±1
    /// floats — the representation of the attribute dictionary `B` used by
    /// the similarity kernel.
    ///
    /// # Panics
    ///
    /// Panics if `hvs` is empty or the dimensionalities differ.
    pub fn stack_to_matrix(hvs: &[BipolarHypervector]) -> Matrix {
        assert!(!hvs.is_empty(), "cannot stack zero hypervectors");
        let dim = hvs[0].dim();
        let rows: Vec<Vec<f32>> = hvs
            .iter()
            .map(|hv| {
                assert_eq!(
                    hv.dim(),
                    dim,
                    "stacked hypervectors must share dimensionality"
                );
                hv.to_f32()
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    /// Flips each entry independently with probability `p` (noise injection).
    pub fn flip_noise<R: Rng + ?Sized>(&self, p: f64, rng: &mut R) -> BipolarHypervector {
        BipolarHypervector {
            values: self
                .values
                .iter()
                .map(|&v| if rng.gen_bool(p) { -v } else { v })
                .collect(),
        }
    }

    /// Memory footprint in bytes of the sign buffer.
    pub fn memory_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<i8>()
    }
}

impl std::fmt::Display for BipolarHypervector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let shown: Vec<String> = self
            .values
            .iter()
            .take(16)
            .map(|v| if *v > 0 { "+".into() } else { "-".to_string() })
            .collect();
        let ellipsis = if self.dim() > 16 { "…" } else { "" };
        write!(
            f,
            "BipolarHV<{}>[{}{}]",
            self.dim(),
            shown.join(""),
            ellipsis
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ones_is_binding_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = BipolarHypervector::random(512, &mut rng);
        let id = BipolarHypervector::ones(512);
        assert_eq!(a.bind(&id), a);
        assert_eq!(id.cosine(&id), 1.0);
    }

    #[test]
    fn random_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = BipolarHypervector::random(8192, &mut rng);
        let sum: i64 = a.as_slice().iter().map(|&v| v as i64).sum();
        assert!((sum as f64 / 8192.0).abs() < 0.05);
    }

    #[test]
    fn quasi_orthogonality_of_random_vectors() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = BipolarHypervector::random(8192, &mut rng);
        let b = BipolarHypervector::random(8192, &mut rng);
        assert!(a.cosine(&b).abs() < 0.08);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bind_properties() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = BipolarHypervector::random(4096, &mut rng);
        let b = BipolarHypervector::random(4096, &mut rng);
        let c = BipolarHypervector::random(4096, &mut rng);
        // Commutative, associative, self-inverse.
        assert_eq!(a.bind(&b), b.bind(&a));
        assert_eq!(a.bind(&b).bind(&c), a.bind(&b.bind(&c)));
        assert_eq!(a.bind(&b).bind(&b), a);
        // Quasi-orthogonal to operands.
        assert!(a.bind(&b).cosine(&a).abs() < 0.08);
        // Similarity-preserving: cos(a⊙c, b⊙c) == cos(a, b).
        assert!((a.bind(&c).cosine(&b.bind(&c)) - a.cosine(&b)).abs() < 1e-6);
    }

    #[test]
    fn try_bind_rejects_mismatch() {
        let a = BipolarHypervector::ones(8);
        let b = BipolarHypervector::ones(16);
        assert!(a.try_bind(&b).is_err());
    }

    #[test]
    fn from_signs_validates() {
        let hv = BipolarHypervector::from_signs(&[1, -1, 1]);
        assert_eq!(hv.get(1), -1);
    }

    #[test]
    #[should_panic(expected = "must be +1 or -1")]
    fn from_signs_rejects_invalid() {
        let _ = BipolarHypervector::from_signs(&[1, 0, -1]);
    }

    #[test]
    fn from_sign_of_floats() {
        let hv = BipolarHypervector::from_sign_of(&[0.5, -0.2, 0.0]);
        assert_eq!(hv.as_slice(), &[1, -1, 1]);
    }

    #[test]
    fn negate_inverts_cosine() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = BipolarHypervector::random(1024, &mut rng);
        assert!((a.cosine(&a.negate()) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn permute_preserves_distances() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = BipolarHypervector::random(2048, &mut rng);
        let b = BipolarHypervector::random(2048, &mut rng);
        assert!((a.permute(5).cosine(&b.permute(5)) - a.cosine(&b)).abs() < 1e-6);
        assert_eq!(a.permute(0), a);
        assert_eq!(a.permute(2048), a);
        assert!(a.permute(1).cosine(&a).abs() < 0.1);
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = BipolarHypervector::random(777, &mut rng);
        let roundtrip = a.to_binary().to_bipolar();
        assert_eq!(a, roundtrip);
    }

    #[test]
    fn binding_commutes_with_binary_conversion() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = BipolarHypervector::random(512, &mut rng);
        let b = BipolarHypervector::random(512, &mut rng);
        // XOR of binary == Hadamard of bipolar.
        let via_binary = a.to_binary().bind(&b.to_binary()).to_bipolar();
        assert_eq!(via_binary, a.bind(&b));
    }

    #[test]
    fn stack_to_matrix_shape_and_values() {
        let hvs = vec![
            BipolarHypervector::from_signs(&[1, -1]),
            BipolarHypervector::from_signs(&[-1, 1]),
        ];
        let m = BipolarHypervector::stack_to_matrix(&hvs);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.row(0), &[1.0, -1.0]);
        assert_eq!(m.row(1), &[-1.0, 1.0]);
    }

    #[test]
    fn flip_noise_statistics() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = BipolarHypervector::random(8192, &mut rng);
        let noisy = a.flip_noise(0.2, &mut rng);
        let agreement = a.cosine(&noisy);
        // Expected cosine after flipping 20% of entries is 1 - 2*0.2 = 0.6.
        assert!((agreement - 0.6).abs() < 0.05);
    }

    #[test]
    fn memory_footprint_and_display() {
        let a = BipolarHypervector::ones(100);
        assert_eq!(a.memory_bytes(), 100);
        assert!(format!("{a}").contains("BipolarHV<100>"));
    }
}
