//! Associative item memory (cleanup memory).
//!
//! An item memory stores labelled prototype hypervectors and answers
//! nearest-neighbour queries under cosine / Hamming similarity. It is the
//! standard HDC classifier head and is used here for auxiliary experiments
//! (e.g. checking that bound attribute codevectors can be decoded back to
//! their group/value constituents) and as a building block for the DAP-style
//! baseline.
//!
//! # Engine-backed hot path
//!
//! Alongside the bipolar prototypes the memory keeps an
//! [`engine::ShardedClassMemory`] — prototypes packed into one or more
//! contiguous `u64` word-matrix shards — in sync on every insert, and routes
//! every lookup through the unified [`engine::Scorer`] trait (the same
//! contract the dense and packed backends implement).
//! [`ItemMemory::nearest`] and [`ItemMemory::top_k`] pack the query once
//! (`O(d)`) and run the engine's blocked popcount sweep instead of walking
//! `i8` prototypes one label at a time; with [`ItemMemory::with_shards`] the
//! shards are scored in parallel and merged on integer Hamming distances.
//! Because the bipolar cosine of ±1 vectors equals `(d − 2·hamming) / d`
//! exactly, the similarities returned are **bit-identical** to the scalar
//! [`BipolarHypervector::cosine`] path — for every shard count.
//!
//! Ties on similarity resolve to the lexicographically smallest label, so
//! lookup results are deterministic and independent of insertion order.
//!
//! # Indexed mode
//!
//! [`ItemMemory::with_routed_index`] (or [`ItemMemory::enable_routed_index`]
//! on a populated memory) additionally maintains an
//! [`engine::RoutedClassMemory`] — a coarse-to-fine k-means-routed index —
//! and runs every lookup through it instead of the exhaustive sharded sweep.
//! Mutations stay incremental: an insert or remove repacks only the touched
//! cluster, and the index tracks centroid drift against a deterministic
//! re-cluster threshold. With full probing (the [`RoutedConfig`] default)
//! results remain bit-identical to the exhaustive path; dialling
//! `nprobe` down trades recall for a sub-linear candidate shortlist.

use crate::{BipolarHypervector, HdcError};
use engine::{PackedClassMemory, RoutedClassMemory, RoutedConfig, Scorer, ShardedClassMemory};
use serde::{de, DeError, Deserialize, Serialize, Value};

/// A labelled associative memory of bipolar prototype hypervectors.
///
/// # Example
///
/// ```
/// use hdc::{BipolarHypervector, ItemMemory};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let mut memory = ItemMemory::new(1024);
/// let duck = BipolarHypervector::random(1024, &mut rng);
/// memory.insert("duck", duck.clone());
/// let (label, sim) = memory.nearest(&duck).expect("memory is non-empty");
/// assert_eq!(label, "duck");
/// assert!((sim - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct ItemMemory {
    dim: usize,
    // Invariants: `labels` and `prototypes` are parallel vectors in
    // insertion order, and `sharded` holds exactly the same label set (in
    // its own shard-major order); every mutation goes through `try_insert`,
    // which updates all three — plus the optional `routed` index, which when
    // present holds the same label set again (cluster-major) and takes over
    // the lookup path. All engine mirrors are derived state — the
    // hand-written `Deserialize` below rebuilds them from the prototypes
    // instead of persisting them.
    labels: Vec<String>,
    prototypes: Vec<BipolarHypervector>,
    sharded: ShardedClassMemory,
    routed: Option<RoutedClassMemory>,
}

/// Checkpoint format: dimensionality, shard count, the labelled prototypes,
/// and (for indexed memories) the routed-index configuration. The engine's
/// [`ShardedClassMemory`] and [`RoutedClassMemory`] mirrors are derived
/// state and are rebuilt on load rather than persisted: loading an indexed
/// checkpoint re-clusters the final prototype set under the saved seed, so
/// two loads of the same document always agree bit-for-bit.
impl Serialize for ItemMemory {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("dim".to_string(), self.dim.to_value()),
            ("shards".to_string(), self.sharded.num_shards().to_value()),
            ("labels".to_string(), self.labels.to_value()),
            ("prototypes".to_string(), self.prototypes.to_value()),
        ];
        if let Some(routed) = &self.routed {
            let config = routed.config();
            entries.push((
                "routed".to_string(),
                Value::Object(vec![
                    ("clusters".to_string(), config.clusters.to_value()),
                    ("nprobe".to_string(), config.nprobe.to_value()),
                    ("seed".to_string(), config.seed.to_value()),
                    ("kmeans_iters".to_string(), config.kmeans_iters.to_value()),
                    (
                        "recluster_percent".to_string(),
                        config.recluster_percent.to_value(),
                    ),
                ]),
            ));
        }
        Value::Object(entries)
    }
}

impl Deserialize for ItemMemory {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = de::expect_object(value, "ItemMemory")?;
        let dim: usize = de::field(entries, "dim", "ItemMemory")?;
        // Documents written before the sharded engine mirror carry no
        // "shards" field; they were single-shard by construction, so default
        // to 1 and keep them loadable.
        let shards: usize = match entries.iter().find(|(k, _)| k == "shards") {
            Some(_) => de::field(entries, "shards", "ItemMemory")?,
            None => 1,
        };
        let labels: Vec<String> = de::field(entries, "labels", "ItemMemory")?;
        let prototypes: Vec<BipolarHypervector> = de::field(entries, "prototypes", "ItemMemory")?;
        if dim == 0 {
            return Err(DeError::new("dimensionality must be positive").in_field("ItemMemory"));
        }
        if shards == 0 {
            return Err(DeError::new("shard count must be positive").in_field("ItemMemory"));
        }
        if labels.len() != prototypes.len() {
            return Err(DeError::new(format!(
                "{} labels but {} prototypes",
                labels.len(),
                prototypes.len()
            ))
            .in_field("ItemMemory"));
        }
        let routed_config = match entries.iter().find(|(k, _)| k == "routed") {
            Some((_, value)) => {
                let fields = de::expect_object(value, "ItemMemory.routed")?;
                Some(RoutedConfig {
                    clusters: de::field(fields, "clusters", "ItemMemory.routed")?,
                    nprobe: de::field(fields, "nprobe", "ItemMemory.routed")?,
                    seed: de::field(fields, "seed", "ItemMemory.routed")?,
                    kmeans_iters: de::field(fields, "kmeans_iters", "ItemMemory.routed")?,
                    recluster_percent: de::field(fields, "recluster_percent", "ItemMemory.routed")?,
                })
            }
            None => None,
        };
        let mut memory = ItemMemory::with_shards(dim, shards);
        for (label, hv) in labels.into_iter().zip(prototypes) {
            memory
                .try_insert(label, hv)
                .map_err(|e| DeError::new(e.to_string()).in_field("ItemMemory"))?;
        }
        if let Some(config) = routed_config {
            memory.enable_routed_index(config);
        }
        Ok(memory)
    }
}

impl ItemMemory {
    /// Creates an empty single-shard item memory for hypervectors of
    /// dimensionality `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        Self::with_shards(dim, 1)
    }

    /// Creates an empty item memory whose engine mirror is split across
    /// `shards` shards; lookups fan the shards out in parallel and are
    /// bit-identical to the single-shard (and scalar) path for every shard
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `shards == 0`.
    pub fn with_shards(dim: usize, shards: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self {
            dim,
            labels: Vec::new(),
            prototypes: Vec::new(),
            sharded: ShardedClassMemory::new(dim, shards),
            routed: None,
        }
    }

    /// Creates an empty *indexed* item memory: alongside the exhaustive
    /// engine mirror it maintains a coarse-to-fine
    /// [`engine::RoutedClassMemory`] under `config` and runs every lookup
    /// through it. With the default full probing (`nprobe = 0`) lookups stay
    /// bit-identical to the exhaustive path.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn with_routed_index(dim: usize, config: RoutedConfig) -> Self {
        let mut memory = Self::new(dim);
        memory.enable_routed_index(config);
        memory
    }

    /// Switches this memory into indexed mode, (re)building the routed index
    /// over the current prototypes by a fresh seeded clustering of the final
    /// class set — a pure function of `config` and the stored prototypes.
    /// Subsequent mutations keep the index in sync incrementally (only the
    /// touched cluster is repacked; centroid drift is tracked against the
    /// config's deterministic re-cluster threshold).
    pub fn enable_routed_index(&mut self, config: RoutedConfig) {
        let mut routed = RoutedClassMemory::new(self.dim, config);
        for (label, hv) in self.labels.iter().zip(&self.prototypes) {
            routed.add_class(label.clone(), hv.as_slice());
        }
        // One deterministic clustering over the final set, rather than
        // whatever incremental structure the insertion replay left behind.
        routed.recluster();
        self.routed = Some(routed);
    }

    /// The routed coarse-to-fine index, if this memory is in indexed mode.
    pub fn routed(&self) -> Option<&RoutedClassMemory> {
        self.routed.as_ref()
    }

    /// Re-aims the routed index at `nprobe` probed clusters per query
    /// (`0` = probe all). Returns `false` (and does nothing) if this memory
    /// is not in indexed mode.
    pub fn set_nprobe(&mut self, nprobe: usize) -> bool {
        match &mut self.routed {
            Some(routed) => {
                routed.set_nprobe(nprobe);
                true
            }
            None => false,
        }
    }

    /// Number of stored prototypes.
    pub fn len(&self) -> usize {
        self.prototypes.len()
    }

    /// Returns `true` if no prototypes are stored.
    pub fn is_empty(&self) -> bool {
        self.prototypes.is_empty()
    }

    /// Dimensionality of the stored prototypes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The sharded word-matrix mirror of this memory — the lossless engine
    /// representation lookups run through.
    pub fn sharded(&self) -> &ShardedClassMemory {
        &self.sharded
    }

    /// The single packed shard of a single-shard memory — the representation
    /// [`engine::BatchScorer`] scores whole query batches against.
    ///
    /// # Panics
    ///
    /// Panics if the memory was built with [`ItemMemory::with_shards`] and
    /// more than one shard (there is no single contiguous matrix then; use
    /// [`ItemMemory::sharded`] and its batch lookups instead).
    pub fn packed(&self) -> &PackedClassMemory {
        assert_eq!(
            self.sharded.num_shards(),
            1,
            "packed() requires a single-shard item memory; use sharded() instead"
        );
        self.sharded.shard(0)
    }

    /// Inserts a labelled prototype, replacing any existing prototype with
    /// the same label and returning the replaced hypervector if there was one.
    ///
    /// # Panics
    ///
    /// Panics if the hypervector dimensionality differs from the memory's;
    /// use [`ItemMemory::try_insert`] for a checked variant.
    pub fn insert(
        &mut self,
        label: impl Into<String>,
        hv: BipolarHypervector,
    ) -> Option<BipolarHypervector> {
        self.try_insert(label, hv)
            .expect("item memory dimensionality mismatch")
    }

    /// Checked variant of [`ItemMemory::insert`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensionality differs.
    pub fn try_insert(
        &mut self,
        label: impl Into<String>,
        hv: BipolarHypervector,
    ) -> Result<Option<BipolarHypervector>, HdcError> {
        if hv.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: hv.dim(),
            });
        }
        let label = label.into();
        self.sharded.add_class(label.clone(), hv.as_slice());
        if let Some(routed) = &mut self.routed {
            routed.add_class(label.clone(), hv.as_slice());
        }
        if let Some(pos) = self.labels.iter().position(|l| *l == label) {
            let old = std::mem::replace(&mut self.prototypes[pos], hv);
            Ok(Some(old))
        } else {
            self.labels.push(label);
            self.prototypes.push(hv);
            Ok(None)
        }
    }

    /// Removes the prototype stored under `label`, returning it if present.
    /// Only the engine shard holding the label is repacked.
    pub fn remove(&mut self, label: &str) -> Option<BipolarHypervector> {
        let pos = self.labels.iter().position(|l| l == label)?;
        self.sharded.remove_class(label);
        if let Some(routed) = &mut self.routed {
            routed.remove_class(label);
        }
        self.labels.remove(pos);
        Some(self.prototypes.remove(pos))
    }

    /// Returns the prototype stored under `label`, if any.
    pub fn get(&self, label: &str) -> Option<&BipolarHypervector> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| &self.prototypes[i])
    }

    /// Iterates over `(label, prototype)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &BipolarHypervector)> {
        self.labels
            .iter()
            .map(String::as_str)
            .zip(self.prototypes.iter())
    }

    /// Returns the stored labels in insertion order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.labels.iter().map(String::as_str)
    }

    /// Finds the stored prototype most similar to `query` under cosine
    /// similarity, via the engine's packed popcount sweep (shards scored in
    /// parallel, winners merged on integer Hamming distance).
    ///
    /// Returns `None` if the memory is empty. Ties on similarity resolve to
    /// the lexicographically smallest label.
    ///
    /// # Panics
    ///
    /// Panics if the query dimensionality differs from the memory's.
    pub fn nearest(&self, query: &BipolarHypervector) -> Option<(&str, f32)> {
        assert_eq!(
            query.dim(),
            self.dim,
            "query dimensionality must match the item memory"
        );
        let query_words = engine::pack_signs(query.as_slice());
        match &self.routed {
            Some(routed) => routed.nearest(&query_words),
            None => Scorer::nearest(&self.sharded, &query_words),
        }
    }

    /// Returns the `k` most similar prototypes, most similar first, via the
    /// engine's packed popcount sweep. Ties on similarity are ordered by
    /// label.
    ///
    /// **Truncation contract:** when `k` exceeds the number of stored
    /// prototypes the result contains every prototype — `min(k, self.len())`
    /// entries, never an error and never padding — and `k == 0` returns an
    /// empty vector. (Same contract as `Matrix::topk_rows` and the engine's
    /// `top_k` family.)
    ///
    /// # Panics
    ///
    /// Panics if the query dimensionality differs from the memory's.
    pub fn top_k(&self, query: &BipolarHypervector, k: usize) -> Vec<(&str, f32)> {
        assert_eq!(
            query.dim(),
            self.dim,
            "query dimensionality must match the item memory"
        );
        let query_words = engine::pack_signs(query.as_slice());
        match &self.routed {
            Some(routed) => routed.top_k(&query_words, k),
            None => Scorer::top_k(&self.sharded, &query_words, k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_memory_behaviour() {
        let mem = ItemMemory::new(128);
        assert!(mem.is_empty());
        assert_eq!(mem.len(), 0);
        assert_eq!(mem.dim(), 128);
        let query = BipolarHypervector::ones(128);
        assert!(mem.nearest(&query).is_none());
        assert!(mem.top_k(&query, 3).is_empty());
        assert!(mem.get("anything").is_none());
    }

    #[test]
    fn insert_get_and_replace() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mem = ItemMemory::new(256);
        let a = BipolarHypervector::random(256, &mut rng);
        let b = BipolarHypervector::random(256, &mut rng);
        assert!(mem.insert("a", a.clone()).is_none());
        assert_eq!(mem.get("a"), Some(&a));
        let replaced = mem.insert("a", b.clone());
        assert_eq!(replaced, Some(a));
        assert_eq!(mem.get("a"), Some(&b));
        assert_eq!(mem.len(), 1);
        assert_eq!(mem.packed().len(), 1);
        assert_eq!(mem.sharded().len(), 1);
    }

    #[test]
    fn remove_forgets_label_and_repacks() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut mem = ItemMemory::with_shards(256, 2);
        let protos: Vec<_> = (0..5)
            .map(|i| {
                let hv = BipolarHypervector::random(256, &mut rng);
                mem.insert(format!("c{i}"), hv.clone());
                hv
            })
            .collect();
        assert_eq!(mem.remove("c2"), Some(protos[2].clone()));
        assert_eq!(mem.remove("c2"), None);
        assert_eq!(mem.len(), 4);
        assert_eq!(mem.sharded().len(), 4);
        assert!(mem.get("c2").is_none());
        // The removed prototype no longer wins its own lookup.
        let (label, _) = mem.nearest(&protos[2]).expect("non-empty");
        assert_ne!(label, "c2");
        // Insertion order of the survivors is preserved.
        let labels: Vec<&str> = mem.labels().collect();
        assert_eq!(labels, vec!["c0", "c1", "c3", "c4"]);
    }

    #[test]
    fn try_insert_rejects_wrong_dim() {
        let mut mem = ItemMemory::new(64);
        let wrong = BipolarHypervector::ones(32);
        assert!(mem.try_insert("x", wrong).is_err());
    }

    #[test]
    fn nearest_recovers_noisy_prototype() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mem = ItemMemory::new(4096);
        let protos: Vec<_> = (0..30)
            .map(|i| {
                let hv = BipolarHypervector::random(4096, &mut rng);
                mem.insert(format!("class{i}"), hv.clone());
                hv
            })
            .collect();
        // Query with 15% of components flipped must still resolve correctly.
        let noisy = protos[17].flip_noise(0.15, &mut rng);
        let (label, sim) = mem.nearest(&noisy).expect("non-empty");
        assert_eq!(label, "class17");
        assert!(sim > 0.5);
    }

    #[test]
    fn top_k_is_sorted_and_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mem = ItemMemory::new(1024);
        for i in 0..10 {
            mem.insert(format!("c{i}"), BipolarHypervector::random(1024, &mut rng));
        }
        let query = mem.get("c4").expect("exists").clone();
        let top = mem.top_k(&query, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, "c4");
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
        // Asking for more than stored returns everything.
        assert_eq!(mem.top_k(&query, 100).len(), 10);
    }

    /// Pins the truncation contract for `k` at and past the stored count:
    /// `min(k, len)` entries, the oversized ask an exact prefix-extension of
    /// the smaller one, and `k == 0` empty — for every shard count.
    #[test]
    fn top_k_truncation_contract_holds_across_shard_counts() {
        let mut rng = StdRng::seed_from_u64(13);
        let protos: Vec<_> = (0..7)
            .map(|_| BipolarHypervector::random(512, &mut rng))
            .collect();
        let query = BipolarHypervector::random(512, &mut rng);
        let mut reference: Option<Vec<(String, u32)>> = None;
        for shards in [1usize, 2, 3, 7, 11] {
            let mut mem = ItemMemory::with_shards(512, shards);
            for (i, hv) in protos.iter().enumerate() {
                mem.insert(format!("c{i}"), hv.clone());
            }
            assert!(mem.top_k(&query, 0).is_empty(), "shards={shards}");
            assert_eq!(mem.top_k(&query, 7).len(), 7, "shards={shards}");
            assert_eq!(mem.top_k(&query, 8).len(), 7, "shards={shards}");
            assert_eq!(mem.top_k(&query, usize::MAX).len(), 7, "shards={shards}");
            // Oversized k returns the exact full ordering, shard-invariantly.
            let full: Vec<(String, u32)> = mem
                .top_k(&query, 100)
                .into_iter()
                .map(|(l, s)| (l.to_string(), s.to_bits()))
                .collect();
            let prefix: Vec<(String, u32)> = mem
                .top_k(&query, 3)
                .into_iter()
                .map(|(l, s)| (l.to_string(), s.to_bits()))
                .collect();
            assert_eq!(&full[..3], &prefix[..], "shards={shards}");
            match &reference {
                None => reference = Some(full),
                Some(expected) => assert_eq!(&full, expected, "shards={shards}"),
            }
        }
    }

    #[test]
    fn iteration_order_is_insertion_order() {
        let mut mem = ItemMemory::new(8);
        mem.insert("first", BipolarHypervector::ones(8));
        mem.insert("second", BipolarHypervector::ones(8).negate());
        let labels: Vec<&str> = mem.labels().collect();
        assert_eq!(labels, vec!["first", "second"]);
        assert_eq!(mem.iter().count(), 2);
    }

    /// Regression test for the old behaviour where ties between equally
    /// similar prototypes were resolved by storage iteration order: the
    /// winner is now always the lexicographically smallest label, no matter
    /// the insertion order — or the shard layout.
    #[test]
    fn ties_resolve_to_smallest_label_regardless_of_insertion_order() {
        let proto = BipolarHypervector::ones(64);
        let query = proto.clone();
        for shards in [1usize, 2, 3] {
            for labels in [
                ["zeta", "alpha", "mid"],
                ["alpha", "mid", "zeta"],
                ["mid", "zeta", "alpha"],
            ] {
                let mut mem = ItemMemory::with_shards(64, shards);
                for label in labels {
                    mem.insert(label, proto.clone());
                }
                let (label, sim) = mem.nearest(&query).expect("non-empty");
                assert_eq!(label, "alpha", "shards {shards} insertion {labels:?}");
                assert_eq!(sim, 1.0);
                let top: Vec<&str> = mem.top_k(&query, 3).into_iter().map(|(l, _)| l).collect();
                assert_eq!(
                    top,
                    vec!["alpha", "mid", "zeta"],
                    "shards {shards} insertion {labels:?}"
                );
            }
        }
    }

    /// The engine-backed lookup must be bit-identical to the scalar cosine
    /// scan it replaced, including at ragged (non-multiple-of-64) dims and
    /// for multi-shard memories.
    #[test]
    fn engine_lookup_bit_identical_to_scalar_scan() {
        let mut rng = StdRng::seed_from_u64(11);
        for (dim, shards) in [
            (63usize, 1usize),
            (64, 2),
            (65, 3),
            (100, 1),
            (777, 4),
            (1024, 2),
        ] {
            let mut mem = ItemMemory::with_shards(dim, shards);
            let protos: Vec<(String, BipolarHypervector)> = (0..23)
                .map(|i| {
                    let hv = BipolarHypervector::random(dim, &mut rng);
                    let label = format!("p{i:02}");
                    mem.insert(label.clone(), hv.clone());
                    (label, hv)
                })
                .collect();
            for _ in 0..5 {
                let query = BipolarHypervector::random(dim, &mut rng);
                let top = mem.top_k(&query, protos.len());
                for (label, sim) in top {
                    let (_, proto) = protos
                        .iter()
                        .find(|(l, _)| l == label)
                        .expect("label exists");
                    assert_eq!(
                        sim.to_bits(),
                        query.cosine(proto).to_bits(),
                        "dim={dim} shards={shards} label={label}"
                    );
                }
            }
        }
    }

    /// Serialization must not persist the sharded mirror: it is rebuilt on
    /// load (preserving the shard count), and lookups through it stay
    /// bit-identical after a round trip.
    #[test]
    fn serde_round_trip_rebuilds_sharded_mirror() {
        let mut rng = StdRng::seed_from_u64(21);
        let dim = 130; // ragged on purpose
        for shards in [1usize, 3] {
            let mut mem = ItemMemory::with_shards(dim, shards);
            for i in 0..9 {
                mem.insert(format!("c{i}"), BipolarHypervector::random(dim, &mut rng));
            }
            let json = serde_json::to_string(&mem).expect("serialize");
            assert!(
                !json.contains("\"sharded\"") && !json.contains("\"words\""),
                "engine mirror must not be persisted: {json}"
            );
            let restored: ItemMemory = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(restored.len(), mem.len());
            assert_eq!(restored.dim(), mem.dim());
            assert_eq!(restored.sharded(), mem.sharded());
            assert_eq!(restored.sharded().num_shards(), shards);
            for _ in 0..5 {
                let query = BipolarHypervector::random(dim, &mut rng);
                assert_eq!(restored.nearest(&query), mem.nearest(&query));
                assert_eq!(restored.top_k(&query, 4), mem.top_k(&query, 4));
            }
        }
    }

    /// Documents persisted before the sharded mirror existed carry no
    /// "shards" field; they must keep loading as single-shard memories with
    /// bit-identical lookups.
    #[test]
    fn serde_accepts_pre_shards_documents_as_single_shard() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut mem = ItemMemory::new(130);
        for i in 0..5 {
            mem.insert(format!("c{i}"), BipolarHypervector::random(130, &mut rng));
        }
        let json = serde_json::to_string(&mem).expect("serialize");
        // Reconstruct the pre-sharding format by dropping the new field.
        let legacy = json.replace("\"shards\":1,", "");
        assert_ne!(legacy, json);
        let restored: ItemMemory = serde_json::from_str(&legacy).expect("legacy doc loads");
        assert_eq!(restored.sharded().num_shards(), 1);
        assert_eq!(restored.sharded(), mem.sharded());
        let query = BipolarHypervector::random(130, &mut rng);
        assert_eq!(restored.nearest(&query), mem.nearest(&query));
    }

    /// Corrupted documents fail with typed errors instead of breaking the
    /// mirror invariant.
    #[test]
    fn serde_rejects_inconsistent_documents() {
        let mut mem = ItemMemory::new(8);
        mem.insert("a", BipolarHypervector::ones(8));
        let json = serde_json::to_string(&mem).expect("serialize");
        // Label/prototype count mismatch.
        let bad = json.replace("[\"a\"]", "[\"a\",\"b\"]");
        assert_ne!(bad, json);
        assert!(serde_json::from_str::<ItemMemory>(&bad).is_err());
        // A prototype entry outside ±1.
        let bad = json.replace("1,1,1,1,1,1,1,1", "1,1,1,1,1,1,1,3");
        assert_ne!(bad, json);
        assert!(serde_json::from_str::<ItemMemory>(&bad).is_err());
        // Zero dimensionality.
        let bad = json.replace("\"dim\":8", "\"dim\":0");
        assert_ne!(bad, json);
        assert!(serde_json::from_str::<ItemMemory>(&bad).is_err());
        // Zero shards.
        let bad = json.replace("\"shards\":1", "\"shards\":0");
        assert_ne!(bad, json);
        assert!(serde_json::from_str::<ItemMemory>(&bad).is_err());
    }

    /// Indexed mode with full probing must be a drop-in: across an
    /// add/replace/remove mutation sequence, nearest and top-k through the
    /// routed index stay bit-identical to the exhaustive sharded path, and
    /// the index tracks the live class set incrementally.
    #[test]
    fn routed_index_lookups_bit_identical_to_exhaustive() {
        let mut rng = StdRng::seed_from_u64(31);
        let dim = 130; // ragged on purpose
        let mut plain = ItemMemory::new(dim);
        let mut indexed = ItemMemory::with_routed_index(
            dim,
            engine::RoutedConfig {
                clusters: 3,
                ..engine::RoutedConfig::default()
            },
        );
        assert!(indexed.routed().expect("indexed").probes_exhaustively());
        fn check(plain: &ItemMemory, indexed: &ItemMemory, dim: usize, rng: &mut StdRng) {
            assert_eq!(indexed.routed().expect("indexed").len(), plain.len());
            for _ in 0..4 {
                let query = BipolarHypervector::random(dim, rng);
                assert_eq!(
                    indexed
                        .nearest(&query)
                        .map(|(l, s)| (l.to_string(), s.to_bits())),
                    plain
                        .nearest(&query)
                        .map(|(l, s)| (l.to_string(), s.to_bits()))
                );
                let routed_top: Vec<(String, u32)> = indexed
                    .top_k(&query, 5)
                    .into_iter()
                    .map(|(l, s)| (l.to_string(), s.to_bits()))
                    .collect();
                let plain_top: Vec<(String, u32)> = plain
                    .top_k(&query, 5)
                    .into_iter()
                    .map(|(l, s)| (l.to_string(), s.to_bits()))
                    .collect();
                assert_eq!(routed_top, plain_top);
            }
        }
        for i in 0..20 {
            let hv = BipolarHypervector::random(dim, &mut rng);
            plain.insert(format!("c{i:02}"), hv.clone());
            indexed.insert(format!("c{i:02}"), hv);
        }
        check(&plain, &indexed, dim, &mut rng);
        // Replace some, remove some — only touched clusters repack.
        for i in [3usize, 7, 11] {
            let hv = BipolarHypervector::random(dim, &mut rng);
            plain.insert(format!("c{i:02}"), hv.clone());
            indexed.insert(format!("c{i:02}"), hv);
        }
        for i in [0usize, 14] {
            assert!(plain.remove(&format!("c{i:02}")).is_some());
            assert!(indexed.remove(&format!("c{i:02}")).is_some());
        }
        check(&plain, &indexed, dim, &mut rng);
    }

    /// Indexed checkpoints persist only the routed *configuration*; loading
    /// re-clusters the final prototype set under the saved seed, so restored
    /// memories agree with the original bit-for-bit under full probing and
    /// two loads of the same document are structurally identical.
    #[test]
    fn serde_round_trip_rebuilds_routed_index() {
        let mut rng = StdRng::seed_from_u64(37);
        let dim = 96;
        let mut mem = ItemMemory::with_routed_index(
            dim,
            engine::RoutedConfig {
                clusters: 4,
                seed: 99,
                ..engine::RoutedConfig::default()
            },
        );
        for i in 0..15 {
            mem.insert(
                format!("c{i:02}"),
                BipolarHypervector::random(dim, &mut rng),
            );
        }
        let json = serde_json::to_string(&mem).expect("serialize");
        assert!(json.contains("\"routed\""));
        assert!(
            !json.contains("\"centroids\""),
            "routed mirror must not be persisted: {json}"
        );
        let restored: ItemMemory = serde_json::from_str(&json).expect("deserialize");
        let restored_again: ItemMemory = serde_json::from_str(&json).expect("deserialize");
        let routed = restored.routed().expect("indexed mode survives");
        assert_eq!(routed.config(), mem.routed().expect("indexed").config());
        assert_eq!(routed, restored_again.routed().expect("indexed"));
        for _ in 0..5 {
            let query = BipolarHypervector::random(dim, &mut rng);
            assert_eq!(
                restored
                    .nearest(&query)
                    .map(|(l, s)| (l.to_string(), s.to_bits())),
                mem.nearest(&query)
                    .map(|(l, s)| (l.to_string(), s.to_bits()))
            );
        }
        // Non-indexed memories keep serializing without the field.
        let plain = ItemMemory::new(dim);
        assert!(!serde_json::to_string(&plain)
            .expect("serialize")
            .contains("\"routed\""));
        // set_nprobe is a no-op off-index, live on-index.
        let mut plain = plain;
        assert!(!plain.set_nprobe(2));
        assert!(mem.set_nprobe(2));
        assert!(!mem.routed().expect("indexed").probes_exhaustively());
    }

    #[test]
    fn unbinding_recovers_value_via_item_memory() {
        // The classic HDC decode test: given a bound pair g ⊙ v and the group
        // hypervector g, unbinding (binding again with g) followed by cleanup
        // in an item memory of value hypervectors recovers v.
        let mut rng = StdRng::seed_from_u64(4);
        let dim = 4096;
        let mut values_mem = ItemMemory::with_shards(dim, 4);
        let values: Vec<_> = (0..61)
            .map(|i| {
                let hv = BipolarHypervector::random(dim, &mut rng);
                values_mem.insert(format!("v{i}"), hv.clone());
                hv
            })
            .collect();
        let group = BipolarHypervector::random(dim, &mut rng);
        let bound = group.bind(&values[42]);
        let unbound = bound.bind(&group);
        let (label, sim) = values_mem.nearest(&unbound).expect("non-empty");
        assert_eq!(label, "v42");
        assert!((sim - 1.0).abs() < 1e-6);
    }
}
