//! Stationary codebooks of atomic hypervectors.
//!
//! The paper stores two small codebooks — attribute *groups* (`G = 28`) and
//! attribute *values* (`V = 61`) — instead of one hypervector per
//! group/value combination (`α = 312`), a 71% memory reduction (§III-A).
//! [`CodebookMemory`] reproduces that accounting.

use crate::{BipolarHypervector, HdcConfig, HdcError};
use rand::Rng;
use serde::{de, DeError, Deserialize, Serialize, Value};
use tensor::Matrix;

/// An ordered collection of atomic bipolar hypervectors indexed by symbol id.
///
/// Codebooks are *stationary*: they are randomly initialised once and never
/// trained, which is the central premise of the HDC-ZSC attribute encoder.
///
/// # Example
///
/// ```
/// use hdc::{Codebook, HdcConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let groups = Codebook::random(28, &HdcConfig::new(1536), &mut rng);
/// assert_eq!(groups.len(), 28);
/// assert_eq!(groups.dim(), 1536);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Codebook {
    dim: usize,
    entries: Vec<BipolarHypervector>,
}

/// Hand-written (instead of derived) so documents with mismatched entry
/// dimensionalities or an empty codebook are rejected with a typed error.
impl Deserialize for Codebook {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = de::expect_object(value, "Codebook")?;
        let dim: usize = de::field(fields, "dim", "Codebook")?;
        let entries: Vec<BipolarHypervector> = de::field(fields, "entries", "Codebook")?;
        if entries.is_empty() {
            return Err(DeError::new("a codebook needs at least one entry").in_field("Codebook"));
        }
        if let Some(bad) = entries.iter().find(|hv| hv.dim() != dim) {
            return Err(DeError::new(format!(
                "entry dimensionality {} does not match the codebook's {dim}",
                bad.dim()
            ))
            .in_field("Codebook"));
        }
        Ok(Self { dim, entries })
    }
}

impl Codebook {
    /// Generates `n` random atomic hypervectors of the configured
    /// dimensionality (Rademacher-distributed, as in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random<R: Rng + ?Sized>(n: usize, config: &HdcConfig, rng: &mut R) -> Self {
        assert!(n > 0, "a codebook needs at least one entry");
        Self {
            dim: config.dim(),
            entries: (0..n)
                .map(|_| BipolarHypervector::random(config.dim(), rng))
                .collect(),
        }
    }

    /// Builds a codebook from existing hypervectors.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or the dimensionalities differ.
    pub fn from_entries(entries: Vec<BipolarHypervector>) -> Self {
        assert!(!entries.is_empty(), "a codebook needs at least one entry");
        let dim = entries[0].dim();
        assert!(
            entries.iter().all(|hv| hv.dim() == dim),
            "codebook entries must share dimensionality"
        );
        Self { dim, entries }
    }

    /// Number of atomic hypervectors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the codebook has no entries (never true for
    /// constructed codebooks).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Dimensionality of the stored hypervectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows the hypervector for symbol `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range; use [`Codebook::try_get`] for a
    /// checked variant.
    pub fn get(&self, index: usize) -> &BipolarHypervector {
        &self.entries[index]
    }

    /// Checked variant of [`Codebook::get`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] if `index >= self.len()`.
    pub fn try_get(&self, index: usize) -> Result<&BipolarHypervector, HdcError> {
        self.entries.get(index).ok_or(HdcError::IndexOutOfRange {
            index,
            len: self.entries.len(),
        })
    }

    /// Iterates over the stored hypervectors in symbol order.
    pub fn iter(&self) -> std::slice::Iter<'_, BipolarHypervector> {
        self.entries.iter()
    }

    /// Binds entry `left` of this codebook with entry `right` of `other`,
    /// materialising a compound codevector on the fly — exactly how the
    /// paper's attribute dictionary rows `bₓ = g_y ⊙ v_z` are produced.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfRange`] if either index is out of range
    /// or [`HdcError::DimensionMismatch`] if the codebooks differ in
    /// dimensionality.
    pub fn bind_with(
        &self,
        left: usize,
        other: &Codebook,
        right: usize,
    ) -> Result<BipolarHypervector, HdcError> {
        let a = self.try_get(left)?;
        let b = other.try_get(right)?;
        a.try_bind(b)
    }

    /// Stacks the codebook into a dense `len × dim` ±1 matrix.
    pub fn to_matrix(&self) -> Matrix {
        BipolarHypervector::stack_to_matrix(&self.entries)
    }

    /// Memory footprint in bytes assuming a 1-bit-per-component packed
    /// storage (the deployment format the paper's 17 KB figure refers to).
    pub fn packed_memory_bytes(&self) -> usize {
        self.entries.len() * self.dim.div_ceil(8)
    }

    /// Mean absolute pairwise cosine similarity between distinct entries — a
    /// measure of quasi-orthogonality (should be ≈ `sqrt(2/(π·d))`).
    pub fn mean_abs_cross_similarity(&self) -> f32 {
        let n = self.entries.len();
        if n < 2 {
            return 0.0;
        }
        let mut acc = 0.0f32;
        let mut count = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                acc += self.entries[i].cosine(&self.entries[j]).abs();
                count += 1;
            }
        }
        acc / count as f32
    }
}

impl<'a> IntoIterator for &'a Codebook {
    type Item = &'a BipolarHypervector;
    type IntoIter = std::slice::Iter<'a, BipolarHypervector>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// Memory accounting for the factored group/value codebook scheme of §III-A.
///
/// The paper reports that storing `G + V = 89` atomic hypervectors instead of
/// `α = 312` attribute-level hypervectors yields a 71% memory reduction and
/// about 17 KB of total codebook storage at `d = 1536`.
///
/// # Example
///
/// ```
/// use hdc::CodebookMemory;
///
/// let mem = CodebookMemory::new(28, 61, 312, 1536);
/// assert!((mem.reduction_fraction() - 0.7147).abs() < 0.01);
/// assert!(mem.factored_bytes() < 18 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodebookMemory {
    groups: usize,
    values: usize,
    attributes: usize,
    dim: usize,
}

impl CodebookMemory {
    /// Creates a memory model for `groups` group hypervectors, `values` value
    /// hypervectors, `attributes` group/value combinations and dimensionality
    /// `dim`.
    pub fn new(groups: usize, values: usize, attributes: usize, dim: usize) -> Self {
        Self {
            groups,
            values,
            attributes,
            dim,
        }
    }

    /// The CUB-200 configuration used throughout the paper
    /// (`G = 28`, `V = 61`, `α = 312`, `d = 1536`).
    pub fn cub200_default() -> Self {
        Self::new(28, 61, 312, 1536)
    }

    /// Bytes needed to store one packed binary hypervector.
    fn hv_bytes(&self) -> usize {
        self.dim.div_ceil(8)
    }

    /// Bytes needed by the factored scheme (group + value codebooks).
    pub fn factored_bytes(&self) -> usize {
        (self.groups + self.values) * self.hv_bytes()
    }

    /// Bytes needed by the naive scheme (one hypervector per attribute).
    pub fn naive_bytes(&self) -> usize {
        self.attributes * self.hv_bytes()
    }

    /// Fractional memory reduction of the factored scheme,
    /// `1 − (G+V)/α` (≈ 0.71 for CUB-200).
    pub fn reduction_fraction(&self) -> f32 {
        1.0 - (self.groups + self.values) as f32 / self.attributes as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_codebook_properties() {
        let mut rng = StdRng::seed_from_u64(1);
        let cb = Codebook::random(28, &HdcConfig::new(2048), &mut rng);
        assert_eq!(cb.len(), 28);
        assert_eq!(cb.dim(), 2048);
        assert!(!cb.is_empty());
        assert_eq!(cb.iter().count(), 28);
        assert_eq!((&cb).into_iter().count(), 28);
    }

    #[test]
    fn codebook_entries_are_quasi_orthogonal() {
        let mut rng = StdRng::seed_from_u64(2);
        let cb = Codebook::random(30, &HdcConfig::new(4096), &mut rng);
        let mean_sim = cb.mean_abs_cross_similarity();
        assert!(mean_sim < 0.05, "mean |cos| was {mean_sim}");
    }

    #[test]
    fn try_get_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let cb = Codebook::random(3, &HdcConfig::new(64), &mut rng);
        assert!(cb.try_get(2).is_ok());
        assert!(matches!(
            cb.try_get(3),
            Err(HdcError::IndexOutOfRange { index: 3, len: 3 })
        ));
    }

    #[test]
    fn bind_with_materialises_attribute_vector() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = HdcConfig::new(2048);
        let groups = Codebook::random(5, &cfg, &mut rng);
        let values = Codebook::random(7, &cfg, &mut rng);
        let bound = groups.bind_with(2, &values, 6).expect("valid indices");
        assert_eq!(bound, groups.get(2).bind(values.get(6)));
        assert!(groups.bind_with(9, &values, 0).is_err());
        assert!(groups.bind_with(0, &values, 9).is_err());
    }

    #[test]
    fn bind_with_rejects_dimension_mismatch() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Codebook::random(2, &HdcConfig::new(64), &mut rng);
        let b = Codebook::random(2, &HdcConfig::new(128), &mut rng);
        assert!(a.bind_with(0, &b, 0).is_err());
    }

    #[test]
    fn from_entries_validates_dims() {
        let entries = vec![BipolarHypervector::ones(16), BipolarHypervector::ones(16)];
        let cb = Codebook::from_entries(entries);
        assert_eq!(cb.dim(), 16);
    }

    #[test]
    #[should_panic(expected = "share dimensionality")]
    fn from_entries_rejects_mixed_dims() {
        let _ = Codebook::from_entries(vec![
            BipolarHypervector::ones(16),
            BipolarHypervector::ones(32),
        ]);
    }

    #[test]
    fn to_matrix_shape() {
        let mut rng = StdRng::seed_from_u64(6);
        let cb = Codebook::random(4, &HdcConfig::new(256), &mut rng);
        let m = cb.to_matrix();
        assert_eq!(m.shape(), (4, 256));
    }

    #[test]
    fn memory_reduction_matches_paper_claim() {
        let mem = CodebookMemory::cub200_default();
        // Paper: "71% reduction in memory requirement".
        assert!((mem.reduction_fraction() - 0.71).abs() < 0.01);
        // Paper: "just 17 KB of memory for storing the atomic hypervectors".
        let kb = mem.factored_bytes() as f32 / 1024.0;
        assert!(kb > 16.0 && kb < 18.0, "factored codebooks were {kb} KB");
        assert!(mem.naive_bytes() > mem.factored_bytes());
    }

    #[test]
    fn single_entry_codebook_similarity_zero() {
        let mut rng = StdRng::seed_from_u64(7);
        let cb = Codebook::random(1, &HdcConfig::new(64), &mut rng);
        assert_eq!(cb.mean_abs_cross_similarity(), 0.0);
    }
}
