//! Property tests for the GZSL and open-set metric families: the H metric's
//! bounds and zero law, AUROC's invariance under monotone score transforms,
//! and rejection precision/recall at the degenerate thresholds.

use metrics::gzsl::harmonic_mean;
use metrics::open_set::{auroc, rejection_report};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy producing a mixed batch of quantized scores (multiples of 1/8,
/// so tie groups survive affine transforms exactly) with known/distractor
/// flags. Quantization makes ties common enough that the average-rank path
/// in AUROC is genuinely exercised.
fn mixed_batch(len: std::ops::Range<usize>) -> impl Strategy<Value = (Vec<f32>, Vec<bool>)> {
    (len, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let scores = (0..n)
            .map(|_| rng.gen_range(0u8..=40) as f32 / 8.0)
            .collect();
        let labels = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        (scores, labels)
    })
}

proptest! {
    /// H lies between min and max of the two group accuracies whenever both
    /// are positive (the mean-inequality chain min ≤ H ≤ G ≤ A ≤ max), and
    /// collapses to 0 as soon as either group is 0.
    #[test]
    fn harmonic_mean_is_bounded_by_min_and_max(
        a in 0.0f32..=1.0,
        b in 0.0f32..=1.0,
    ) {
        let h = harmonic_mean(a, b);
        let (lo, hi) = (a.min(b), a.max(b));
        if a == 0.0 || b == 0.0 {
            prop_assert_eq!(h, 0.0);
        } else {
            // Tiny ε absorbs f32 rounding.
            prop_assert!(h >= lo - 1e-6, "h={h} below min({a},{b})");
            prop_assert!(h <= hi + 1e-6, "h={h} above max({a},{b})");
            prop_assert!(h > 0.0, "both groups positive must give H > 0");
        }
    }

    /// H = 0 iff either group accuracy is 0.
    #[test]
    fn harmonic_mean_zero_law(a in 0.0f32..=1.0, b in 0.0f32..=1.0) {
        let h = harmonic_mean(a, b);
        prop_assert_eq!(h == 0.0, a == 0.0 || b == 0.0);
    }

    /// H treats the two groups symmetrically.
    #[test]
    fn harmonic_mean_is_symmetric(a in 0.0f32..=1.0, b in 0.0f32..=1.0) {
        prop_assert_eq!(harmonic_mean(a, b), harmonic_mean(b, a));
    }

    /// AUROC depends only on the score *ordering*: any strictly increasing
    /// affine transform leaves it exactly unchanged (average-rank tie
    /// handling preserves tie groups under the transform).
    #[test]
    fn auroc_is_invariant_under_monotone_transforms(
        (scores, labels) in mixed_batch(2..40),
        scale in 1u8..=8,
        shift in -4i8..=4,
    ) {
        let transformed: Vec<f32> = scores
            .iter()
            .map(|&s| s * scale as f32 + shift as f32)
            .collect();
        prop_assert_eq!(auroc(&scores, &labels), auroc(&transformed, &labels));
    }

    /// AUROC is defined exactly when both classes are present, and always
    /// lands in [0, 1].
    #[test]
    fn auroc_is_defined_iff_both_classes_present(
        (scores, labels) in mixed_batch(0..30),
    ) {
        let positives = labels.iter().filter(|&&l| l).count();
        match auroc(&scores, &labels) {
            None => prop_assert!(positives == 0 || positives == labels.len()),
            Some(a) => {
                prop_assert!(positives > 0 && positives < labels.len());
                prop_assert!((0.0..=1.0).contains(&a), "auroc {a} out of range");
            }
        }
    }

    /// Degenerate thresholds: a threshold above every score rejects
    /// everything (recall 1 where defined), one at/below every score rejects
    /// nothing (precision undefined, recall 0 where defined), and an empty
    /// partition always reports `None` instead of a fabricated rate.
    #[test]
    fn rejection_edges_all_and_none(
        (scores, known) in mixed_batch(0..30),
    ) {
        let knowns = known.iter().filter(|&&k| k).count();
        let distractors = known.len() - knowns;

        let above = scores.iter().fold(0.0f32, |m, &s| m.max(s)) + 1.0;
        let all = rejection_report(&scores, &known, above);
        prop_assert_eq!(all.rejected, scores.len());
        prop_assert_eq!(all.recall, (distractors > 0).then_some(1.0));
        prop_assert_eq!(all.false_reject_rate, (knowns > 0).then_some(1.0));
        prop_assert_eq!(
            all.precision.is_some(),
            !scores.is_empty(),
            "everything rejected: precision defined iff the batch is non-empty"
        );

        let below = scores.iter().fold(0.0f32, |m, &s| m.min(s)) - 1.0;
        let none = rejection_report(&scores, &known, below);
        prop_assert_eq!(none.rejected, 0);
        prop_assert_eq!(none.precision, None);
        prop_assert_eq!(none.recall, (distractors > 0).then_some(0.0));
        prop_assert_eq!(none.false_reject_rate, (knowns > 0).then_some(0.0));
    }

    /// Counting identity: `rejected` matches a direct recount of the strict
    /// `score < threshold` rule, and defined rates stay in [0, 1].
    #[test]
    fn rejection_counts_are_consistent(
        (scores, known) in mixed_batch(1..40),
        threshold_q in 0u8..=41,
    ) {
        let threshold = threshold_q as f32 / 8.0;
        let report = rejection_report(&scores, &known, threshold);
        let manual = scores.iter().filter(|&&s| s < threshold).count();
        prop_assert_eq!(report.rejected, manual);
        for rate in [report.precision, report.recall, report.false_reject_rate]
            .into_iter()
            .flatten()
        {
            prop_assert!((0.0..=1.0).contains(&rate));
        }
    }
}
