//! Edge-case coverage for the metrics crate: empty confusion matrices,
//! top-k with `k` larger than the number of classes, and WMAP in the
//! presence of attributes/classes with zero instances.

use metrics::confusion::ConfusionMatrix;
use metrics::topk::{mean_per_class_accuracy, per_class_accuracy, top1_accuracy, topk_accuracy};
use metrics::wmap::{group_top1_accuracy, weighted_average_precision};
use tensor::Matrix;

#[test]
fn empty_confusion_matrix_is_well_defined() {
    let cm = ConfusionMatrix::new(4);
    assert_eq!(cm.total(), 0);
    assert_eq!(cm.accuracy(), 0.0, "no records must not divide by zero");
    for class in 0..4 {
        assert_eq!(cm.recall(class), None);
        assert_eq!(cm.precision(class), None);
    }
    assert_eq!(cm.most_confused_pair(), None);
}

#[test]
#[should_panic(expected = "need at least one class")]
fn zero_class_confusion_matrix_is_rejected() {
    // The documented contract: a confusion matrix over zero classes is a
    // construction error, not a silently-empty metric.
    let _ = ConfusionMatrix::new(0);
}

#[test]
fn confusion_matrix_with_unseen_class_reports_none() {
    let mut cm = ConfusionMatrix::new(3);
    // Class 2 never appears as target or prediction.
    cm.record_batch(&[0, 0, 1], &[0, 1, 1]);
    assert_eq!(cm.recall(2), None);
    assert_eq!(cm.precision(2), None);
    assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-6);
    assert_eq!(cm.most_confused_pair(), Some((0, 1, 1)));
}

#[test]
fn topk_with_k_beyond_classes_saturates_at_one() {
    // 3 classes; every target is somewhere in the full ranking, so any
    // k >= 3 must give accuracy 1.0 rather than panic or overcount.
    let scores = Matrix::from_rows(&[vec![0.1, 0.7, 0.2], vec![0.5, 0.3, 0.2]]);
    let targets = [2usize, 1];
    assert_eq!(topk_accuracy(&scores, &targets, 3), 1.0);
    assert_eq!(topk_accuracy(&scores, &targets, 10), 1.0);
    // Sanity: the same inputs are not already perfect at k = 1.
    assert!(top1_accuracy(&scores, &targets) < 1.0);
}

#[test]
fn topk_on_empty_batch_is_zero() {
    let scores = Matrix::zeros(0, 5);
    assert_eq!(topk_accuracy(&scores, &[], 3), 0.0);
    assert_eq!(top1_accuracy(&scores, &[]), 0.0);
}

#[test]
fn per_class_accuracy_skips_classes_with_zero_instances() {
    // Class 1 has no samples; it must be reported as None and excluded from
    // the mean rather than dragging it toward zero.
    let scores = Matrix::from_rows(&[vec![1.0, 0.0, 0.0], vec![0.0, 0.0, 1.0]]);
    let targets = [0usize, 2];
    let per_class = per_class_accuracy(&scores, &targets, 3);
    assert_eq!(per_class, vec![Some(1.0), None, Some(1.0)]);
    assert_eq!(mean_per_class_accuracy(&scores, &targets, 3), 1.0);
}

#[test]
fn wmap_skips_attributes_with_zero_positives() {
    // Column 1 has no positive targets at threshold 0.5: it must be skipped,
    // leaving the (perfectly ranked) column 0 as the only contribution.
    let scores = Matrix::from_rows(&[vec![0.9, 0.8], vec![0.1, 0.7]]);
    let targets = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 0.0]]);
    let wmap = weighted_average_precision(&scores, &targets, &[0, 1], 0.5);
    assert!((wmap - 1.0).abs() < 1e-6, "wmap = {wmap}");
}

#[test]
fn wmap_with_no_positive_attributes_is_zero() {
    let scores = Matrix::from_rows(&[vec![0.9, 0.8]]);
    let targets = Matrix::zeros(1, 2);
    assert_eq!(
        weighted_average_precision(&scores, &targets, &[0, 1], 0.5),
        0.0
    );
}

#[test]
fn wmap_upweights_rare_attributes() {
    // Column 0: frequent (2/4 positives), ranked perfectly (AP = 1).
    // Column 1: rare (1/4 positives), ranked worst (positive scored last).
    let scores = Matrix::from_rows(&[
        vec![0.9, 0.9],
        vec![0.8, 0.8],
        vec![0.1, 0.7],
        vec![0.2, 0.1],
    ]);
    let targets = Matrix::from_rows(&[
        vec![1.0, 0.0],
        vec![1.0, 0.0],
        vec![0.0, 0.0],
        vec![0.0, 1.0],
    ]);
    let wmap = weighted_average_precision(&scores, &targets, &[0, 1], 0.5);
    // Unweighted mean of APs would be (1 + 0.25) / 2 = 0.625; the inverse
    // frequency weighting (1/0.5 vs 1/0.25) pulls it down toward the rare,
    // badly-ranked attribute: (2·1 + 4·0.25) / 6 = 0.5.
    assert!((wmap - 0.5).abs() < 1e-6, "wmap = {wmap}");
}

#[test]
fn group_top1_skips_samples_without_annotated_value() {
    // Second sample's strongest target is below threshold: skipped entirely.
    let scores = Matrix::from_rows(&[vec![0.9, 0.1], vec![0.2, 0.8]]);
    let targets = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.1, 0.2]]);
    let acc = group_top1_accuracy(&scores, &targets, &[0, 1], 0.5);
    assert_eq!(acc, 1.0);
    // All samples below threshold: the metric degrades to 0, not NaN.
    let empty_targets = Matrix::zeros(2, 2);
    assert_eq!(
        group_top1_accuracy(&scores, &empty_targets, &[0, 1], 0.5),
        0.0
    );
}
