//! Open-set rejection metrics: rejection precision/recall at a similarity
//! threshold and AUROC over the known-vs-distractor score distributions.
//!
//! Open-set traffic mixes queries that match a stored class ("known") with
//! distractors that match none. A calibrated similarity threshold turns the
//! top-1 similarity into a reject decision (`score < threshold` → reject);
//! this module scores that decision rule. AUROC summarises the whole score
//! distribution independently of any particular threshold, using the
//! Mann–Whitney rank statistic (average ranks over ties), so it is invariant
//! under strictly monotone transforms of the scores — the same property the
//! ranking behind [`average_precision`](fn@crate::average_precision) relies
//! on.

/// Rejection quality at one threshold, treating "reject a distractor" as a
/// true positive of the rejection rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RejectionReport {
    /// Of everything rejected, the fraction that really was a distractor;
    /// `None` when nothing was rejected.
    pub precision: Option<f32>,
    /// Of all distractors, the fraction that was rejected; `None` when the
    /// batch held no distractors.
    pub recall: Option<f32>,
    /// Known queries wrongly rejected, as a fraction of all known queries;
    /// `None` when the batch held no known queries. This is the quantity a
    /// calibrated threshold targets.
    pub false_reject_rate: Option<f32>,
    /// Total queries rejected by the rule.
    pub rejected: usize,
}

/// Scores the reject rule `score < threshold` over a mixed batch.
///
/// `scores[i]` is the top-1 similarity of query `i` and `known[i]` marks the
/// queries whose true class is stored (distractors are `false`).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn rejection_report(scores: &[f32], known: &[bool], threshold: f32) -> RejectionReport {
    assert_eq!(
        scores.len(),
        known.len(),
        "scores and known flags must have the same length"
    );
    let (mut rejected, mut true_rejects) = (0usize, 0usize);
    let (mut distractors, mut knowns, mut false_rejects) = (0usize, 0usize, 0usize);
    for (&score, &is_known) in scores.iter().zip(known) {
        if is_known {
            knowns += 1;
        } else {
            distractors += 1;
        }
        if score < threshold {
            rejected += 1;
            if is_known {
                false_rejects += 1;
            } else {
                true_rejects += 1;
            }
        }
    }
    let ratio = |num: usize, den: usize| (den > 0).then(|| num as f32 / den as f32);
    RejectionReport {
        precision: ratio(true_rejects, rejected),
        recall: ratio(true_rejects, distractors),
        false_reject_rate: ratio(false_rejects, knowns),
        rejected,
    }
}

/// Area under the ROC curve of separating positives (`labels[i] == true`,
/// the known queries) from negatives by score, higher scores more positive.
///
/// Computed as the normalized Mann–Whitney U statistic with average ranks
/// over tied scores, so ties contribute ½ and the result is exactly
/// invariant under strictly monotone score transforms. Returns `None` when
/// either class is empty (the curve is undefined).
///
/// # Panics
///
/// Panics if the slices differ in length or any score is NaN.
pub fn auroc(scores: &[f32], labels: &[bool]) -> Option<f32> {
    assert_eq!(
        scores.len(),
        labels.len(),
        "scores and labels must have the same length"
    );
    let positives = labels.iter().filter(|&&l| l).count();
    let negatives = labels.len() - positives;
    if positives == 0 || negatives == 0 {
        return None;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .expect("AUROC scores must not be NaN")
    });
    // Walk tie groups in ascending score order; every member of a group gets
    // the group's average rank (1-based).
    let mut positive_rank_sum = 0.0f64;
    let mut start = 0usize;
    while start < order.len() {
        let mut end = start + 1;
        while end < order.len() && scores[order[end]] == scores[order[start]] {
            end += 1;
        }
        let average_rank = (start + 1 + end) as f64 / 2.0;
        for &idx in &order[start..end] {
            if labels[idx] {
                positive_rank_sum += average_rank;
            }
        }
        start = end;
    }
    let p = positives as f64;
    let n = negatives as f64;
    let u = positive_rank_sum - p * (p + 1.0) / 2.0;
    Some((u / (p * n)) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_separated_scores_have_auroc_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert_eq!(auroc(&scores, &labels), Some(1.0));
        assert_eq!(
            auroc(&scores, &[false, false, true, true]),
            Some(0.0),
            "inverted separation is 0"
        );
    }

    #[test]
    fn interleaved_scores_match_hand_computation() {
        // Ascending: 0.1(-), 0.4(+), 0.6(-), 0.9(+) → pairs won: the 0.4
        // positive beats one negative, the 0.9 positive beats both → U = 3
        // of 4 → AUROC 0.75.
        let scores = [0.9, 0.4, 0.6, 0.1];
        let labels = [true, true, false, false];
        assert_eq!(auroc(&scores, &labels), Some(0.75));
    }

    #[test]
    fn ties_contribute_half() {
        // One positive and one negative at the same score: U = 0.5.
        assert_eq!(auroc(&[0.5, 0.5], &[true, false]), Some(0.5));
        // All scores identical: AUROC is exactly chance.
        assert_eq!(
            auroc(&[0.3, 0.3, 0.3, 0.3], &[true, false, true, false]),
            Some(0.5)
        );
    }

    #[test]
    fn single_class_batches_are_undefined() {
        assert_eq!(auroc(&[0.5, 0.6], &[true, true]), None);
        assert_eq!(auroc(&[0.5, 0.6], &[false, false]), None);
        assert_eq!(auroc(&[], &[]), None);
    }

    #[test]
    fn rejection_report_counts_each_quadrant() {
        // knowns at 0.8 / 0.1, distractors at 0.3 / 0.05; threshold 0.2
        // rejects one known (0.1) and one distractor (0.05).
        let scores = [0.8, 0.1, 0.3, 0.05];
        let known = [true, true, false, false];
        let report = rejection_report(&scores, &known, 0.2);
        assert_eq!(report.rejected, 2);
        assert_eq!(report.precision, Some(0.5));
        assert_eq!(report.recall, Some(0.5));
        assert_eq!(report.false_reject_rate, Some(0.5));
    }

    #[test]
    fn all_reject_and_none_reject_edges() {
        let scores = [0.8, 0.1, 0.3];
        let known = [true, true, false];
        // Threshold above every score: everything rejected.
        let all = rejection_report(&scores, &known, 1.0);
        assert_eq!(all.rejected, 3);
        assert_eq!(all.precision, Some(1.0 / 3.0));
        assert_eq!(all.recall, Some(1.0));
        assert_eq!(all.false_reject_rate, Some(1.0));
        // Threshold at/below every score: nothing rejected, precision
        // undefined. The rule is strict `<`, so a score equal to the
        // threshold survives.
        let none = rejection_report(&scores, &known, 0.1);
        assert_eq!(none.rejected, 0, "strict `<`: the 0.1 known survives");
        let none = rejection_report(&scores, &known, 0.05);
        assert_eq!(none.rejected, 0);
        assert_eq!(none.precision, None);
        assert_eq!(none.recall, Some(0.0));
        assert_eq!(none.false_reject_rate, Some(0.0));
    }

    #[test]
    fn empty_partitions_report_none() {
        // No distractors: recall undefined, precision well-defined.
        let report = rejection_report(&[0.2, 0.9], &[true, true], 0.5);
        assert_eq!(report.recall, None);
        assert_eq!(report.precision, Some(0.0));
        assert_eq!(report.false_reject_rate, Some(0.5));
        // No knowns: false-reject rate undefined.
        let report = rejection_report(&[0.2], &[false], 0.5);
        assert_eq!(report.false_reject_rate, None);
        assert_eq!(report.recall, Some(1.0));
        // Empty batch: everything undefined, nothing rejected.
        let report = rejection_report(&[], &[], 0.5);
        assert_eq!(
            report,
            RejectionReport {
                precision: None,
                recall: None,
                false_reject_rate: None,
                rejected: 0
            }
        );
    }
}
