//! Binary average precision (AP) and mean average precision (mAP).

/// Average precision of a binary ranking problem.
///
/// `scores` are arbitrary real-valued confidences, `labels` mark the positive
/// items. AP is the mean of the precision values measured at each positive
/// item when items are sorted by descending score (the "area under the
/// precision-recall curve" estimator used by scikit-learn's
/// `average_precision_score` with default settings).
///
/// Returns `None` when there are no positive labels (AP is undefined).
///
/// # Panics
///
/// Panics if `scores.len() != labels.len()`.
///
/// # Example
///
/// ```
/// let ap = metrics::average_precision(&[0.9, 0.8, 0.1], &[true, false, true]);
/// assert!((ap.unwrap() - 0.8333).abs() < 1e-3);
/// ```
pub fn average_precision(scores: &[f32], labels: &[bool]) -> Option<f32> {
    assert_eq!(
        scores.len(),
        labels.len(),
        "scores and labels must have the same length"
    );
    let positives = labels.iter().filter(|&&l| l).count();
    if positives == 0 {
        return None;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut hits = 0usize;
    let mut sum_precision = 0.0f32;
    for (rank, &idx) in order.iter().enumerate() {
        if labels[idx] {
            hits += 1;
            sum_precision += hits as f32 / (rank + 1) as f32;
        }
    }
    Some(sum_precision / positives as f32)
}

/// Mean average precision over a set of binary ranking problems (one
/// score/label pair per "query" or per attribute), skipping problems with no
/// positives.
///
/// Returns 0 when every problem is skipped.
///
/// # Panics
///
/// Panics if the two slices differ in length or any inner pair differs in
/// length.
pub fn mean_average_precision(problems: &[(Vec<f32>, Vec<bool>)]) -> f32 {
    let aps: Vec<f32> = problems
        .iter()
        .filter_map(|(scores, labels)| average_precision(scores, labels))
        .collect();
    if aps.is_empty() {
        0.0
    } else {
        aps.iter().sum::<f32>() / aps.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_ap_one() {
        let ap = average_precision(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]);
        assert_eq!(ap, Some(1.0));
    }

    #[test]
    fn worst_ranking_has_low_ap() {
        let ap = average_precision(&[0.9, 0.8, 0.2, 0.1], &[false, false, true, true])
            .expect("has positives");
        // Positives at ranks 3 and 4: AP = (1/3 + 2/4)/2 = 5/12.
        assert!((ap - 5.0 / 12.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_ranking_matches_hand_computation() {
        // Sorted by score: idx0 (pos), idx1 (neg), idx2 (pos).
        let ap = average_precision(&[0.9, 0.8, 0.1], &[true, false, true]).expect("has positives");
        // Precisions at the positives: 1/1 and 2/3 → AP = (1 + 2/3)/2 = 5/6.
        assert!((ap - 5.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn no_positives_is_none() {
        assert_eq!(average_precision(&[0.5, 0.4], &[false, false]), None);
    }

    #[test]
    fn all_positives_is_one() {
        assert_eq!(average_precision(&[0.1, 0.9], &[true, true]), Some(1.0));
    }

    #[test]
    fn map_averages_and_skips_empty_problems() {
        let problems = vec![
            (vec![0.9, 0.1], vec![true, false]),  // AP 1.0
            (vec![0.1, 0.9], vec![true, false]),  // AP 0.5
            (vec![0.5, 0.5], vec![false, false]), // skipped
        ];
        assert!((mean_average_precision(&problems) - 0.75).abs() < 1e-6);
        assert_eq!(mean_average_precision(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn length_mismatch_panics() {
        let _ = average_precision(&[0.1], &[true, false]);
    }
}
