//! Latency percentiles with the standard (ceiling) nearest-rank definition.
//!
//! Shared by the serving harnesses (`serve_sim`, `zsc_serve`): the p-th
//! percentile of `n` sorted samples is the sample at 1-based rank
//! `⌈p · n⌉`. An earlier `serve_sim` revision used `round(p · (n − 1))`,
//! which for small sample counts rounds *down* past the true rank and
//! understates tail percentiles such as p99.

/// The `p`-th percentile (`0 ≤ p ≤ 1`) of an ascending-sorted sample set,
/// using the ceiling nearest-rank definition `⌈p · n⌉`.
///
/// `p = 0.0` (and any `p` small enough that `⌈p · n⌉ = 0`) clamps to rank 1
/// — the minimum sample — rather than indexing before the slice; `p = 1.0`
/// is the maximum. Returns `0.0` for an empty sample set.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or the samples are not sorted
/// ascending.
///
/// # Example
///
/// ```
/// use metrics::percentile::nearest_rank;
///
/// let sorted = [10.0, 20.0, 30.0, 40.0, 50.0];
/// assert_eq!(nearest_rank(&sorted, 0.0), 10.0); // rank clamps to 1
/// assert_eq!(nearest_rank(&sorted, 0.50), 30.0); // rank ⌈2.5⌉ = 3
/// assert_eq!(nearest_rank(&sorted, 0.99), 50.0); // rank ⌈4.95⌉ = 5
/// ```
pub fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "percentile must be in [0, 1], got {p}"
    );
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "samples must be sorted ascending"
    );
    if sorted.is_empty() {
        return 0.0;
    }
    // ⌈p · n⌉ is 0 for p = 0 (and tiny p); the clamp pins the rank to ≥ 1 so
    // the subtraction below can never index before the slice.
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_computed_ranks() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        // rank(0.2 · 5) = ⌈1⌉ = 1 → first sample.
        assert_eq!(nearest_rank(&sorted, 0.20), 1.0);
        // rank(0.5 · 5) = ⌈2.5⌉ = 3 → third sample.
        assert_eq!(nearest_rank(&sorted, 0.50), 3.0);
        // rank(0.8 · 5) = ⌈4⌉ = 4 → fourth sample.
        assert_eq!(nearest_rank(&sorted, 0.80), 4.0);
        // rank(0.81 · 5) = ⌈4.05⌉ = 5 → fifth sample.
        assert_eq!(nearest_rank(&sorted, 0.81), 5.0);
        assert_eq!(nearest_rank(&sorted, 1.0), 5.0);
    }

    /// The case the old `round(p · (n − 1))` formula got wrong: with 10
    /// samples, p99 must be the maximum (rank ⌈9.9⌉ = 10), and p50 must be
    /// the 5th sample (rank ⌈5⌉ = 5), not the 6th that midpoint
    /// interpolation-style indices produce.
    #[test]
    fn small_sample_tails_are_not_understated() {
        let sorted: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(nearest_rank(&sorted, 0.99), 10.0);
        assert_eq!(nearest_rank(&sorted, 0.95), 10.0);
        assert_eq!(nearest_rank(&sorted, 0.50), 5.0);
        // Four samples: the old formula put p50 at round(1.5) = index 2
        // (third sample); the nearest-rank definition takes rank 2.
        let four = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(nearest_rank(&four, 0.50), 2.0);
    }

    #[test]
    fn single_sample_and_empty() {
        assert_eq!(nearest_rank(&[7.5], 0.01), 7.5);
        assert_eq!(nearest_rank(&[7.5], 1.0), 7.5);
        assert_eq!(nearest_rank(&[], 0.5), 0.0);
    }

    /// p = 0 computes rank ⌈0⌉ = 0; the clamp must pin it to rank 1 (the
    /// minimum) instead of indexing before the slice. Same for any p small
    /// enough that ⌈p · n⌉ = 0.
    #[test]
    fn zero_and_tiny_percentiles_clamp_to_the_minimum() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(nearest_rank(&sorted, 0.0), 1.0);
        assert_eq!(nearest_rank(&sorted, 1e-12), 1.0);
        assert_eq!(nearest_rank(&sorted, 1.0), 5.0);
        assert_eq!(nearest_rank(&[], 0.0), 0.0);
        assert_eq!(nearest_rank(&[], 1.0), 0.0);
        assert_eq!(nearest_rank(&[42.0], 0.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 1]")]
    fn rejects_out_of_range_percentile() {
        let _ = nearest_rank(&[1.0], -0.25);
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 1]")]
    fn rejects_percentile_above_one() {
        let _ = nearest_rank(&[1.0], 1.5);
    }
}
