//! Top-k classification accuracy.

use tensor::Matrix;

/// Fraction of rows whose highest-scoring class equals the target class.
///
/// `scores` is `B×C`; `targets` holds one class index per row.
///
/// # Panics
///
/// Panics if `targets.len() != scores.rows()`.
pub fn top1_accuracy(scores: &Matrix, targets: &[usize]) -> f32 {
    topk_accuracy(scores, targets, 1)
}

/// Fraction of rows whose target class appears among the `k` highest-scoring
/// classes.
///
/// Returns 0 for an empty batch.
///
/// # Panics
///
/// Panics if `targets.len() != scores.rows()` or `k == 0`.
pub fn topk_accuracy(scores: &Matrix, targets: &[usize], k: usize) -> f32 {
    assert!(k > 0, "k must be positive");
    assert_eq!(
        targets.len(),
        scores.rows(),
        "one target per row required ({} vs {})",
        targets.len(),
        scores.rows()
    );
    if targets.is_empty() {
        return 0.0;
    }
    let top = scores.topk_rows(k);
    let hits = top
        .iter()
        .zip(targets)
        .filter(|(row_top, &target)| row_top.contains(&target))
        .count();
    hits as f32 / targets.len() as f32
}

/// Per-class top-1 accuracy (recall): for each class, the fraction of its
/// samples that were predicted correctly. Classes with no samples get `None`.
///
/// # Panics
///
/// Panics if `targets.len() != scores.rows()` or any target is `>= classes`.
pub fn per_class_accuracy(scores: &Matrix, targets: &[usize], classes: usize) -> Vec<Option<f32>> {
    assert_eq!(targets.len(), scores.rows(), "one target per row required");
    let predictions = scores.argmax_rows();
    let mut correct = vec![0usize; classes];
    let mut total = vec![0usize; classes];
    for (&pred, &target) in predictions.iter().zip(targets) {
        assert!(target < classes, "target {target} out of range");
        total[target] += 1;
        if pred == target {
            correct[target] += 1;
        }
    }
    correct
        .iter()
        .zip(&total)
        .map(|(&c, &t)| {
            if t == 0 {
                None
            } else {
                Some(c as f32 / t as f32)
            }
        })
        .collect()
}

/// Mean per-class accuracy (the "average class accuracy" commonly reported on
/// CUB-200), ignoring classes that have no samples.
///
/// Returns 0 if no class has samples.
pub fn mean_per_class_accuracy(scores: &Matrix, targets: &[usize], classes: usize) -> f32 {
    let per_class = per_class_accuracy(scores, targets, classes);
    let present: Vec<f32> = per_class.into_iter().flatten().collect();
    if present.is_empty() {
        0.0
    } else {
        present.iter().sum::<f32>() / present.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_scores() -> Matrix {
        Matrix::from_rows(&[
            vec![0.9, 0.05, 0.05], // predicts 0
            vec![0.1, 0.2, 0.7],   // predicts 2
            vec![0.3, 0.4, 0.3],   // predicts 1
            vec![0.5, 0.4, 0.1],   // predicts 0
        ])
    }

    #[test]
    fn top1_matches_manual_count() {
        let scores = example_scores();
        // Targets: 0 (hit), 2 (hit), 0 (miss), 1 (miss) → 50%.
        assert_eq!(top1_accuracy(&scores, &[0, 2, 0, 1]), 0.5);
    }

    #[test]
    fn top2_is_more_forgiving() {
        let scores = example_scores();
        let targets = [0usize, 2, 0, 1];
        let top1 = topk_accuracy(&scores, &targets, 1);
        let top2 = topk_accuracy(&scores, &targets, 2);
        assert!(top2 >= top1);
        assert_eq!(top2, 1.0);
    }

    #[test]
    fn topk_with_k_ge_classes_is_always_one() {
        let scores = example_scores();
        assert_eq!(topk_accuracy(&scores, &[2, 1, 0, 2], 3), 1.0);
        assert_eq!(topk_accuracy(&scores, &[2, 1, 0, 2], 10), 1.0);
    }

    #[test]
    fn empty_batch_is_zero() {
        let scores = Matrix::zeros(0, 5);
        assert_eq!(topk_accuracy(&scores, &[], 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = topk_accuracy(&example_scores(), &[0, 0, 0, 0], 0);
    }

    #[test]
    #[should_panic(expected = "one target per row")]
    fn target_length_mismatch_panics() {
        let _ = topk_accuracy(&example_scores(), &[0, 1], 1);
    }

    #[test]
    fn per_class_accuracy_handles_missing_classes() {
        let scores = example_scores();
        let targets = [0usize, 2, 1, 0];
        let per_class = per_class_accuracy(&scores, &targets, 4);
        assert_eq!(per_class[0], Some(1.0)); // rows 0 and 3 both predicted 0
        assert_eq!(per_class[1], Some(1.0)); // row 2 predicted 1
        assert_eq!(per_class[2], Some(1.0)); // row 1 predicted 2
        assert_eq!(per_class[3], None); // class 3 has no samples
        assert_eq!(mean_per_class_accuracy(&scores, &targets, 4), 1.0);
    }

    #[test]
    fn mean_per_class_differs_from_overall_on_imbalanced_data() {
        // 3 samples of class 0 (all correct), 1 sample of class 1 (wrong).
        let scores = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 0.0],
            vec![1.0, 0.0],
            vec![1.0, 0.0],
        ]);
        let targets = [0usize, 0, 0, 1];
        assert_eq!(top1_accuracy(&scores, &targets), 0.75);
        assert_eq!(mean_per_class_accuracy(&scores, &targets, 2), 0.5);
        assert_eq!(mean_per_class_accuracy(&Matrix::zeros(0, 2), &[], 2), 0.0);
    }
}
