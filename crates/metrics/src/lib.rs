//! Evaluation metrics for the HDC-ZSC reproduction.
//!
//! The paper reports three families of metrics:
//!
//! * **top-1 / top-5 accuracy** for zero-shot classification (Fig. 4,
//!   Table II) — [`topk`];
//! * **Weighted Mean Average Precision (WMAP)** and per-group top-1 accuracy
//!   for attribute extraction (Table I) — [`average_precision`](fn@average_precision) and
//!   [`wmap`]; the weighting compensates for attributes that are rare in the
//!   dataset;
//! * **µ ± σ across seeds** (§IV-A) — [`aggregate`].
//!
//! Beyond the paper, the serving roadmap adds three metric families:
//!
//! * **generalized zero-shot (GZSL)** — per-group accuracy over the
//!   seen/unseen partition and the harmonic-mean H metric — [`gzsl`];
//! * **open-set rejection** — rejection precision/recall at a calibrated
//!   similarity threshold and threshold-free AUROC — [`open_set`];
//! * **streaming drift detection** — EWMA trends and Page–Hinkley
//!   change-point alarms over per-class prototype displacement under
//!   continual learning — [`stream`].
//!
//! # Example
//!
//! ```
//! use metrics::topk::top1_accuracy;
//! use tensor::Matrix;
//!
//! let logits = Matrix::from_rows(&[vec![0.9, 0.1], vec![0.2, 0.8]]);
//! assert_eq!(top1_accuracy(&logits, &[0, 1]), 1.0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod aggregate;
pub mod average_precision;
pub mod confusion;
pub mod gzsl;
pub mod open_set;
pub mod percentile;
pub mod stream;
pub mod topk;
pub mod wmap;

pub use aggregate::SeedAggregate;
pub use average_precision::{average_precision, mean_average_precision};
pub use confusion::ConfusionMatrix;
pub use gzsl::{harmonic_mean, partitioned_top1_accuracy, PartitionedAccuracy};
pub use open_set::{auroc, rejection_report, RejectionReport};
pub use percentile::nearest_rank;
pub use stream::{
    ClassDrift, DriftReport, Ewma, PageHinkley, StreamDriftConfig, StreamDriftDetector,
};
pub use topk::{top1_accuracy, topk_accuracy};
pub use wmap::{weighted_average_precision, GroupMetrics};
