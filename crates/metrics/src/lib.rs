//! Evaluation metrics for the HDC-ZSC reproduction.
//!
//! The paper reports three families of metrics:
//!
//! * **top-1 / top-5 accuracy** for zero-shot classification (Fig. 4,
//!   Table II) — [`topk`];
//! * **Weighted Mean Average Precision (WMAP)** and per-group top-1 accuracy
//!   for attribute extraction (Table I) — [`average_precision`](fn@average_precision) and
//!   [`wmap`]; the weighting compensates for attributes that are rare in the
//!   dataset;
//! * **µ ± σ across seeds** (§IV-A) — [`aggregate`].
//!
//! # Example
//!
//! ```
//! use metrics::topk::top1_accuracy;
//! use tensor::Matrix;
//!
//! let logits = Matrix::from_rows(&[vec![0.9, 0.1], vec![0.2, 0.8]]);
//! assert_eq!(top1_accuracy(&logits, &[0, 1]), 1.0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod aggregate;
pub mod average_precision;
pub mod confusion;
pub mod percentile;
pub mod topk;
pub mod wmap;

pub use aggregate::SeedAggregate;
pub use average_precision::{average_precision, mean_average_precision};
pub use confusion::ConfusionMatrix;
pub use percentile::nearest_rank;
pub use topk::{top1_accuracy, topk_accuracy};
pub use wmap::{weighted_average_precision, GroupMetrics};
