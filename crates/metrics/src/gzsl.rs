//! Generalized zero-shot (GZSL) metrics: per-group accuracy over the
//! seen/unseen class partition and the harmonic-mean (H) summary.
//!
//! Under the generalized protocol, queries from *seen* and *unseen* classes
//! arrive mixed and are scored against the union of both class sets. The
//! standard summary (Xian et al., "Zero-Shot Learning — the Good, the Bad
//! and the Ugly") is the harmonic mean of the per-group top-1 accuracies,
//! which collapses to 0 when either group collapses — a model that ignores
//! unseen classes entirely cannot hide behind high seen-class accuracy.

use tensor::Matrix;

/// Top-1 accuracy over the seen and unseen query partitions.
///
/// A partition with no queries reports `None` rather than a misleading 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionedAccuracy {
    /// Top-1 accuracy over queries whose target class is seen.
    pub seen: Option<f32>,
    /// Top-1 accuracy over queries whose target class is unseen.
    pub unseen: Option<f32>,
}

impl PartitionedAccuracy {
    /// The harmonic-mean (H) summary of the two partitions; empty partitions
    /// contribute 0 (a GZSL evaluation without unseen queries scores H = 0,
    /// it does not silently degrade to plain accuracy).
    pub fn harmonic(&self) -> f32 {
        harmonic_mean(self.seen.unwrap_or(0.0), self.unseen.unwrap_or(0.0))
    }
}

/// Harmonic mean `2ab / (a + b)`, the GZSL H metric.
///
/// Returns 0 whenever either input is 0 (including the 0/0 case) — the
/// defining property of the metric: both groups must score to score at all.
///
/// # Panics
///
/// Panics if either input is negative or not finite.
pub fn harmonic_mean(a: f32, b: f32) -> f32 {
    assert!(
        a.is_finite() && b.is_finite() && a >= 0.0 && b >= 0.0,
        "harmonic mean needs finite non-negative inputs, got ({a}, {b})"
    );
    if a == 0.0 || b == 0.0 {
        return 0.0;
    }
    2.0 * a * b / (a + b)
}

/// Top-1 accuracy split over the seen/unseen partition of a mixed GZSL
/// query batch.
///
/// `scores` is `B×C` over the *union* class set, `targets` holds one class
/// index per row, and `unseen[c]` marks class `c` as unseen; each query is
/// assigned to the partition of its target class.
///
/// # Panics
///
/// Panics if `targets.len() != scores.rows()`, any target is
/// `>= unseen.len()`, or `unseen.len() != scores.cols()`.
pub fn partitioned_top1_accuracy(
    scores: &Matrix,
    targets: &[usize],
    unseen: &[bool],
) -> PartitionedAccuracy {
    assert_eq!(
        targets.len(),
        scores.rows(),
        "one target per row required ({} vs {})",
        targets.len(),
        scores.rows()
    );
    assert_eq!(
        unseen.len(),
        scores.cols(),
        "one seen/unseen flag per class required ({} vs {})",
        unseen.len(),
        scores.cols()
    );
    let predictions = scores.argmax_rows();
    let (mut hits, mut totals) = ([0usize; 2], [0usize; 2]);
    for (&pred, &target) in predictions.iter().zip(targets) {
        assert!(target < unseen.len(), "target {target} out of range");
        let group = usize::from(unseen[target]);
        totals[group] += 1;
        if pred == target {
            hits[group] += 1;
        }
    }
    let accuracy = |group: usize| -> Option<f32> {
        (totals[group] > 0).then(|| hits[group] as f32 / totals[group] as f32)
    };
    PartitionedAccuracy {
        seen: accuracy(0),
        unseen: accuracy(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_matches_hand_computation() {
        assert_eq!(harmonic_mean(0.5, 0.5), 0.5);
        assert!((harmonic_mean(0.8, 0.2) - 0.32).abs() < 1e-6);
        assert_eq!(harmonic_mean(1.0, 1.0), 1.0);
    }

    #[test]
    fn harmonic_mean_is_zero_iff_either_input_is_zero() {
        assert_eq!(harmonic_mean(0.0, 0.9), 0.0);
        assert_eq!(harmonic_mean(0.9, 0.0), 0.0);
        assert_eq!(harmonic_mean(0.0, 0.0), 0.0);
        assert!(harmonic_mean(1e-6, 1e-6) > 0.0);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_input_panics() {
        let _ = harmonic_mean(-0.1, 0.5);
    }

    #[test]
    fn partitioned_accuracy_splits_by_target_class_group() {
        // 4 classes, classes 2 and 3 unseen. Rows: seen hit, seen miss,
        // unseen hit, unseen hit.
        let scores = Matrix::from_rows(&[
            vec![0.9, 0.0, 0.0, 0.0],
            vec![0.9, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.8, 0.0],
            vec![0.0, 0.0, 0.0, 0.7],
        ]);
        let report = partitioned_top1_accuracy(&scores, &[0, 1, 2, 3], &[false, false, true, true]);
        assert_eq!(report.seen, Some(0.5));
        assert_eq!(report.unseen, Some(1.0));
        assert!((report.harmonic() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_partition_is_none_and_harmonic_is_zero() {
        let scores = Matrix::from_rows(&[vec![0.9, 0.1]]);
        let report = partitioned_top1_accuracy(&scores, &[0], &[false, true]);
        assert_eq!(report.seen, Some(1.0));
        assert_eq!(report.unseen, None);
        assert_eq!(report.harmonic(), 0.0);
    }

    #[test]
    #[should_panic(expected = "one seen/unseen flag per class")]
    fn flag_width_mismatch_panics() {
        let scores = Matrix::from_rows(&[vec![0.9, 0.1]]);
        let _ = partitioned_top1_accuracy(&scores, &[0], &[false]);
    }
}
