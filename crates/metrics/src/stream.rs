//! Streaming drift detection for continually-learned class prototypes.
//!
//! The serving layer folds streamed examples into per-class counter state
//! and republishes the re-signed prototypes in batches. Each publication
//! moves a class's packed prototype by some **normalized Hamming
//! displacement** in `[0, 1]` — under a stationary stream that displacement
//! shrinks as counters accumulate evidence, while concept drift keeps it
//! elevated or growing. This module watches exactly that signal, per class:
//!
//! * [`Ewma`] — an exponentially-weighted moving average smoothing the raw
//!   displacement into a trend;
//! * [`PageHinkley`] — the classic sequential change-point test: alarm when
//!   the cumulative deviation above the running mean exceeds a threshold;
//! * [`StreamDriftDetector`] — one `(Ewma, PageHinkley)` pair per class
//!   label, surfacing a typed [`DriftReport`] for stats endpoints.
//!
//! Everything here is deterministic in its inputs: feeding the same
//! displacement sequence reproduces the same alarms and the same report,
//! which is what lets crash recovery rebuild detector state by replay.

use serde::Serialize;
use std::collections::BTreeMap;

/// Exponentially-weighted moving average: `m ← (1-α)·m + α·x`, seeded by
/// the first observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an average with smoothing factor `alpha` (the weight of the
    /// newest observation).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA smoothing factor must be in (0, 1], got {alpha}"
        );
        Self { alpha, value: None }
    }

    /// Folds one observation in and returns the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let next = match self.value {
            None => x,
            Some(m) => (1.0 - self.alpha) * m + self.alpha * x,
        };
        self.value = Some(next);
        next
    }

    /// The current average, or `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The smoothing factor the average was created with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// The Page–Hinkley sequential change-point test (increase direction).
///
/// Maintains the cumulative deviation `m_t = Σ (x_i - x̄_i - δ)` of the
/// observations above their running mean (minus a tolerance `δ`) and its
/// running minimum `M_t`; an **alarm** fires when `m_t - M_t > λ`. Small
/// `δ` makes the test more sensitive, large `λ` trades detection delay for
/// fewer false alarms.
#[derive(Debug, Clone, PartialEq)]
pub struct PageHinkley {
    delta: f64,
    lambda: f64,
    n: u64,
    mean: f64,
    cumulative: f64,
    minimum: f64,
}

impl PageHinkley {
    /// Creates a test with tolerance `delta` and alarm threshold `lambda`.
    ///
    /// # Panics
    ///
    /// Panics when `delta` is negative or `lambda` is not positive.
    pub fn new(delta: f64, lambda: f64) -> Self {
        assert!(delta >= 0.0, "Page-Hinkley tolerance must be >= 0");
        assert!(lambda > 0.0, "Page-Hinkley threshold must be positive");
        Self {
            delta,
            lambda,
            n: 0,
            mean: 0.0,
            cumulative: 0.0,
            minimum: 0.0,
        }
    }

    /// Folds one observation in; returns `true` when the test alarms.
    pub fn update(&mut self, x: f64) -> bool {
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        self.cumulative += x - self.mean - self.delta;
        self.minimum = self.minimum.min(self.cumulative);
        self.statistic() > self.lambda
    }

    /// The current test statistic `m_t - M_t` (alarm when it exceeds λ).
    pub fn statistic(&self) -> f64 {
        self.cumulative - self.minimum
    }

    /// Observations folded in since construction or the last reset.
    pub fn observations(&self) -> u64 {
        self.n
    }

    /// Forgets all history — called after an alarm is acted upon, so the
    /// test watches for the *next* change instead of re-alarming forever.
    pub fn reset(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.cumulative = 0.0;
        self.minimum = 0.0;
    }
}

/// Tuning of the per-class drift detection pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamDriftConfig {
    /// EWMA smoothing factor for the displacement trend.
    pub ewma_alpha: f64,
    /// Page–Hinkley tolerance `δ`.
    pub ph_delta: f64,
    /// Page–Hinkley alarm threshold `λ`.
    pub ph_lambda: f64,
}

impl Default for StreamDriftConfig {
    /// Defaults tuned for normalized Hamming displacements in `[0, 1]`:
    /// a fairly reactive trend (α = 0.3), a small tolerance absorbing the
    /// shrinking settle-in displacement of a stationary stream, and an
    /// alarm threshold of a few percent of accumulated excess displacement.
    fn default() -> Self {
        Self {
            ewma_alpha: 0.3,
            ph_delta: 0.005,
            ph_lambda: 0.05,
        }
    }
}

/// Per-class drift state: the smoothed trend, the change-point test, and
/// the counters the report surfaces.
#[derive(Debug, Clone)]
struct ClassTracker {
    ewma: Ewma,
    ph: PageHinkley,
    publishes: u64,
    last_displacement: f64,
    alarms: u64,
}

/// One class's entry in a [`DriftReport`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClassDrift {
    /// The class label.
    pub label: String,
    /// Prototype publications observed for this class.
    pub publishes: u64,
    /// Normalized Hamming displacement of the most recent publication.
    pub last_displacement: f64,
    /// EWMA-smoothed displacement trend.
    pub mean_displacement: f64,
    /// Current Page–Hinkley statistic (alarm when above λ).
    pub statistic: f64,
    /// Alarms this class has fired so far.
    pub alarms: u64,
    /// Whether the most recent publication fired an alarm.
    pub drifted: bool,
}

/// A typed point-in-time view of the detector, fit for stats endpoints.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DriftReport {
    /// Prototype publications observed across all classes.
    pub publishes: u64,
    /// Alarms fired across all classes.
    pub alarms: u64,
    /// Per-class state, in label order.
    pub classes: Vec<ClassDrift>,
}

/// EWMA + Page–Hinkley over per-class prototype displacement; see the
/// module docs.
#[derive(Debug, Clone)]
pub struct StreamDriftDetector {
    config: StreamDriftConfig,
    classes: BTreeMap<String, ClassTracker>,
    publishes: u64,
    alarms: u64,
    drifted_last: Vec<String>,
}

impl StreamDriftDetector {
    /// Creates a detector; `config` tunes every class's pipeline.
    pub fn new(config: StreamDriftConfig) -> Self {
        Self {
            config,
            classes: BTreeMap::new(),
            publishes: 0,
            alarms: 0,
            drifted_last: Vec::new(),
        }
    }

    /// The configuration the detector was created with.
    pub fn config(&self) -> StreamDriftConfig {
        self.config
    }

    /// Records that `label`'s published prototype moved by `displacement`
    /// (normalized Hamming, in `[0, 1]`). Returns `true` when the class's
    /// Page–Hinkley test alarms; the test is then reset so it watches for
    /// the next change rather than re-alarming on every publication.
    pub fn record(&mut self, label: &str, displacement: f64) -> bool {
        let config = self.config;
        let tracker = self
            .classes
            .entry(label.to_string())
            .or_insert_with(|| ClassTracker {
                ewma: Ewma::new(config.ewma_alpha),
                ph: PageHinkley::new(config.ph_delta, config.ph_lambda),
                publishes: 0,
                last_displacement: 0.0,
                alarms: 0,
            });
        tracker.publishes += 1;
        tracker.last_displacement = displacement;
        tracker.ewma.update(displacement);
        let alarm = tracker.ph.update(displacement);
        if alarm {
            tracker.ph.reset();
            tracker.alarms += 1;
            self.alarms += 1;
            self.drifted_last.push(label.to_string());
        } else {
            self.drifted_last.retain(|l| l != label);
        }
        self.publishes += 1;
        alarm
    }

    /// Drops `label`'s tracker (class removed or re-pointed).
    pub fn remove(&mut self, label: &str) {
        self.classes.remove(label);
        self.drifted_last.retain(|l| l != label);
    }

    /// Drops every tracker but keeps the lifetime counters (model swap:
    /// the class set is replaced wholesale).
    pub fn clear(&mut self) {
        self.classes.clear();
        self.drifted_last.clear();
    }

    /// Alarms fired across all classes so far.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Prototype publications recorded across all classes so far.
    pub fn publishes(&self) -> u64 {
        self.publishes
    }

    /// The current per-class state as a typed report, classes in label
    /// order.
    pub fn report(&self) -> DriftReport {
        let classes = self
            .classes
            .iter()
            .map(|(label, t)| ClassDrift {
                label: label.clone(),
                publishes: t.publishes,
                last_displacement: t.last_displacement,
                mean_displacement: t.ewma.value().unwrap_or(0.0),
                statistic: t.ph.statistic(),
                alarms: t.alarms,
                drifted: self.drifted_last.iter().any(|l| l == label),
            })
            .collect();
        DriftReport {
            publishes: self.publishes,
            alarms: self.alarms,
            classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_seeds_from_first_observation() {
        let mut ewma = Ewma::new(0.5);
        assert_eq!(ewma.value(), None);
        assert!((ewma.update(4.0) - 4.0).abs() < 1e-12);
        assert!((ewma.update(0.0) - 2.0).abs() < 1e-12);
        assert!((ewma.alpha() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn page_hinkley_stays_quiet_on_a_constant_signal() {
        let mut ph = PageHinkley::new(0.005, 0.05);
        for _ in 0..1000 {
            assert!(!ph.update(0.1));
        }
        assert!(ph.statistic() <= 0.0 + 1e-12);
    }

    #[test]
    fn page_hinkley_alarms_on_a_level_shift() {
        let mut ph = PageHinkley::new(0.005, 0.05);
        for _ in 0..50 {
            assert!(!ph.update(0.05));
        }
        let mut fired = false;
        for _ in 0..50 {
            if ph.update(0.4) {
                fired = true;
                break;
            }
        }
        assert!(fired, "a 8x level shift must alarm within 50 steps");
        ph.reset();
        assert_eq!(ph.observations(), 0);
        assert!(ph.statistic().abs() < 1e-12);
    }

    #[test]
    fn detector_is_deterministic_and_reports_per_class() {
        let run = || {
            let mut d = StreamDriftDetector::new(StreamDriftConfig::default());
            for i in 0..30 {
                d.record("stable", 0.02);
                let x = if i < 15 { 0.02 } else { 0.3 };
                d.record("drifting", x);
            }
            d
        };
        let a = run();
        let b = run();
        assert_eq!(a.report(), b.report());
        let report = a.report();
        assert_eq!(report.classes.len(), 2);
        assert_eq!(report.publishes, 60);
        let drifting = &report.classes[0];
        assert_eq!(drifting.label, "drifting");
        assert!(drifting.alarms >= 1, "level shift must alarm");
        let stable = &report.classes[1];
        assert_eq!(stable.label, "stable");
        assert_eq!(stable.alarms, 0);
        assert!(stable.mean_displacement < 0.03);
        assert_eq!(report.alarms, drifting.alarms);
    }

    #[test]
    fn removal_and_clear_drop_trackers_but_keep_lifetime_counters() {
        let mut d = StreamDriftDetector::new(StreamDriftConfig::default());
        for _ in 0..20 {
            d.record("a", 0.0);
            d.record("b", 0.5);
        }
        let alarms = d.alarms();
        d.remove("a");
        assert_eq!(d.report().classes.len(), 1);
        d.clear();
        assert!(d.report().classes.is_empty());
        assert_eq!(d.alarms(), alarms);
        assert_eq!(d.publishes(), 40);
    }
}
