//! Weighted Mean Average Precision (WMAP) and per-attribute-group metrics
//! for the attribute-extraction task (Table I of the paper).
//!
//! The paper evaluates attribute extraction with two metrics:
//!
//! * **WMAP** — a frequency-weighted mean of per-attribute average
//!   precisions "designed to compensate for attributes that are less
//!   frequent in the dataset" (§IV-A). We implement this as a weighted mean
//!   of per-attribute APs inside each group, with weights inversely
//!   proportional to the attribute's positive frequency, so rare attributes
//!   contribute as much as common ones.
//! * **Per-group top-1 accuracy** — within each attribute group (crown
//!   color, bill shape, …) the predicted value is the attribute with the
//!   highest predicted score; it is compared against the ground-truth value
//!   (the attribute with the highest target strength).

use crate::average_precision::average_precision;
use serde::{Deserialize, Serialize};
use tensor::Matrix;

/// Per-attribute-group evaluation results for the attribute-extraction task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupMetrics {
    /// Group name (e.g. `"crown color"`).
    pub group: String,
    /// Indices of the attributes (columns) belonging to this group.
    pub attribute_indices: Vec<usize>,
    /// Frequency-weighted mean average precision over the group's attributes,
    /// in percent.
    pub wmap: f32,
    /// Top-1 accuracy of predicting the group's active value, in percent.
    pub top1: f32,
}

/// Computes the weighted average precision over a set of attribute columns.
///
/// `scores` and `targets` are `N×α` (predicted confidences and ground-truth
/// strengths); `columns` selects the attributes to aggregate; a target above
/// `threshold` counts as a positive. Attribute columns with no positives are
/// skipped. Weights are `1 / positive_frequency` so that rare attributes are
/// not drowned out by frequent ones.
///
/// Returns a fraction in `[0, 1]` (0 when every column is skipped).
///
/// # Panics
///
/// Panics if the shapes disagree or a column index is out of range.
pub fn weighted_average_precision(
    scores: &Matrix,
    targets: &Matrix,
    columns: &[usize],
    threshold: f32,
) -> f32 {
    assert_eq!(
        scores.shape(),
        targets.shape(),
        "scores/targets shape mismatch"
    );
    let n = scores.rows();
    let mut weighted_sum = 0.0f64;
    let mut weight_total = 0.0f64;
    for &c in columns {
        assert!(c < scores.cols(), "attribute column {c} out of range");
        let col_scores: Vec<f32> = (0..n).map(|r| scores.get(r, c)).collect();
        let col_labels: Vec<bool> = (0..n).map(|r| targets.get(r, c) > threshold).collect();
        let positives = col_labels.iter().filter(|&&l| l).count();
        if positives == 0 {
            continue;
        }
        if let Some(ap) = average_precision(&col_scores, &col_labels) {
            let frequency = positives as f64 / n as f64;
            let weight = 1.0 / frequency.max(1e-9);
            weighted_sum += weight * ap as f64;
            weight_total += weight;
        }
    }
    if weight_total == 0.0 {
        0.0
    } else {
        (weighted_sum / weight_total) as f32
    }
}

/// Top-1 accuracy of value prediction within a single attribute group.
///
/// For each sample, the predicted value is the column (among `columns`) with
/// the highest score and the ground-truth value is the column with the
/// highest target strength; samples whose strongest target is below
/// `threshold` (no annotated value for this group) are skipped.
///
/// Returns a fraction in `[0, 1]` (0 when every sample is skipped).
///
/// # Panics
///
/// Panics if the shapes disagree, `columns` is empty, or an index is out of
/// range.
pub fn group_top1_accuracy(
    scores: &Matrix,
    targets: &Matrix,
    columns: &[usize],
    threshold: f32,
) -> f32 {
    assert_eq!(
        scores.shape(),
        targets.shape(),
        "scores/targets shape mismatch"
    );
    assert!(!columns.is_empty(), "a group needs at least one attribute");
    let mut correct = 0usize;
    let mut counted = 0usize;
    for r in 0..scores.rows() {
        let (mut best_score_col, mut best_score) = (columns[0], f32::NEG_INFINITY);
        let (mut best_target_col, mut best_target) = (columns[0], f32::NEG_INFINITY);
        for &c in columns {
            assert!(c < scores.cols(), "attribute column {c} out of range");
            if scores.get(r, c) > best_score {
                best_score = scores.get(r, c);
                best_score_col = c;
            }
            if targets.get(r, c) > best_target {
                best_target = targets.get(r, c);
                best_target_col = c;
            }
        }
        if best_target <= threshold {
            continue;
        }
        counted += 1;
        if best_score_col == best_target_col {
            correct += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        correct as f32 / counted as f32
    }
}

/// Evaluates WMAP and top-1 accuracy for every attribute group, in the order
/// the groups are given. Results are expressed in percent, matching Table I.
///
/// `groups` maps group names to the attribute column indices they own.
///
/// # Panics
///
/// Panics if shapes disagree or any column index is out of range.
pub fn evaluate_groups(
    scores: &Matrix,
    targets: &Matrix,
    groups: &[(String, Vec<usize>)],
    threshold: f32,
) -> Vec<GroupMetrics> {
    groups
        .iter()
        .map(|(name, columns)| GroupMetrics {
            group: name.clone(),
            attribute_indices: columns.clone(),
            wmap: 100.0 * weighted_average_precision(scores, targets, columns, threshold),
            top1: 100.0 * group_top1_accuracy(scores, targets, columns, threshold),
        })
        .collect()
}

/// Mean of a per-group metric (e.g. the "average" row of Table I).
pub fn mean_over_groups(groups: &[GroupMetrics], f: impl Fn(&GroupMetrics) -> f32) -> f32 {
    if groups.is_empty() {
        0.0
    } else {
        groups.iter().map(f).sum::<f32>() / groups.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two attributes in one group; attribute 0 is frequent, attribute 1 rare.
    fn toy_data() -> (Matrix, Matrix) {
        // 4 samples × 2 attributes.
        let targets = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        ]);
        // Predictions rank attribute 0 perfectly but attribute 1 poorly.
        let scores = Matrix::from_rows(&[
            vec![0.9, 0.4],
            vec![0.8, 0.3],
            vec![0.7, 0.2],
            vec![0.6, 0.1],
        ]);
        (scores, targets)
    }

    #[test]
    fn wmap_weights_rare_attributes_more() {
        let (scores, targets) = toy_data();
        let wmap = weighted_average_precision(&scores, &targets, &[0, 1], 0.5);
        // AP(attr 0) = 1.0 (3 positives ranked on top).
        // AP(attr 1): the single positive (sample 3) ranks last → AP = 1/4.
        // Weights: attr0 freq 3/4 → w = 4/3; attr1 freq 1/4 → w = 4.
        // WMAP = (4/3·1 + 4·0.25)/(4/3 + 4) = (4/3 + 1)/(16/3) = 7/16.
        assert!((wmap - 7.0 / 16.0).abs() < 1e-5);
        // The unweighted mean would be (1 + 0.25)/2 = 0.625 — higher, because
        // the frequent attribute dominates.
        assert!(wmap < 0.625);
    }

    #[test]
    fn wmap_perfect_predictions() {
        let targets = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let scores = targets.clone();
        assert!((weighted_average_precision(&scores, &targets, &[0, 1], 0.5) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn wmap_skips_empty_columns() {
        let targets = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 0.0]]);
        let scores = Matrix::from_rows(&[vec![0.9, 0.5], vec![0.8, 0.5]]);
        // Column 1 has no positives and is skipped.
        assert!((weighted_average_precision(&scores, &targets, &[0, 1], 0.5) - 1.0).abs() < 1e-6);
        // All-empty selection yields 0.
        assert_eq!(
            weighted_average_precision(&scores, &targets, &[1], 0.5),
            0.0
        );
    }

    #[test]
    fn group_top1_counts_correct_argmax() {
        let (scores, targets) = toy_data();
        // Samples 0-2: target value 0, predicted 0 (correct).
        // Sample 3: target value 1, predicted 0 (wrong).
        let acc = group_top1_accuracy(&scores, &targets, &[0, 1], 0.5);
        assert!((acc - 0.75).abs() < 1e-6);
    }

    #[test]
    fn group_top1_skips_unannotated_samples() {
        let targets = Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 1.0]]);
        let scores = Matrix::from_rows(&[vec![0.9, 0.1], vec![0.1, 0.9]]);
        let acc = group_top1_accuracy(&scores, &targets, &[0, 1], 0.5);
        assert_eq!(acc, 1.0);
        // If every sample is unannotated the accuracy is 0 by convention.
        let empty_targets = Matrix::zeros(2, 2);
        assert_eq!(
            group_top1_accuracy(&scores, &empty_targets, &[0, 1], 0.5),
            0.0
        );
    }

    #[test]
    fn evaluate_groups_produces_percentages() {
        let (scores, targets) = toy_data();
        let groups = vec![("only group".to_string(), vec![0, 1])];
        let result = evaluate_groups(&scores, &targets, &groups, 0.5);
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].group, "only group");
        assert!((result[0].wmap - 100.0 * 7.0 / 16.0).abs() < 1e-3);
        assert!((result[0].top1 - 75.0).abs() < 1e-3);
        let avg = mean_over_groups(&result, |g| g.top1);
        assert!((avg - 75.0).abs() < 1e-3);
        assert_eq!(mean_over_groups(&[], |g| g.top1), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_group_panics() {
        let (scores, targets) = toy_data();
        let _ = group_top1_accuracy(&scores, &targets, &[], 0.5);
    }
}
