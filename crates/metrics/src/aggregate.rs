//! Aggregation of metrics across random seeds (the `µ ± σ` protocol of
//! §IV-A: "results are obtained … by running five trials with different
//! seeds").

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tensor::Summary;

/// Collects named scalar metrics across repeated trials and summarises each
/// as `µ ± σ`.
///
/// # Example
///
/// ```
/// use metrics::SeedAggregate;
///
/// let mut agg = SeedAggregate::new();
/// agg.record("top1", 63.5);
/// agg.record("top1", 64.1);
/// let summary = agg.summary("top1").expect("metric recorded");
/// assert_eq!(summary.count(), 2);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SeedAggregate {
    samples: BTreeMap<String, Vec<f32>>,
}

impl SeedAggregate {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of the named metric.
    pub fn record(&mut self, metric: impl Into<String>, value: f32) {
        self.samples.entry(metric.into()).or_default().push(value);
    }

    /// Number of observations recorded for `metric` (0 if unknown).
    pub fn count(&self, metric: &str) -> usize {
        self.samples.get(metric).map_or(0, Vec::len)
    }

    /// All raw observations for `metric`, in recording order.
    pub fn samples(&self, metric: &str) -> Option<&[f32]> {
        self.samples.get(metric).map(Vec::as_slice)
    }

    /// Summary (`µ ± σ`, min, max) of the named metric, if recorded.
    pub fn summary(&self, metric: &str) -> Option<Summary> {
        self.samples.get(metric).map(|s| Summary::from_samples(s))
    }

    /// Iterates over `(metric, summary)` pairs in name order.
    pub fn summaries(&self) -> impl Iterator<Item = (&str, Summary)> {
        self.samples
            .iter()
            .map(|(k, v)| (k.as_str(), Summary::from_samples(v)))
    }

    /// Names of all recorded metrics, sorted.
    pub fn metrics(&self) -> impl Iterator<Item = &str> {
        self.samples.keys().map(String::as_str)
    }

    /// Formats every metric as a `name: µ ± σ` table (one line per metric),
    /// matching the reporting style of the paper.
    pub fn to_report(&self) -> String {
        self.summaries()
            .map(|(name, s)| format!("{name}: {s}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_aggregate() {
        let agg = SeedAggregate::new();
        assert_eq!(agg.count("missing"), 0);
        assert!(agg.summary("missing").is_none());
        assert!(agg.samples("missing").is_none());
        assert_eq!(agg.to_report(), "");
    }

    #[test]
    fn record_and_summarise() {
        let mut agg = SeedAggregate::new();
        for v in [62.0, 63.0, 64.0, 65.0, 66.0] {
            agg.record("top1", v);
        }
        agg.record("top5", 88.0);
        assert_eq!(agg.count("top1"), 5);
        let s = agg.summary("top1").expect("recorded");
        assert!((s.mean() - 64.0).abs() < 1e-5);
        assert_eq!(s.count(), 5);
        assert_eq!(agg.metrics().count(), 2);
        assert_eq!(agg.samples("top5"), Some(&[88.0][..]));
    }

    #[test]
    fn report_contains_all_metrics() {
        let mut agg = SeedAggregate::new();
        agg.record("accuracy", 0.5);
        agg.record("wmap", 0.4);
        let report = agg.to_report();
        assert!(report.contains("accuracy"));
        assert!(report.contains("wmap"));
        assert_eq!(report.lines().count(), 2);
    }

    #[test]
    fn metric_order_is_deterministic() {
        let mut agg = SeedAggregate::new();
        agg.record("zeta", 1.0);
        agg.record("alpha", 2.0);
        let names: Vec<&str> = agg.metrics().collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
