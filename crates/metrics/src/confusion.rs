//! Confusion matrices for multi-class classification.

use serde::{Deserialize, Serialize};

/// A dense confusion matrix: `counts[target][predicted]`.
///
/// # Example
///
/// ```
/// use metrics::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(3);
/// cm.record(0, 0);
/// cm.record(0, 1);
/// assert_eq!(cm.total(), 2);
/// assert!((cm.accuracy() - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty confusion matrix over `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        Self {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(target, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, target: usize, predicted: usize) {
        assert!(
            target < self.classes && predicted < self.classes,
            "class index out of range"
        );
        self.counts[target * self.classes + predicted] += 1;
    }

    /// Records a batch of predictions.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or any index is out of range.
    pub fn record_batch(&mut self, targets: &[usize], predictions: &[usize]) {
        assert_eq!(targets.len(), predictions.len(), "batch length mismatch");
        for (&t, &p) in targets.iter().zip(predictions) {
            self.record(t, p);
        }
    }

    /// Count of observations with the given target and prediction.
    pub fn count(&self, target: usize, predicted: usize) -> u64 {
        self.counts[target * self.classes + predicted]
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 when nothing has been recorded).
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f32 / total as f32
    }

    /// Per-class recall (`None` for classes with no samples).
    pub fn recall(&self, class: usize) -> Option<f32> {
        let row_total: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row_total == 0 {
            None
        } else {
            Some(self.count(class, class) as f32 / row_total as f32)
        }
    }

    /// Per-class precision (`None` for classes never predicted).
    pub fn precision(&self, class: usize) -> Option<f32> {
        let col_total: u64 = (0..self.classes).map(|t| self.count(t, class)).sum();
        if col_total == 0 {
            None
        } else {
            Some(self.count(class, class) as f32 / col_total as f32)
        }
    }

    /// The most confused (off-diagonal) pair `(target, predicted, count)`, if
    /// any misclassification has been recorded.
    pub fn most_confused_pair(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for t in 0..self.classes {
            for p in 0..self.classes {
                if t == p {
                    continue;
                }
                let c = self.count(t, p);
                if c > 0 && best.is_none_or(|(_, _, bc)| c > bc) {
                    best = Some((t, p, c));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.classes(), 4);
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.recall(0), None);
        assert_eq!(cm.precision(0), None);
        assert_eq!(cm.most_confused_pair(), None);
    }

    #[test]
    fn record_and_accuracy() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record_batch(&[0, 0, 1, 2, 2], &[0, 1, 1, 2, 0]);
        assert_eq!(cm.total(), 5);
        assert_eq!(cm.count(0, 1), 1);
        assert!((cm.accuracy() - 0.6).abs() < 1e-6);
        assert_eq!(cm.recall(0), Some(0.5));
        assert_eq!(cm.recall(1), Some(1.0));
        assert_eq!(cm.precision(0), Some(0.5));
        // Most confused pair is either (0,1) or (2,0), both with count 1.
        let (_, _, count) = cm.most_confused_pair().expect("has confusion");
        assert_eq!(count, 1);
    }

    #[test]
    #[should_panic(expected = "class index out of range")]
    fn out_of_range_record_panics() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }

    #[test]
    #[should_panic(expected = "batch length mismatch")]
    fn mismatched_batch_panics() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record_batch(&[0], &[0, 1]);
    }
}
