//! Row-major dense `f32` matrix with blocked products and broadcasting.

use crate::{ShapeError, Vector};
use rand::distributions::Distribution;
use rand::Rng;
use serde::{de, DeError, Deserialize, Serialize, Value};

/// A dense, row-major matrix of `f32` values.
///
/// `Matrix` is the workhorse type of the reproduction: image-feature batches,
/// class-attribute matrices, FC weights, attribute dictionaries converted to
/// floating point, and similarity/logit matrices are all `Matrix` values.
///
/// # Example
///
/// ```
/// use tensor::Matrix;
///
/// let x = Matrix::zeros(2, 3);
/// assert_eq!(x.rows(), 2);
/// assert_eq!(x.cols(), 3);
/// assert_eq!(x.get(1, 2), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Hand-written (instead of derived) so a corrupted document whose buffer
/// length disagrees with its declared shape is rejected with a typed error
/// rather than constructing a matrix that panics on first access.
impl Deserialize for Matrix {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = de::expect_object(value, "Matrix")?;
        let rows: usize = de::field(entries, "rows", "Matrix")?;
        let cols: usize = de::field(entries, "cols", "Matrix")?;
        let data: Vec<f32> = de::field(entries, "data", "Matrix")?;
        Self::try_from_vec(rows, cols, data)
            .map_err(|e| DeError::new(e.to_string()).in_field("Matrix"))
    }
}

/// Block edge used by the cache-blocked matrix products.
const BLOCK: usize = 64;

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    ///
    /// # Example
    ///
    /// ```
    /// # use tensor::Matrix;
    /// let m = Matrix::zeros(3, 4);
    /// assert_eq!(m.sum(), 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Example
    ///
    /// ```
    /// # use tensor::Matrix;
    /// let i = Matrix::identity(3);
    /// assert_eq!(i.get(0, 0), 1.0);
    /// assert_eq!(i.get(0, 1), 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a flat row-major buffer, returning an error on
    /// length mismatch instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(format!(
                "buffer length {} does not match shape {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                cols,
                "row {i} has length {} but row 0 has length {cols}",
                row.len()
            );
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix whose entries are drawn i.i.d. from the provided
    /// distribution.
    pub fn random<D, R>(rows: usize, cols: usize, dist: &D, rng: &mut R) -> Self
    where
        D: Distribution<f32>,
        R: Rng + ?Sized,
    {
        let data = (0..rows * cols).map(|_| dist.sample(rng)).collect();
        Self { rows, cols, data }
    }

    /// Creates a matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn random_uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        scale: f32,
        rng: &mut R,
    ) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Self { rows, cols, data }
    }

    /// Creates a matrix with entries drawn from a normal distribution with
    /// the given mean and standard deviation (Box–Muller transform; no
    /// dependency on `rand_distr`).
    pub fn random_normal<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        mean: f32,
        std: f32,
        rng: &mut R,
    ) -> Self {
        let n = rows * cols;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row index out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies column `col` into a new [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.cols()`.
    pub fn col(&self, col: usize) -> Vector {
        assert!(col < self.cols, "column index out of bounds");
        Vector::from_vec((0..self.rows).map(|r| self.get(r, col)).collect())
    }

    /// Returns the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Returns the underlying row-major buffer mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns an owned copy of the rows as `Vec<Vec<f32>>`.
    pub fn to_rows(&self) -> Vec<Vec<f32>> {
        (0..self.rows).map(|r| self.row(r).to_vec()).collect()
    }

    /// Builds a matrix by stacking the given matrices vertically.
    ///
    /// # Panics
    ///
    /// Panics if the matrices do not all share the same number of columns or
    /// if `parts` is empty.
    pub fn vstack(parts: &[&Matrix]) -> Self {
        assert!(!parts.is_empty(), "cannot vstack zero matrices");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for part in parts {
            assert_eq!(part.cols, cols, "vstack requires equal column counts");
            data.extend_from_slice(&part.data);
        }
        Self { rows, cols, data }
    }

    /// Returns a new matrix containing only the rows whose indices appear in
    /// `indices` (in the given order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Self {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Computes the matrix product `self · other`.
    ///
    /// Uses a cache-blocked i-k-j loop ordering.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.try_matmul(other)
            .expect("matmul shape mismatch: inner dimensions differ")
    }

    /// Checked variant of [`Matrix::matmul`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the inner dimensions differ.
    // Index loops, not iterators: the cache-blocked kernel reads `a_row`
    // at an offset while writing `out_row`, which iterator zips can't express.
    #[allow(clippy::needless_range_loop)]
    pub fn try_matmul(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != other.rows {
            return Err(ShapeError::new(format!(
                "matmul {}x{} by {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for ib in (0..m).step_by(BLOCK) {
            let i_end = (ib + BLOCK).min(m);
            for kb in (0..k).step_by(BLOCK) {
                let k_end = (kb + BLOCK).min(k);
                for jb in (0..n).step_by(BLOCK) {
                    let j_end = (jb + BLOCK).min(n);
                    for i in ib..i_end {
                        let a_row = &self.data[i * k..(i + 1) * k];
                        let out_row = &mut out.data[i * n..(i + 1) * n];
                        for kk in kb..k_end {
                            let a = a_row[kk];
                            if a == 0.0 {
                                continue;
                            }
                            let b_row = &other.data[kk * n..(kk + 1) * n];
                            for j in jb..j_end {
                                out_row[j] += a * b_row[j];
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Computes `selfᵀ · other` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    #[allow(clippy::needless_range_loop)]
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn requires equal row counts ({} vs {})",
            self.rows, other.rows
        );
        let (m, k, n) = (self.cols, self.rows, other.cols);
        let mut out = Matrix::zeros(m, n);
        for kk in 0..k {
            let a_row = &self.data[kk * m..(kk + 1) * m];
            let b_row = &other.data[kk * n..(kk + 1) * n];
            for i in 0..m {
                let a = a_row[i];
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    out_row[j] += a * b_row[j];
                }
            }
        }
        out
    }

    /// Computes `self · otherᵀ` without materialising the transpose.
    ///
    /// This is the natural shape for similarity kernels: a `B×d` batch of
    /// embeddings against a `C×d` matrix of class embeddings yields a `B×C`
    /// logit matrix.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt requires equal column counts ({} vs {})",
            self.cols, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (j, out_v) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (a, b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                *out_v = acc;
            }
        }
        out
    }

    /// Multiplies the matrix by a column vector, returning a [`Vector`] of
    /// length `self.rows()`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != v.len()`.
    pub fn matvec(&self, v: &Vector) -> Vector {
        assert_eq!(
            self.cols,
            v.len(),
            "matvec shape mismatch ({}x{} by {})",
            self.rows,
            self.cols,
            v.len()
        );
        let mut out = vec![0.0f32; self.rows];
        for (r, out_v) in out.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(v.as_slice()) {
                acc += a * b;
            }
            *out_v = acc;
        }
        Vector::from_vec(out)
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Returns per-row L2 norms.
    pub fn row_norms(&self) -> Vector {
        Vector::from_vec(
            (0..self.rows)
                .map(|r| self.row(r).iter().map(|x| x * x).sum::<f32>().sqrt())
                .collect(),
        )
    }

    /// Returns a copy whose rows are L2-normalised (rows with a norm below
    /// `eps` are left unchanged).
    pub fn normalize_rows(&self, eps: f32) -> Matrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let norm = self.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > eps {
                for v in out.row_mut(r) {
                    *v /= norm;
                }
            }
        }
        out
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Combines two equal-shaped matrices entrywise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_with(&self, other: &Matrix, mut f: impl FnMut(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "elementwise op on mismatched shapes {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Adds `other * alpha` to `self` in place (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "axpy on mismatched shapes");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every entry by `alpha`, returning a new matrix.
    pub fn scale(&self, alpha: f32) -> Matrix {
        self.map(|x| x * alpha)
    }

    /// Adds the row vector `row` to every row of the matrix (broadcasting).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn add_row_broadcast(&self, row: &[f32]) -> Matrix {
        assert_eq!(row.len(), self.cols, "broadcast row length mismatch");
        let mut out = self.clone();
        for r in 0..self.rows {
            for (v, b) in out.row_mut(r).iter_mut().zip(row) {
                *v += b;
            }
        }
        out
    }

    /// Sums the matrix over its rows, producing a row vector of length
    /// `self.cols()`.
    pub fn sum_rows(&self) -> Vector {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        Vector::from_vec(out)
    }

    /// Sums the matrix over its columns, producing a column vector of length
    /// `self.rows()`.
    pub fn sum_cols(&self) -> Vector {
        Vector::from_vec((0..self.rows).map(|r| self.row(r).iter().sum()).collect())
    }

    /// Returns the index of the maximum entry in each row.
    ///
    /// Ties resolve to the first maximal index; an empty row count yields an
    /// empty vector.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0usize;
                let mut best_v = f32::NEG_INFINITY;
                for (j, &v) in row.iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Returns the indices of the `k` largest entries of each row, most
    /// similar first. Ties on value resolve to the smaller index, so results
    /// are deterministic.
    ///
    /// **Truncation contract:** `k` is clamped to the column count — asking
    /// for more entries than a row has returns each row's full descending
    /// ordering (`min(k, cols)` indices, never an error and never padding),
    /// and `k == 0` returns empty rows. The engine's `top_k` family and
    /// `hdc::ItemMemory::top_k` follow the same rule, so `k ≥ classes` is a
    /// safe way to ask for "everything, ranked" anywhere in the workspace.
    ///
    /// Runs in `O(C + k log k)` per row via `select_nth_unstable_by` plus a
    /// sort of the `k`-prefix, instead of fully sorting every row
    /// (`O(C log C)`) just to keep `k` indices — the win matters on the
    /// serving path, where `C` is the class count and `k` is small.
    pub fn topk_rows(&self, k: usize) -> Vec<Vec<usize>> {
        // Descending by value, ascending by index on ties; the explicit
        // index tie-break keeps the unstable selection deterministic.
        fn descending(row: &[f32]) -> impl Fn(&usize, &usize) -> std::cmp::Ordering + '_ {
            move |&a, &b| {
                row[b]
                    .partial_cmp(&row[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.cmp(&b))
            }
        }
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let k = k.min(row.len());
                if k == 0 {
                    return Vec::new();
                }
                let mut idx: Vec<usize> = (0..row.len()).collect();
                if k < row.len() {
                    idx.select_nth_unstable_by(k, descending(row));
                    idx.truncate(k);
                }
                idx.sort_unstable_by(descending(row));
                idx
            })
            .collect()
    }

    /// Maximum absolute difference to another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:.4}")).collect();
            let ellipsis = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn approx_eq(a: f32, b: f32, eps: f32) -> bool {
        (a - b).abs() <= eps
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 5);
        assert_eq!(m.shape(), (3, 5));
        assert_eq!(m.len(), 15);
        assert!(!m.is_empty());
        assert_eq!(m.sum(), 0.0);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::random_uniform(4, 4, 1.0, &mut rng);
        let i = Matrix::identity(4);
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-6);
        assert!(i.matmul(&a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn try_matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(a.try_matmul(&b).is_err());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::random_uniform(7, 5, 1.0, &mut rng);
        let b = Matrix::random_uniform(7, 3, 1.0, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::random_uniform(6, 9, 1.0, &mut rng);
        let b = Matrix::random_uniform(4, 9, 1.0, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn blocked_matmul_matches_naive_on_larger_sizes() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Matrix::random_uniform(70, 130, 1.0, &mut rng);
        let b = Matrix::random_uniform(130, 65, 1.0, &mut rng);
        let fast = a.matmul(&b);
        // Naive reference.
        let mut naive = Matrix::zeros(70, 65);
        for i in 0..70 {
            for j in 0..65 {
                let mut acc = 0.0;
                for k in 0..130 {
                    acc += a.get(i, k) * b.get(k, j);
                }
                naive.set(i, j, acc);
            }
        }
        assert!(fast.max_abs_diff(&naive) < 1e-3);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::random_uniform(5, 8, 1.0, &mut rng);
        let v = Vector::from_vec((0..8).map(|i| i as f32).collect());
        let via_matvec = a.matvec(&v);
        let vm = Matrix::from_vec(8, 1, v.as_slice().to_vec());
        let via_matmul = a.matmul(&vm);
        for i in 0..5 {
            assert!(approx_eq(via_matvec.get(i), via_matmul.get(i, 0), 1e-4));
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Matrix::random_uniform(3, 7, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn row_and_col_access() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(1).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn select_rows_preserves_order() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
        let s = a.select_rows(&[3, 1]);
        assert_eq!(s.as_slice(), &[4.0, 2.0]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let c = Matrix::vstack(&[&a, &b]);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn normalize_rows_unit_norm() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]);
        let n = a.normalize_rows(1e-8);
        assert!(approx_eq(n.row_norms().get(0), 1.0, 1e-6));
        // Zero row untouched.
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn argmax_and_topk() {
        let a = Matrix::from_rows(&[vec![0.1, 0.9, 0.5], vec![2.0, -1.0, 0.0]]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
        let topk = a.topk_rows(2);
        assert_eq!(topk[0], vec![1, 2]);
        assert_eq!(topk[1], vec![0, 2]);
    }

    /// Pins the truncation contract: `k` at, past, and far past the column
    /// count returns each row's full descending ordering; `k == 0` is empty.
    #[test]
    fn topk_rows_truncates_past_column_count() {
        let a = Matrix::from_rows(&[vec![0.1, 0.9, 0.5], vec![2.0, -1.0, 0.0]]);
        let full = vec![vec![1usize, 2, 0], vec![0usize, 2, 1]];
        assert_eq!(a.topk_rows(3), full);
        assert_eq!(a.topk_rows(4), full);
        assert_eq!(a.topk_rows(usize::MAX), full);
        assert_eq!(a.topk_rows(0), vec![Vec::<usize>::new(); 2]);
    }

    #[test]
    fn broadcasting_and_reductions() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = a.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(b.row(0), &[11.0, 22.0]);
        assert_eq!(a.sum_rows().as_slice(), &[4.0, 6.0]);
        assert_eq!(a.sum_cols().as_slice(), &[3.0, 7.0]);
        assert!(approx_eq(a.mean(), 2.5, 1e-6));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).as_slice(), &[2.0, 3.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
        let mut c = a.clone();
        c.add_scaled_inplace(&b, 0.5);
        assert_eq!(c.as_slice(), &[2.5, 4.5]);
    }

    #[test]
    fn random_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Matrix::random_normal(100, 100, 1.5, 2.0, &mut rng);
        let mean = m.mean();
        let var = m.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 1.5).abs() < 0.05, "mean was {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std was {}", var.sqrt());
    }

    #[test]
    fn display_does_not_panic() {
        let m = Matrix::zeros(20, 20);
        let s = format!("{m}");
        assert!(s.contains("Matrix 20x20"));
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn try_from_vec_checks_length() {
        assert!(Matrix::try_from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::try_from_vec(2, 2, vec![0.0; 4]).is_ok());
    }
}
