//! Symmetric positive-definite solvers used by the ESZSL baseline.
//!
//! ESZSL's closed-form solution requires products of the form
//! `(X Xᵀ + γ I)⁻¹ X S Yᵀ`; we implement the inverse application through a
//! Cholesky factorisation with multiple right-hand sides.

use crate::Matrix;

/// Error returned when a Cholesky factorisation fails because the input is
/// not (numerically) symmetric positive definite.
#[derive(Debug, Clone, PartialEq)]
pub struct CholeskyError {
    /// Index of the pivot at which the factorisation broke down.
    pub pivot: usize,
    /// Value of the failing diagonal entry.
    pub diagonal: f32,
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite: pivot {} has diagonal {}",
            self.pivot, self.diagonal
        )
    }
}

impl std::error::Error for CholeskyError {}

/// Computes the lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// # Errors
///
/// Returns [`CholeskyError`] if `a` is not numerically positive definite.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn cholesky(a: &Matrix) -> Result<Matrix, CholeskyError> {
    assert_eq!(a.rows(), a.cols(), "cholesky requires a square matrix");
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(CholeskyError {
                        pivot: i,
                        diagonal: sum,
                    });
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `A X = B` for symmetric positive definite `A` using Cholesky,
/// where `B` may have multiple columns.
///
/// # Errors
///
/// Returns [`CholeskyError`] if `a` is not numerically positive definite.
///
/// # Panics
///
/// Panics if `a` is not square or `a.rows() != b.rows()`.
pub fn cholesky_solve(a: &Matrix, b: &Matrix) -> Result<Matrix, CholeskyError> {
    assert_eq!(
        a.rows(),
        a.cols(),
        "cholesky_solve requires a square matrix"
    );
    assert_eq!(
        a.rows(),
        b.rows(),
        "right-hand side rows ({}) must match matrix size ({})",
        b.rows(),
        a.rows()
    );
    let l = cholesky(a)?;
    let n = a.rows();
    let m = b.cols();
    // Forward substitution: L Y = B.
    let mut y = Matrix::zeros(n, m);
    for i in 0..n {
        for c in 0..m {
            let mut sum = b.get(i, c);
            for k in 0..i {
                sum -= l.get(i, k) * y.get(k, c);
            }
            y.set(i, c, sum / l.get(i, i));
        }
    }
    // Backward substitution: Lᵀ X = Y.
    let mut x = Matrix::zeros(n, m);
    for i in (0..n).rev() {
        for c in 0..m {
            let mut sum = y.get(i, c);
            for k in (i + 1)..n {
                sum -= l.get(k, i) * x.get(k, c);
            }
            x.set(i, c, sum / l.get(i, i));
        }
    }
    Ok(x)
}

/// Solves the ridge system `(A + γ I) X = B`.
///
/// This is the building block of the ESZSL closed-form solution; `γ > 0`
/// guarantees positive definiteness whenever `A` is positive semi-definite
/// (e.g. a Gram matrix `X Xᵀ`).
///
/// # Errors
///
/// Returns [`CholeskyError`] if the regularised matrix is still not
/// numerically positive definite (e.g. `γ` too small or `A` indefinite).
///
/// # Panics
///
/// Panics if `a` is not square or `a.rows() != b.rows()`.
pub fn ridge_solve(a: &Matrix, b: &Matrix, gamma: f32) -> Result<Matrix, CholeskyError> {
    assert_eq!(a.rows(), a.cols(), "ridge_solve requires a square matrix");
    let mut reg = a.clone();
    for i in 0..a.rows() {
        reg.set(i, i, reg.get(i, i) + gamma);
    }
    cholesky_solve(&reg, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spd_matrix(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::random_uniform(n, n, 1.0, &mut rng);
        // X Xᵀ + n·I is symmetric positive definite.
        let mut a = x.matmul_nt(&x);
        for i in 0..n {
            a.set(i, i, a.get(i, i) + n as f32);
        }
        a
    }

    #[test]
    fn cholesky_reconstructs_input() {
        let a = spd_matrix(6, 11);
        let l = cholesky(&a).expect("SPD input");
        let reconstructed = l.matmul_nt(&l);
        assert!(a.max_abs_diff(&reconstructed) < 1e-3);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_err());
    }

    #[test]
    fn cholesky_solve_identity() {
        let i = Matrix::identity(4);
        let b = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 8.0],
        ]);
        let x = cholesky_solve(&i, &b).expect("identity is SPD");
        assert!(x.max_abs_diff(&b) < 1e-6);
    }

    #[test]
    fn cholesky_solve_roundtrip() {
        let a = spd_matrix(8, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let x_true = Matrix::random_uniform(8, 3, 1.0, &mut rng);
        let b = a.matmul(&x_true);
        let x = cholesky_solve(&a, &b).expect("SPD");
        assert!(x.max_abs_diff(&x_true) < 1e-2);
    }

    #[test]
    fn ridge_solve_regularises_singular_gram() {
        // Rank-deficient Gram matrix: single row repeated.
        let x = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let gram = x.matmul_nt(&x); // rank 1, singular up to rounding
        let b = Matrix::identity(2);
        let solved = ridge_solve(&gram, &b, 0.5).expect("ridge fixes singularity");
        assert_eq!(solved.shape(), (2, 2));
        // The regularised system must be well conditioned: (G + γI)·X ≈ I.
        let mut reg = gram.clone();
        for i in 0..2 {
            reg.set(i, i, reg.get(i, i) + 0.5);
        }
        assert!(reg.matmul(&solved).max_abs_diff(&b) < 1e-4);
    }

    #[test]
    fn ridge_solve_gamma_zero_equals_plain_solve() {
        let a = spd_matrix(5, 14);
        let b = Matrix::identity(5);
        let plain = cholesky_solve(&a, &b).expect("SPD");
        let ridge = ridge_solve(&a, &b, 0.0).expect("SPD");
        assert!(plain.max_abs_diff(&ridge) < 1e-6);
    }

    #[test]
    fn cholesky_error_display() {
        let err = CholeskyError {
            pivot: 3,
            diagonal: -0.5,
        };
        assert!(err.to_string().contains("pivot 3"));
    }
}
