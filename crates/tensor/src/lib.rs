//! Dense `f32` linear-algebra substrate for the HDC-ZSC reproduction.
//!
//! The paper's trainable components (the FC projection of the image encoder,
//! the trainable-MLP attribute-encoder baseline, and the ESZSL closed-form
//! baseline) all operate on dense single-precision matrices. This crate
//! provides the minimal — but complete and well-tested — matrix/vector
//! toolkit those components need:
//!
//! * [`Matrix`]: a row-major dense matrix with blocked matrix products
//!   (`A·B`, `Aᵀ·B`, `A·Bᵀ`), elementwise arithmetic, broadcasting of row
//!   vectors, reductions, and norms.
//! * [`Vector`]: a thin convenience wrapper over `Vec<f32>` with dot
//!   products, norms and elementwise helpers.
//! * [`solve`]: Cholesky factorisation and ridge-regularised linear solves,
//!   used by the ESZSL baseline (`(XᵀX + γI)⁻¹ …`).
//! * [`stats`]: summary statistics (mean/std/min/max) used by the experiment
//!   harnesses to report `µ ± σ` across seeds.
//!
//! # Example
//!
//! ```
//! use tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod matrix;
pub mod ops;
pub mod solve;
pub mod stats;
pub mod vector;

pub use matrix::Matrix;
pub use solve::{cholesky_solve, ridge_solve, CholeskyError};
pub use stats::Summary;
pub use vector::Vector;

/// Error type for shape mismatches in matrix/vector operations.
///
/// Returned by the checked (`try_*`) variants of operations that panic in
/// their unchecked form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    message: String,
}

impl ShapeError {
    /// Creates a new shape error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Returns the description of the mismatch.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shape mismatch: {}", self.message)
    }
}

impl std::error::Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_error_display() {
        let err = ShapeError::new("2x3 vs 4x5");
        assert_eq!(err.to_string(), "shape mismatch: 2x3 vs 4x5");
        assert_eq!(err.message(), "2x3 vs 4x5");
    }

    #[test]
    fn shape_error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}
