//! Summary statistics used to report `µ ± σ` across seeds, matching the
//! five-trial protocol in §IV-A of the paper.

use serde::{Deserialize, Serialize};

/// Summary of a set of scalar observations (e.g. top-1 accuracy over five
/// seeds).
///
/// # Example
///
/// ```
/// use tensor::Summary;
///
/// let s = Summary::from_samples(&[0.62, 0.64, 0.63]);
/// assert!((s.mean() - 0.63).abs() < 1e-6);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: usize,
    mean: f32,
    std: f32,
    min: f32,
    max: f32,
}

impl Summary {
    /// Builds a summary from a slice of samples.
    ///
    /// An empty slice yields a summary with zero count and zeroed moments.
    pub fn from_samples(samples: &[f32]) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f32>() / count as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / count as f32;
        let min = samples.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = samples.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        Self {
            count,
            mean,
            std: var.sqrt(),
            min,
            max,
        }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sample mean.
    pub fn mean(&self) -> f32 {
        self.mean
    }

    /// Population standard deviation.
    pub fn std(&self) -> f32 {
        self.std
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f32 {
        self.min
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f32 {
        self.max
    }
}

impl Default for Summary {
    fn default() -> Self {
        Self::from_samples(&[])
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2} (n={})", self.mean, self.std, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::from_samples(&[]);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 0.0);
        assert_eq!(Summary::default(), s);
    }

    #[test]
    fn known_values() {
        let s = Summary::from_samples(&[2.0, 4.0, 6.0]);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 4.0).abs() < 1e-6);
        assert!((s.std() - (8.0f32 / 3.0).sqrt()).abs() < 1e-6);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 6.0);
    }

    #[test]
    fn display_format() {
        let s = Summary::from_samples(&[63.8, 63.8]);
        assert_eq!(format!("{s}"), "63.80 ± 0.00 (n=2)");
    }
}
