//! Free-standing numeric operations: softmax, log-sum-exp, sigmoid,
//! cosine-similarity matrices and related helpers shared by the `nn` and
//! `hdc-zsc` crates.

use crate::Matrix;

/// Numerically stable softmax over a slice, returning a new `Vec<f32>` that
/// sums to 1 (an empty slice returns an empty vector).
///
/// # Example
///
/// ```
/// let p = tensor::ops::softmax(&[1.0, 1.0]);
/// assert!((p[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Numerically stable log-sum-exp of a slice.
///
/// Returns negative infinity for an empty slice.
pub fn log_sum_exp(logits: &[f32]) -> f32 {
    if logits.is_empty() {
        return f32::NEG_INFINITY;
    }
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if max.is_infinite() {
        return max;
    }
    let sum: f32 = logits.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Logistic sigmoid `1 / (1 + e^{-x})`, numerically stable for large `|x|`.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// Row-wise softmax of a matrix (each row sums to 1).
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..logits.rows() {
        let row = softmax(logits.row(r));
        out.row_mut(r).copy_from_slice(&row);
    }
    out
}

/// Cosine-similarity matrix between the rows of `a` (`B×d`) and the rows of
/// `b` (`C×d`), producing a `B×C` matrix of values in `[-1, 1]`.
///
/// Rows with (near-)zero norm produce zero similarities, mirroring the
/// behaviour of the similarity kernel in the paper's Eq. (1) with the
/// temperature factored out.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn cosine_similarity_matrix(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "cosine similarity requires equal embedding dims ({} vs {})",
        a.cols(),
        b.cols()
    );
    let an = a.normalize_rows(1e-12);
    let bn = b.normalize_rows(1e-12);
    an.matmul_nt(&bn)
}

/// Clamps every entry of `x` into `[lo, hi]`.
pub fn clamp_slice(x: &mut [f32], lo: f32, hi: f32) {
    for v in x {
        *v = v.clamp(lo, hi);
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population standard deviation of a slice (0 for fewer than two samples).
pub fn std_dev(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn log_sum_exp_matches_direct() {
        let xs = [0.1f32, -0.3, 0.7];
        let direct = xs.iter().map(|x| x.exp()).sum::<f32>().ln();
        assert!((log_sum_exp(&xs) - direct).abs() < 1e-6);
        assert_eq!(log_sum_exp(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn sigmoid_bounds_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(50.0) > 0.999_999);
        assert!(sigmoid(-50.0) < 1e-6);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_similarity_self_is_one() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Matrix::random_uniform(4, 16, 1.0, &mut rng);
        let s = cosine_similarity_matrix(&a, &a);
        for i in 0..4 {
            assert!((s.get(i, i) - 1.0).abs() < 1e-5);
            for j in 0..4 {
                assert!(s.get(i, j) <= 1.0 + 1e-5 && s.get(i, j) >= -1.0 - 1e-5);
            }
        }
    }

    #[test]
    fn cosine_similarity_orthogonal_rows() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0]]);
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let s = cosine_similarity_matrix(&a, &b);
        assert!(s.get(0, 0).abs() < 1e-6);
        assert!((s.get(0, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_normalises_each_row() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 0.0]]);
        let p = softmax_rows(&m);
        for r in 0..2 {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clamp_slice_limits() {
        let mut xs = [-2.0, 0.5, 3.0];
        clamp_slice(&mut xs, -1.0, 1.0);
        assert_eq!(xs, [-1.0, 0.5, 1.0]);
    }
}
