//! Dense `f32` vector helpers.

use crate::ShapeError;
use serde::{Deserialize, Serialize};

/// A dense vector of `f32` values.
///
/// Used for per-sample embeddings, per-attribute targets, and metric
/// accumulators throughout the workspace.
///
/// # Example
///
/// ```
/// use tensor::Vector;
///
/// let v = Vector::from_vec(vec![3.0, 4.0]);
/// assert_eq!(v.norm(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f32>,
}

impl Vector {
    /// Creates a vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Self { data: vec![0.0; n] }
    }

    /// Creates a vector of `n` ones.
    pub fn ones(n: usize) -> Self {
        Self { data: vec![1.0; n] }
    }

    /// Wraps an existing buffer.
    pub fn from_vec(data: Vec<f32>) -> Self {
        Self { data }
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the entry at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> f32 {
        self.data[i]
    }

    /// Sets the entry at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, value: f32) {
        self.data[i] = value;
    }

    /// Borrows the underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Vector) -> f32 {
        self.try_dot(other).expect("dot product length mismatch")
    }

    /// Checked dot product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the lengths differ.
    pub fn try_dot(&self, other: &Vector) -> Result<f32, ShapeError> {
        if self.len() != other.len() {
            return Err(ShapeError::new(format!(
                "dot of lengths {} and {}",
                self.len(),
                other.len()
            )));
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Cosine similarity with another vector (0 when either norm is ~0).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn cosine(&self, other: &Vector) -> f32 {
        let denom = self.norm() * other.norm();
        if denom < 1e-12 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0 for an empty vector).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Applies `f` to every entry, returning a new vector.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Vector {
        Vector {
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Index of the maximum entry (first maximal index on ties).
    ///
    /// Returns `None` for an empty vector.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        Some(best)
    }

    /// Indices of the `k` largest entries, largest first.
    pub fn topk(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.data.len()).collect();
        idx.sort_by(|&a, &b| {
            self.data[b]
                .partial_cmp(&self.data[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
        idx
    }

    /// Returns an iterator over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }
}

impl FromIterator<f32> for Vector {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl Extend<f32> for Vector {
    fn extend<I: IntoIterator<Item = f32>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl From<Vec<f32>> for Vector {
    fn from(data: Vec<f32>) -> Self {
        Vector { data }
    }
}

impl AsRef<[f32]> for Vector {
    fn as_ref(&self) -> &[f32] {
        &self.data
    }
}

impl std::fmt::Display for Vector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let shown: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|v| format!("{v:.4}"))
            .collect();
        let ellipsis = if self.data.len() > 8 { ", …" } else { "" };
        write!(
            f,
            "Vector[{}{}] (len {})",
            shown.join(", "),
            ellipsis,
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut v = Vector::zeros(3);
        assert_eq!(v.len(), 3);
        v.set(1, 5.0);
        assert_eq!(v.get(1), 5.0);
        assert!(!v.is_empty());
        assert!(Vector::from_vec(vec![]).is_empty());
    }

    #[test]
    fn dot_and_norm() {
        let a = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let b = Vector::from_vec(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
        assert!((a.norm() - 14.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn try_dot_length_mismatch() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(a.try_dot(&b).is_err());
    }

    #[test]
    fn cosine_bounds() {
        let a = Vector::from_vec(vec![1.0, 0.0]);
        let b = Vector::from_vec(vec![0.0, 1.0]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-6);
        assert!(a.cosine(&b).abs() < 1e-6);
        let z = Vector::zeros(2);
        assert_eq!(a.cosine(&z), 0.0);
    }

    #[test]
    fn argmax_and_topk() {
        let v = Vector::from_vec(vec![0.2, 0.9, 0.5, 0.9]);
        assert_eq!(v.argmax(), Some(1));
        assert_eq!(v.topk(2), vec![1, 3]);
        assert_eq!(Vector::zeros(0).argmax(), None);
    }

    #[test]
    fn iterator_traits() {
        let v: Vector = (0..4).map(|i| i as f32).collect();
        assert_eq!(v.len(), 4);
        let mut w = Vector::zeros(0);
        w.extend(vec![1.0, 2.0]);
        assert_eq!(w.as_slice(), &[1.0, 2.0]);
        let from: Vector = vec![3.0].into();
        assert_eq!(from.as_ref(), &[3.0]);
    }

    #[test]
    fn mean_and_map() {
        let v = Vector::from_vec(vec![1.0, 3.0]);
        assert_eq!(v.mean(), 2.0);
        assert_eq!(v.map(|x| x * 2.0).as_slice(), &[2.0, 6.0]);
        assert_eq!(Vector::zeros(0).mean(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let v = Vector::from_vec(vec![1.0; 20]);
        assert!(format!("{v}").contains("len 20"));
    }
}
