//! Crash-recovery tests for the durable serving path: a durable
//! [`QueryServer`]'s WAL directory, cut off at **any** record boundary (with
//! or without a torn partial record after it), must recover to a server
//! whose class memory is **bit-identical** to the in-memory snapshot that
//! was serving after exactly that prefix of mutations — same snapshot
//! version, same labels, same top-k bits.
//!
//! The deterministic test drives a full lifecycle (register / update /
//! remove / swap, across a compaction boundary) and recovers it; the
//! property test generates arbitrary mutation interleavings from a seeded
//! LCG, cuts the log at an arbitrary boundary, and checks the recovered
//! state against the live snapshot timeline the server itself published.

use dataset::AttributeSchema;
use hdc_zsc::{ModelConfig, ZscModel};
use proptest::prelude::*;
use serve::{
    wal, DurabilityConfig, ModelSnapshot, QueryServer, ServeError, ServerConfig, SyncPolicy,
};
use std::path::PathBuf;
use std::sync::Arc;
use tensor::Matrix;

const FEATURE_DIM: usize = 16;

fn schema() -> AttributeSchema {
    // A small synthetic attribute space keeps per-case model construction
    // (and the swap records' embedded checkpoints) cheap.
    AttributeSchema::synthetic(4, 3)
}

fn alpha() -> usize {
    schema().num_attributes()
}

fn model(seed: u64) -> ZscModel {
    ZscModel::new(&ModelConfig::tiny().with_seed(seed), &schema(), FEATURE_DIM)
}

fn config() -> ServerConfig {
    ServerConfig {
        max_batch: 4,
        max_wait_us: 50,
        threads: 2,
        top_k: 3,
        shards: 3,
        routed: None,
        publish_every: 1,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zsc-crash-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A tiny deterministic generator (an LCG) so the property test's mutation
/// script is a pure function of its seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn unit_f32(&mut self) -> f32 {
        (self.next() % 10_000) as f32 / 10_000.0
    }

    fn attr_row(&mut self, width: usize) -> Vec<f32> {
        (0..width).map(|_| self.unit_f32()).collect()
    }
}

fn probe_rows() -> Vec<Vec<f32>> {
    (0..4)
        .map(|p| {
            (0..FEATURE_DIM)
                .map(|i| 0.05 * (p * 7 + i) as f32)
                .collect()
        })
        .collect()
}

/// Bit-exact comparison of a recovered snapshot against the live snapshot
/// that served the same mutation prefix.
fn assert_snapshots_match(recovered: &ModelSnapshot, expected: &ModelSnapshot, context: &str) {
    assert_eq!(
        recovered.version(),
        expected.version(),
        "{context}: version diverged"
    );
    assert_eq!(
        recovered.memory(),
        expected.memory(),
        "{context}: class memory diverged"
    );
    for (p, row) in probe_rows().iter().enumerate() {
        let got: Vec<(String, u32)> = recovered
            .solo_topk(row, 3)
            .into_iter()
            .map(|(l, s)| (l, s.to_bits()))
            .collect();
        let want: Vec<(String, u32)> = expected
            .solo_topk(row, 3)
            .into_iter()
            .map(|(l, s)| (l, s.to_bits()))
            .collect();
        assert_eq!(got, want, "{context}: probe {p} scored differently");
    }
}

/// The deterministic acceptance drill: a durable server lives through
/// registrations, updates, removals, a model swap, and an automatic
/// compaction; killed (dropped) and recovered, it serves **bit-identical**
/// results at the same snapshot version — and a torn partial record
/// appended by a simulated mid-append crash is detected and ignored.
#[test]
fn kill_and_recover_restores_the_exact_serving_state() {
    let dir = temp_dir("lifecycle");
    let a = alpha();
    let labels: Vec<String> = (0..5).map(|c| format!("class{c}")).collect();
    let mut lcg = Lcg(99);
    let class_attributes = Matrix::from_rows(&(0..5).map(|_| lcg.attr_row(a)).collect::<Vec<_>>());
    let server = QueryServer::start_durable(
        model(1),
        labels.clone(),
        &class_attributes,
        &schema(),
        config(),
        DurabilityConfig {
            dir: dir.clone(),
            sync: SyncPolicy::Always,
            // Low enough that the mutation script below crosses a
            // compaction: recovery then spans base + WAL suffix.
            compact_every: 4,
        },
    )
    .expect("durable server starts");

    server
        .register_class("hot0", &lcg.attr_row(a))
        .expect("registers");
    server
        .update_class("class2", &lcg.attr_row(a))
        .expect("updates");
    server.remove_class("class0").expect("removes");
    let swap_labels: Vec<String> = (0..4).map(|c| format!("sw{c}")).collect();
    let swap_attributes = Matrix::from_rows(&(0..4).map(|_| lcg.attr_row(a)).collect::<Vec<_>>());
    // Mutation 4 of 4: triggers the automatic compaction (base rewritten,
    // log rotated) right after the swap publishes.
    server
        .swap_model(model(2), swap_labels.clone(), &swap_attributes)
        .expect("swaps");
    // Two more past the compaction boundary so recovery replays a suffix.
    server
        .register_class("hot1", &lcg.attr_row(a))
        .expect("registers");
    server.remove_class("sw3").expect("removes");

    let expected = server.snapshot();
    assert_eq!(expected.version(), 6);
    drop(server); // the "kill": nothing is written beyond what each mutation already synced

    // Recover and verify bit-identity, then keep living: the recovered
    // server accepts further mutations and queries.
    let (recovered, report) =
        QueryServer::recover(&schema(), config(), DurabilityConfig::new(dir.clone()))
            .expect("recovers");
    assert_eq!(report.snapshot_version, 6);
    assert_eq!(
        report.replayed_records, 2,
        "suffix past the compaction base"
    );
    assert!(!report.torn_tail);
    assert_snapshots_match(&recovered.snapshot(), &expected, "clean recovery");
    recovered
        .register_class("post-crash", &lcg.attr_row(a))
        .expect("recovered server accepts mutations");
    assert!(recovered.query(&probe_rows()[0]).is_ok());
    let expected = recovered.snapshot();
    assert_eq!(expected.version(), 7);
    drop(recovered);

    // Simulate a crash mid-append: garbage shorter than a frame header at
    // the log's tail. Recovery must flag and ignore it — state unchanged.
    {
        use std::io::Write;
        let mut log = std::fs::OpenOptions::new()
            .append(true)
            .open(wal::wal_path(&dir))
            .expect("open log");
        log.write_all(&[0x13, 0x37, 0x00]).expect("append garbage");
    }
    let (torn, report) =
        QueryServer::recover(&schema(), config(), DurabilityConfig::new(dir.clone()))
            .expect("recovers past the torn tail");
    assert!(report.torn_tail, "the partial record must be detected");
    assert_eq!(report.snapshot_version, 7);
    assert_snapshots_match(&torn.snapshot(), &expected, "torn-tail recovery");
    drop(torn);
    std::fs::remove_dir_all(&dir).ok();
}

/// The routed-mode drill: a durable server carrying a coarse-to-fine
/// routed index — probing *partially*, so results genuinely depend on the
/// clustering structure — lives through registrations, updates, removals, a
/// model swap, and a compaction; killed and recovered under the same
/// configuration, the rebuilt index is **structurally identical** (same
/// cluster assignment, same centroids, same drift counter) and serves
/// bit-identical results. Recovery under a different routed configuration
/// falls back to a fresh deterministic clustering; recovery without routing
/// drops the index.
#[test]
fn kill_and_recover_restores_the_exact_routed_index() {
    let dir = temp_dir("routed");
    let a = alpha();
    let routed_config = engine::RoutedConfig {
        clusters: 3,
        nprobe: 2, // partial probing: results depend on the structure
        ..engine::RoutedConfig::default()
    };
    let config = ServerConfig {
        routed: Some(routed_config),
        publish_every: 1,
        ..config()
    };
    let labels: Vec<String> = (0..6).map(|c| format!("class{c}")).collect();
    let mut lcg = Lcg(4242);
    let class_attributes = Matrix::from_rows(&(0..6).map(|_| lcg.attr_row(a)).collect::<Vec<_>>());
    let server = QueryServer::start_durable(
        model(3),
        labels.clone(),
        &class_attributes,
        &schema(),
        config,
        DurabilityConfig {
            dir: dir.clone(),
            sync: SyncPolicy::Always,
            compact_every: 4,
        },
    )
    .expect("durable routed server starts");
    assert!(server.snapshot().routed().is_some());

    server
        .register_class("hot0", &lcg.attr_row(a))
        .expect("registers");
    server
        .update_class("class1", &lcg.attr_row(a))
        .expect("updates");
    server.remove_class("class4").expect("removes");
    let swap_labels: Vec<String> = (0..5).map(|c| format!("sw{c}")).collect();
    let swap_attributes = Matrix::from_rows(&(0..5).map(|_| lcg.attr_row(a)).collect::<Vec<_>>());
    // Mutation 4 of 4 triggers compaction: the base captures the routed
    // index mid-history, so recovery must resume — not re-derive — it.
    server
        .swap_model(model(4), swap_labels, &swap_attributes)
        .expect("swaps");
    server
        .register_class("hot1", &lcg.attr_row(a))
        .expect("registers past the compaction boundary");

    let expected = server.snapshot();
    assert_eq!(expected.version(), 5);
    drop(server);

    let (recovered, report) =
        QueryServer::recover(&schema(), config, DurabilityConfig::new(dir.clone()))
            .expect("recovers");
    assert_eq!(report.snapshot_version, 5);
    let snapshot = recovered.snapshot();
    assert_eq!(
        snapshot.routed(),
        expected.routed(),
        "recovered routed index diverged structurally"
    );
    assert!(!snapshot.routed().expect("routed").probes_exhaustively());
    assert_snapshots_match(&snapshot, &expected, "routed recovery");
    drop(recovered);

    // A different routed configuration cannot resume the saved structure:
    // recovery re-clusters deterministically, so two such recoveries agree
    // with each other.
    let other = ServerConfig {
        routed: Some(engine::RoutedConfig {
            clusters: 2,
            nprobe: 0,
            ..engine::RoutedConfig::default()
        }),
        ..config
    };
    let (fresh_a, _) = QueryServer::recover(&schema(), other, DurabilityConfig::new(dir.clone()))
        .expect("recovers under a new routed config");
    let (fresh_b, _) = QueryServer::recover(&schema(), other, DurabilityConfig::new(dir.clone()))
        .expect("recovers again");
    let a_snap = fresh_a.snapshot();
    let b_snap = fresh_b.snapshot();
    assert_eq!(a_snap.routed(), b_snap.routed(), "fresh rebuilds diverged");
    assert_eq!(a_snap.routed().expect("routed").num_clusters(), 2);
    drop(fresh_a);
    drop(fresh_b);

    // Routing off: the index is dropped, the exhaustive state is unchanged.
    let unrouted = ServerConfig {
        routed: None,
        publish_every: 1,
        ..config
    };
    let (plain, _) = QueryServer::recover(&schema(), unrouted, DurabilityConfig::new(dir.clone()))
        .expect("recovers unrouted");
    assert!(plain.snapshot().routed().is_none());
    assert_eq!(plain.snapshot().memory(), expected.memory());
    drop(plain);
    std::fs::remove_dir_all(&dir).ok();
}

/// Typed duplicate rejection (and that the rejection really publishes and
/// logs nothing: the version does not move).
#[test]
fn duplicate_register_is_a_typed_error_and_publishes_nothing() {
    let a = alpha();
    let server = QueryServer::start(
        model(5),
        vec!["a".to_string(), "b".to_string()],
        &Matrix::ones(2, a),
        config(),
    )
    .expect("server starts");
    match server.register_class("a", &vec![0.5; a]) {
        Err(ServeError::DuplicateLabel(label)) => assert_eq!(label, "a"),
        other => panic!("expected DuplicateLabel, got {other:?}"),
    }
    assert_eq!(server.snapshot().version(), 0);
    assert_eq!(server.stats().swaps, 0);
    // update_class remains the explicit overwrite path.
    assert_eq!(
        server
            .update_class("a", &vec![0.5; a])
            .expect("updates")
            .version(),
        1
    );
}

/// `compact` is explicit on durable servers and a typed no-op elsewhere.
#[test]
fn explicit_compaction_folds_the_log() {
    let dir = temp_dir("compact");
    let a = alpha();
    let server = QueryServer::start_durable(
        model(7),
        vec!["x".to_string(), "y".to_string()],
        &Matrix::ones(2, a),
        &schema(),
        config(),
        DurabilityConfig {
            dir: dir.clone(),
            sync: SyncPolicy::Always,
            compact_every: 0, // automatic compaction disabled
        },
    )
    .expect("durable server starts");
    server
        .register_class("z", &vec![0.25; a])
        .expect("registers");
    assert!(server.compact().expect("compacts"));
    let expected = server.snapshot();
    drop(server);
    // The log was rotated: recovery replays nothing, yet lands on the same
    // state because the base absorbed the mutation.
    let (recovered, report) =
        QueryServer::recover(&schema(), config(), DurabilityConfig::new(dir.clone()))
            .expect("recovers");
    assert_eq!(report.replayed_records, 0);
    assert_snapshots_match(&recovered.snapshot(), &expected, "post-compaction recovery");
    drop(recovered);
    std::fs::remove_dir_all(&dir).ok();

    let non_durable = QueryServer::start(
        model(7),
        vec!["x".to_string()],
        &Matrix::ones(1, a),
        config(),
    )
    .expect("server starts");
    assert!(!non_durable.compact().expect("no-op"));
}

fn feature_row(lcg: &mut Lcg) -> Vec<f32> {
    (0..FEATURE_DIM).map(|_| lcg.unit_f32() - 0.5).collect()
}

/// The streaming kill→recover drill: a durable server batching observes
/// three-per-publication is killed **mid-batch**; recovery must resume the
/// exact batching position (same pending classes, same `since_publish`),
/// serve bit-identically, and — after the stream resumes — land on memory
/// bit-identical to an uninterrupted twin that streamed the same examples
/// with no crash. A second phase compacts mid-batch so the stream state
/// rides the checkpoint delta rather than WAL replay.
#[test]
fn kill_and_recover_resumes_the_exact_stream_position() {
    let dir = temp_dir("stream");
    let a = alpha();
    let labels: Vec<String> = (0..3).map(|c| format!("class{c}")).collect();
    let mut lcg = Lcg(77);
    let class_attributes = Matrix::from_rows(&(0..3).map(|_| lcg.attr_row(a)).collect::<Vec<_>>());
    let config = ServerConfig {
        publish_every: 3,
        ..config()
    };
    // One pre-generated example stream, shared with the uninterrupted twin.
    let examples: Vec<(String, Vec<f32>)> = (0..11)
        .map(|i| (format!("class{}", i % 3), feature_row(&mut lcg)))
        .collect();

    let server = QueryServer::start_durable(
        model(11),
        labels.clone(),
        &class_attributes,
        &schema(),
        config,
        DurabilityConfig {
            dir: dir.clone(),
            sync: SyncPolicy::Always,
            compact_every: 0,
        },
    )
    .expect("durable server starts");
    // 7 observes: publications at #3 and #6, then one observe into the
    // third batch — the kill lands mid-batch.
    for (i, (label, row)) in examples[..7].iter().enumerate() {
        let published = server.observe(label, row).expect("observe");
        assert_eq!(
            published.is_some(),
            (i + 1) % 3 == 0,
            "observe {i}: wrong publication boundary"
        );
    }
    let expected = server.snapshot();
    assert_eq!(expected.version(), 2);
    let expected_stats = server.stream_stats();
    assert_eq!(expected_stats.since_publish, 1);
    assert_eq!(expected_stats.pending_classes, 1);
    drop(server); // the kill, one observe into a batch

    let (recovered, report) =
        QueryServer::recover(&schema(), config, DurabilityConfig::new(dir.clone()))
            .expect("recovers");
    assert_eq!(report.snapshot_version, 2);
    assert_eq!(report.replayed_records, 7);
    assert_snapshots_match(
        &recovered.snapshot(),
        &expected,
        "mid-batch stream recovery",
    );
    let stats = recovered.stream_stats();
    assert_eq!(stats.observes, 7, "replay recounts every observe");
    assert_eq!(stats.since_publish, expected_stats.since_publish);
    assert_eq!(stats.pending_classes, expected_stats.pending_classes);
    assert_eq!(
        stats.publishes, expected_stats.publishes,
        "drift detector rebuilt by replay"
    );

    // Resume the stream: observes 8 and 9 complete the interrupted batch on
    // the recovered server — at the same version the uninterrupted run
    // publishes.
    for (label, row) in &examples[7..9] {
        recovered.observe(label, row).expect("observe resumes");
    }
    assert_eq!(recovered.snapshot().version(), 3);

    // Mid-batch compaction: observe 10 opens a new batch, then the base
    // absorbs counters + batching position; recovery replays *nothing* yet
    // resumes the stream exactly.
    recovered
        .observe(&examples[9].0, &examples[9].1)
        .expect("observe");
    assert!(recovered.compact().expect("compacts"));
    let expected = recovered.snapshot();
    drop(recovered);
    let (resumed, report) =
        QueryServer::recover(&schema(), config, DurabilityConfig::new(dir.clone()))
            .expect("recovers from stream checkpoint");
    assert_eq!(report.replayed_records, 0, "the base absorbed the stream");
    assert_snapshots_match(
        &resumed.snapshot(),
        &expected,
        "post-compaction stream recovery",
    );
    assert_eq!(resumed.stream_stats().since_publish, 1);
    assert_eq!(resumed.stream_stats().pending_classes, 1);
    resumed
        .observe(&examples[10].0, &examples[10].1)
        .expect("observe");
    let final_flush = resumed.flush().expect("flush publishes the partial batch");
    assert_eq!(final_flush.version(), 4);
    drop(resumed);
    std::fs::remove_dir_all(&dir).ok();

    // The uninterrupted twin: same model, same example stream, no kill, no
    // compaction — the final class memory must be bit-identical.
    let twin =
        QueryServer::start(model(11), labels, &class_attributes, config).expect("twin starts");
    for (label, row) in &examples {
        twin.observe(label, row).expect("twin observe");
    }
    let twin_final = twin.flush().expect("twin flush");
    assert_eq!(twin_final.version(), 4);
    assert_eq!(
        twin_final.memory(),
        final_flush.memory(),
        "crash-recovered stream diverged from the uninterrupted twin"
    );
}

/// One step of the property test's mutation script. Returns the published
/// snapshot; the script is a pure function of the LCG state, so the same
/// seed always produces the same server history.
fn apply_scripted_op(
    server: &QueryServer,
    lcg: &mut Lcg,
    live: &mut Vec<String>,
    fresh: &mut usize,
) -> Arc<ModelSnapshot> {
    let a = alpha();
    let kind = lcg.next() % 10;
    match kind {
        // Streamed observes ride the same WAL as classic mutations; the
        // script's `publish_every: 1` makes each one publish immediately.
        8 | 9 => {
            let target = live[(lcg.next() as usize) % live.len()].clone();
            server
                .observe(&target, &feature_row(lcg))
                .expect("scripted observe")
                .expect("publish_every=1 publishes every observe")
        }
        // Otherwise, classic mutations; registers dominate so the set grows.
        0..=3 => {
            let label = format!("dyn{}", *fresh);
            *fresh += 1;
            let snapshot = server
                .register_class(label.clone(), &lcg.attr_row(a))
                .expect("scripted register");
            live.push(label);
            snapshot
        }
        4 | 5 => {
            let target = live[(lcg.next() as usize) % live.len()].clone();
            server
                .update_class(&target, &lcg.attr_row(a))
                .expect("scripted update")
        }
        6 => {
            if live.len() > 1 {
                let victim = live.remove((lcg.next() as usize) % live.len());
                server.remove_class(&victim).expect("scripted remove")
            } else {
                let label = format!("dyn{}", *fresh);
                *fresh += 1;
                let snapshot = server
                    .register_class(label.clone(), &lcg.attr_row(a))
                    .expect("scripted register (remove fallback)");
                live.push(label);
                snapshot
            }
        }
        _ => {
            let labels: Vec<String> = (0..3).map(|c| format!("sw{}-{c}", *fresh)).collect();
            *fresh += 1;
            let attrs = Matrix::from_rows(&(0..3).map(|_| lcg.attr_row(a)).collect::<Vec<_>>());
            let snapshot = server
                .swap_model(model(lcg.next()), labels.clone(), &attrs)
                .expect("scripted swap");
            *live = labels;
            snapshot
        }
    }
}

proptest! {
    /// The tentpole property: for an arbitrary mutation interleaving, the
    /// WAL cut at an arbitrary record boundary recovers to a server
    /// bit-identical to the in-memory snapshot that was serving after the
    /// same prefix of mutations — optionally with a torn partial record
    /// after the cut, which must be flagged and ignored.
    #[test]
    fn recovery_at_any_record_boundary_matches_the_live_prefix(
        seed in 0u64..100_000,
        op_count in 1usize..14,
        cut_sel in 0usize..1_000,
    ) {
        let dir = temp_dir(&format!("prop-{seed}-{op_count}-{cut_sel}"));
        let a = alpha();
        let mut lcg = Lcg(seed ^ 0x9e3779b97f4a7c15);
        let mut live: Vec<String> = (0..3).map(|c| format!("class{c}")).collect();
        let class_attributes = Matrix::from_rows(
            &(0..3).map(|_| lcg.attr_row(a)).collect::<Vec<_>>(),
        );
        let server = QueryServer::start_durable(
            model(seed),
            live.clone(),
            &class_attributes,
            &schema(),
            config(),
            DurabilityConfig {
                dir: dir.clone(),
                sync: SyncPolicy::Always,
                // Compaction off: the log keeps every record, so any prefix
                // is a reachable cut point.
                compact_every: 0,
            },
        )
        .expect("durable server starts");

        // The reference timeline: the snapshot the server itself served
        // after 0, 1, …, op_count mutations.
        let mut timeline: Vec<Arc<ModelSnapshot>> = vec![server.snapshot()];
        let mut fresh = 0usize;
        for _ in 0..op_count {
            timeline.push(apply_scripted_op(&server, &mut lcg, &mut live, &mut fresh));
        }
        drop(server); // the crash

        // Cut the log at an arbitrary record boundary.
        let log_path = wal::wal_path(&dir);
        let full = wal::replay(&log_path).expect("full log replays");
        prop_assert_eq!(full.entries.len(), op_count);
        let cut = cut_sel % (op_count + 1);
        let offset = if cut == 0 {
            20 // the 20-byte file header: magic + format + first_seq
        } else {
            full.entries[cut - 1].end_offset
        };
        let bytes = std::fs::read(&log_path).expect("read log");
        let mut kept = bytes[..offset as usize].to_vec();
        // In a third of the cases, the crash also tore the next append.
        let torn = cut_sel % 3 == 0 && cut < op_count;
        if torn {
            let tail_end = (offset as usize + 5).min(bytes.len());
            kept.extend_from_slice(&bytes[offset as usize..tail_end]);
        }
        std::fs::write(&log_path, &kept).expect("write cut log");

        let (recovered, report) =
            QueryServer::recover(&schema(), config(), DurabilityConfig::new(dir.clone()))
                .expect("recovers");
        prop_assert_eq!(report.replayed_records, cut as u64);
        prop_assert_eq!(report.torn_tail, torn);
        assert_snapshots_match(
            &recovered.snapshot(),
            &timeline[cut],
            &format!("seed {seed}, {op_count} ops, cut {cut}"),
        );
        drop(recovered);
        std::fs::remove_dir_all(&dir).ok();
    }
}
