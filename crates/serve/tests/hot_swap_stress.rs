//! Concurrency stress test for the hot-swap path: many client threads
//! hammer the [`QueryServer`] while the main thread repeatedly registers,
//! updates, and removes classes (publishing a new snapshot each time).
//!
//! Asserts:
//!
//! * no deadlock — every query completes and the server shuts down cleanly
//!   (the test itself finishing is the liveness assertion; CI enforces an
//!   overall timeout);
//! * **every** response is bit-identical to solo scoring against the exact
//!   snapshot version that served it ([`ModelSnapshot::solo_topk`]), i.e. a
//!   swap never tears a batch and never changes a single output bit of
//!   queries served under the old version;
//! * versions observed by each caller are monotonically non-decreasing (the
//!   snapshot slot is swapped atomically, and the admission queue is FIFO
//!   per caller).

use dataset::AttributeSchema;
use hdc_zsc::{ModelConfig, ZscModel};
use serve::{ModelSnapshot, QueryServer, ServerConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use tensor::Matrix;

const FEATURE_DIM: usize = 32;
const CALLERS: usize = 6;
const QUERIES_PER_CALLER: usize = 60;
const SWAPS: usize = 40;

#[test]
fn queries_stay_bit_identical_under_repeated_hot_swaps() {
    let schema = AttributeSchema::cub200();
    let model = ZscModel::new(&ModelConfig::tiny().with_seed(23), &schema, FEATURE_DIM);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(31);
    let class_attributes = Matrix::random_uniform(8, 312, 0.5, &mut rng).map(f32::abs);
    let labels: Vec<String> = (0..8).map(|c| format!("base{c}")).collect();
    let server = QueryServer::start(
        model,
        labels,
        &class_attributes,
        ServerConfig {
            max_batch: 16,
            max_wait_us: 150,
            threads: 2,
            top_k: 3,
            shards: 3,
            routed: None,
            publish_every: 1,
        },
    )
    .expect("server starts");

    // Every snapshot version ever published, recorded by the (single)
    // swapping thread: version → snapshot. Workers verify against this map
    // after the traffic finishes.
    let snapshots: Mutex<HashMap<u64, Arc<ModelSnapshot>>> = Mutex::new(HashMap::new());
    {
        let initial = server.snapshot();
        snapshots
            .lock()
            .expect("snapshot map")
            .insert(initial.version(), initial);
    }

    // Deterministic per-caller query streams.
    let streams: Vec<Vec<Vec<f32>>> = (0..CALLERS)
        .map(|_| {
            (0..QUERIES_PER_CALLER)
                .map(|_| {
                    Matrix::random_uniform(1, FEATURE_DIM, 1.0, &mut rng)
                        .row(0)
                        .to_vec()
                })
                .collect()
        })
        .collect();
    let swap_attrs: Vec<Vec<f32>> = (0..SWAPS)
        .map(|_| {
            Matrix::random_uniform(1, 312, 0.5, &mut rng)
                .map(f32::abs)
                .row(0)
                .to_vec()
        })
        .collect();

    // (version, query index, caller, served labels+bits) per response.
    type Observation = (u64, usize, usize, Vec<(String, u32)>);
    let observations: Mutex<Vec<Observation>> = Mutex::new(Vec::new());
    // Answered-query counter the swapping thread paces itself against, so
    // the interleaving does not depend on OS scheduling: swap `s` waits for
    // ~s/SWAPS of the traffic to be answered first.
    let answered = AtomicUsize::new(0);
    let total_queries = CALLERS * QUERIES_PER_CALLER;

    std::thread::scope(|scope| {
        for (caller, stream) in streams.iter().enumerate() {
            let server = &server;
            let observations = &observations;
            let answered = &answered;
            scope.spawn(move || {
                let mut last_version = 0u64;
                for (q, features) in stream.iter().enumerate() {
                    let (version, served) = server.query_traced(features).expect("query served");
                    assert!(
                        version >= last_version,
                        "caller {caller}: version went backwards ({last_version} -> {version})"
                    );
                    last_version = version;
                    let served: Vec<(String, u32)> = served
                        .into_iter()
                        .map(|(label, sim)| (label, sim.to_bits()))
                        .collect();
                    observations
                        .lock()
                        .expect("observations")
                        .push((version, q, caller, served));
                    answered.fetch_add(1, Ordering::SeqCst);
                }
            });
        }

        // The swapping thread: interleave registrations, updates, and
        // removals while the callers are in flight, recording every
        // published snapshot. Each swap waits until a proportional slice of
        // the traffic has been answered, which guarantees the interleaving
        // on any scheduler: responses answered before swap 1 carry version
        // 0, and since swap `s` publishes with at least
        // `total - s·total/SWAPS` queries still unanswered, later responses
        // observe later versions.
        for (s, attrs) in swap_attrs.iter().enumerate() {
            let progress_gate = (s * total_queries / SWAPS).max(1);
            while answered.load(Ordering::SeqCst) < progress_gate.min(total_queries) {
                std::thread::yield_now();
            }
            let snapshot = match s % 4 {
                // Register a brand-new class.
                0 | 1 => server
                    .register_class(format!("hot{s}"), attrs)
                    .expect("class registers"),
                // Re-point an earlier hot class at new attributes (falls
                // back to registering a fresh one when it was already
                // removed — register never overwrites).
                2 => server
                    .update_class(&format!("hot{}", s.saturating_sub(2)), attrs)
                    .or_else(|_| server.register_class(format!("hot{s}-u"), attrs))
                    .expect("class re-points"),
                // Remove an earlier hot class when still present.
                _ => match server.remove_class(&format!("hot{}", s.saturating_sub(3))) {
                    Ok(snapshot) => snapshot,
                    Err(_) => server
                        .register_class(format!("hot{s}-b"), attrs)
                        .expect("fallback registers"),
                },
            };
            snapshots
                .lock()
                .expect("snapshot map")
                .insert(snapshot.version(), snapshot);
        }
    });

    let observations = observations.into_inner().expect("observations");
    assert_eq!(observations.len(), CALLERS * QUERIES_PER_CALLER);
    let snapshots = snapshots.into_inner().expect("snapshot map");
    assert_eq!(
        snapshots.len(),
        SWAPS + 1,
        "every version was recorded once"
    );

    // The heart of the test: each response must be bit-identical to solo
    // scoring against precisely the snapshot version that served it.
    let mut versions_seen: Vec<u64> = Vec::new();
    for (version, q, caller, served) in observations {
        let snapshot = snapshots
            .get(&version)
            .unwrap_or_else(|| panic!("response carries unknown version {version}"));
        let expected: Vec<(String, u32)> = snapshot
            .solo_topk(&streams[caller][q], 3)
            .into_iter()
            .map(|(label, sim)| (label, sim.to_bits()))
            .collect();
        assert_eq!(
            served, expected,
            "caller {caller} query {q} diverged from snapshot v{version}"
        );
        versions_seen.push(version);
    }
    // Sanity: the stress actually exercised multiple snapshot versions.
    versions_seen.sort_unstable();
    versions_seen.dedup();
    assert!(
        versions_seen.len() >= 2,
        "traffic should have been served by at least two snapshot versions \
         (saw {versions_seen:?}); increase the interleaving if this flakes"
    );

    let stats = server.stats();
    assert_eq!(stats.queries, (CALLERS * QUERIES_PER_CALLER) as u64);
    assert_eq!(stats.swaps, SWAPS as u64);
    // Clean shutdown: dropping the server joins the dispatcher; reaching
    // this point without hanging is the no-deadlock assertion.
    drop(server);
}

/// The streaming variant of the churn stress: callers hammer queries while
/// the main thread streams observes into the live classes — publications
/// fire on the `publish_every` cadence with explicit flushes interleaved,
/// so snapshots churn mid-traffic. Every response must still be
/// bit-identical to solo scoring against the exact snapshot version that
/// served it, and versions stay monotone per caller.
#[test]
fn queries_stay_bit_identical_under_streamed_observe_churn() {
    const OBSERVES: usize = 48;
    let schema = AttributeSchema::cub200();
    let model = ZscModel::new(&ModelConfig::tiny().with_seed(29), &schema, FEATURE_DIM);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(37);
    let class_attributes = Matrix::random_uniform(6, 312, 0.5, &mut rng).map(f32::abs);
    let labels: Vec<String> = (0..6).map(|c| format!("base{c}")).collect();
    let server = QueryServer::start(
        model,
        labels.clone(),
        &class_attributes,
        ServerConfig {
            max_batch: 16,
            max_wait_us: 150,
            threads: 2,
            top_k: 3,
            shards: 3,
            routed: None,
            publish_every: 3,
        },
    )
    .expect("server starts");

    let snapshots: Mutex<HashMap<u64, Arc<ModelSnapshot>>> = Mutex::new(HashMap::new());
    {
        let initial = server.snapshot();
        snapshots
            .lock()
            .expect("snapshot map")
            .insert(initial.version(), initial);
    }
    let streams: Vec<Vec<Vec<f32>>> = (0..CALLERS)
        .map(|_| {
            (0..QUERIES_PER_CALLER)
                .map(|_| {
                    Matrix::random_uniform(1, FEATURE_DIM, 1.0, &mut rng)
                        .row(0)
                        .to_vec()
                })
                .collect()
        })
        .collect();
    let examples: Vec<(String, Vec<f32>)> = (0..OBSERVES)
        .map(|i| {
            let row = Matrix::random_uniform(1, FEATURE_DIM, 1.0, &mut rng)
                .row(0)
                .to_vec();
            (labels[i % labels.len()].clone(), row)
        })
        .collect();

    type Observation = (u64, usize, usize, Vec<(String, u32)>);
    let observations: Mutex<Vec<Observation>> = Mutex::new(Vec::new());
    let answered = AtomicUsize::new(0);
    let total_queries = CALLERS * QUERIES_PER_CALLER;

    std::thread::scope(|scope| {
        for (caller, stream) in streams.iter().enumerate() {
            let server = &server;
            let observations = &observations;
            let answered = &answered;
            scope.spawn(move || {
                let mut last_version = 0u64;
                for (q, features) in stream.iter().enumerate() {
                    let (version, served) = server.query_traced(features).expect("query served");
                    assert!(
                        version >= last_version,
                        "caller {caller}: version went backwards ({last_version} -> {version})"
                    );
                    last_version = version;
                    let served: Vec<(String, u32)> = served
                        .into_iter()
                        .map(|(label, sim)| (label, sim.to_bits()))
                        .collect();
                    observations
                        .lock()
                        .expect("observations")
                        .push((version, q, caller, served));
                    answered.fetch_add(1, Ordering::SeqCst);
                }
            });
        }

        // The streaming thread: fold observes on the publish_every=3
        // cadence, with an explicit mid-batch flush every 10th observe, each
        // paced against the answered-query counter exactly like the classic
        // swap stress.
        for (s, (label, row)) in examples.iter().enumerate() {
            let progress_gate = (s * total_queries / OBSERVES).max(1);
            while answered.load(Ordering::SeqCst) < progress_gate.min(total_queries) {
                std::thread::yield_now();
            }
            if let Some(published) = server.observe(label, row).expect("observe folds") {
                snapshots
                    .lock()
                    .expect("snapshot map")
                    .insert(published.version(), published);
            }
            if s % 10 == 9 {
                let flushed = server.flush().expect("flush publishes");
                snapshots
                    .lock()
                    .expect("snapshot map")
                    .insert(flushed.version(), flushed);
            }
        }
    });

    let observations = observations.into_inner().expect("observations");
    assert_eq!(observations.len(), total_queries);
    let snapshots = snapshots.into_inner().expect("snapshot map");
    // Every publication was captured: the version space is dense from 0.
    assert_eq!(
        snapshots.len() as u64,
        server.stats().swaps + 1,
        "one recorded snapshot per publication"
    );

    let mut versions_seen: Vec<u64> = Vec::new();
    for (version, q, caller, served) in observations {
        let snapshot = snapshots
            .get(&version)
            .unwrap_or_else(|| panic!("response carries unknown version {version}"));
        let expected: Vec<(String, u32)> = snapshot
            .solo_topk(&streams[caller][q], 3)
            .into_iter()
            .map(|(label, sim)| (label, sim.to_bits()))
            .collect();
        assert_eq!(
            served, expected,
            "caller {caller} query {q} diverged from snapshot v{version}"
        );
        versions_seen.push(version);
    }
    versions_seen.sort_unstable();
    versions_seen.dedup();
    assert!(
        versions_seen.len() >= 2,
        "traffic should have been served by at least two snapshot versions \
         (saw {versions_seen:?}); increase the interleaving if this flakes"
    );
    let stream_stats = server.stream_stats();
    assert_eq!(stream_stats.observes, OBSERVES as u64);
    drop(server);
}
