//! Overload behaviour of the TCP front-end, pinned under saturation:
//!
//! * (a) when the bounded admission queue is full, further queries are
//!   load-shed with a **typed** `overloaded` rejection (never queued
//!   without bound, never a silent drop);
//! * (b) every request that *was* admitted is answered **bit-identically**
//!   to [`serve::ModelSnapshot::solo_topk`] on the snapshot version the
//!   response names — overload sheds load, it does not corrupt answers;
//! * (c) draining the front-end while saturating clients still hold open
//!   sockets deadlocks nothing: `shutdown()` returns, every client thread
//!   returns, and late requests get a typed `draining` rejection or a
//!   closed socket.

use dataset::AttributeSchema;
use hdc_zsc::{ModelConfig, ZscModel};
use serve::net::wire;
use serve::net::{ClientConfig, NetClient, NetConfig, NetError, NetServer};
use serve::{QueryServer, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tensor::Matrix;

const FEATURE_DIM: usize = 24;

fn start_stack(
    server_config: ServerConfig,
    net_config: NetConfig,
) -> (Arc<QueryServer>, NetServer) {
    let schema = AttributeSchema::cub200();
    let model = ZscModel::new(&ModelConfig::tiny().with_seed(11), &schema, FEATURE_DIM);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let class_attributes = Matrix::random_uniform(9, 312, 0.5, &mut rng).map(f32::abs);
    let labels: Vec<String> = (0..9).map(|c| format!("class{c}")).collect();
    let server = Arc::new(
        QueryServer::start(model, labels, &class_attributes, server_config).expect("server starts"),
    );
    let net = NetServer::bind("127.0.0.1:0", Arc::clone(&server), &schema, net_config)
        .expect("front-end binds");
    (server, net)
}

fn random_rows(count: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            Matrix::random_uniform(1, FEATURE_DIM, 1.0, &mut rng)
                .row(0)
                .to_vec()
        })
        .collect()
}

/// Deterministic single-slot saturation: with `admission_capacity = 1`
/// and a long coalescing window, the one admitted query *holds* the slot
/// for the whole window, so a concurrent query must be load-shed with a
/// typed `overloaded` rejection — and the admitted one still comes back
/// bit-identical.
#[test]
fn a_full_admission_queue_sheds_with_a_typed_rejection() {
    let (server, net) = start_stack(
        ServerConfig {
            max_batch: 64,
            // The admitted query sits in the dispatcher's coalescing
            // window for 300ms — plenty for the second query to arrive
            // and find the single admission slot taken.
            max_wait_us: 300_000,
            threads: 1,
            top_k: 4,
            shards: 2,
            routed: None,
            publish_every: 1,
        },
        NetConfig {
            admission_capacity: 1,
            ..NetConfig::default()
        },
    );
    let addr = net.local_addr();
    let snapshot = server.snapshot();
    let q = random_rows(1, 3).pop().expect("one row");

    let holder = {
        let q = q.clone();
        std::thread::spawn(move || {
            let mut client =
                NetClient::connect(addr, ClientConfig::default()).expect("holder connects");
            client.query(&q, None).expect("admitted query is answered")
        })
    };
    // Give the holder time to connect, handshake, and occupy the slot.
    std::thread::sleep(Duration::from_millis(100));
    let mut shed_client =
        NetClient::connect(addr, ClientConfig::default()).expect("shed client connects");
    let err = shed_client
        .query(&q, None)
        .expect_err("slot is held, this query must be shed");
    assert!(err.is_rejection(wire::code::OVERLOADED), "{err}");

    let (version, served) = holder.join().expect("holder thread");
    assert_eq!(version, 0);
    let expected = snapshot.solo_topk(&q, 4);
    assert_eq!(served.len(), expected.len());
    for ((sl, ss), (el, es)) in served.iter().zip(&expected) {
        assert_eq!(sl, el);
        assert_eq!(ss.to_bits(), es.to_bits());
    }
    assert!(net.stats().overloaded >= 1);
    assert_eq!(net.stats().admitted, 1);
    net.shutdown();
}

/// Many clients hammering a tiny admission queue: sheds happen (typed),
/// retried requests all eventually succeed, and **every** success is
/// bit-identical to the solo reference. No mutations run, so version 0
/// serves everything and the reference is fixed.
#[test]
fn saturating_clients_get_typed_sheds_and_bit_identical_answers() {
    const CLIENTS: usize = 8;
    const QUERIES_PER_CLIENT: usize = 40;
    let (server, net) = start_stack(
        ServerConfig {
            max_batch: 4,
            max_wait_us: 2_000,
            threads: 1,
            top_k: 3,
            shards: 2,
            routed: None,
            publish_every: 1,
        },
        NetConfig {
            admission_capacity: 2,
            ..NetConfig::default()
        },
    );
    let addr = net.local_addr();
    let snapshot = server.snapshot();
    let pool = random_rows(16, 7);
    let expected: Vec<_> = pool.iter().map(|q| snapshot.solo_topk(q, 3)).collect();

    let sheds: u64 = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            let pool = &pool;
            let expected = &expected;
            handles.push(scope.spawn(move || {
                let mut client =
                    NetClient::connect(addr, ClientConfig::default()).expect("client connects");
                let mut sheds = 0u64;
                for i in 0..QUERIES_PER_CLIENT {
                    let pick = (c * QUERIES_PER_CLIENT + i) % pool.len();
                    loop {
                        match client.query(&pool[pick], None) {
                            Ok((version, served)) => {
                                assert_eq!(version, 0, "no mutations were published");
                                assert_eq!(served.len(), expected[pick].len());
                                for ((sl, ss), (el, es)) in served.iter().zip(&expected[pick]) {
                                    assert_eq!(sl, el);
                                    assert_eq!(ss.to_bits(), es.to_bits());
                                }
                                break;
                            }
                            Err(e) if e.is_rejection(wire::code::OVERLOADED) => {
                                sheds += 1;
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => panic!("only overloaded rejections are expected: {e}"),
                        }
                    }
                }
                sheds
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum()
    });

    let stats = net.stats();
    assert_eq!(
        stats.admitted,
        (CLIENTS * QUERIES_PER_CLIENT) as u64,
        "every query was eventually admitted and answered"
    );
    assert_eq!(stats.overloaded, sheds, "server counted what clients saw");
    assert!(
        sheds > 0,
        "8 clients against a 2-slot queue must shed at least once"
    );
    net.shutdown();
}

/// Drain with open, actively-firing sockets: `shutdown()` must return
/// (no deadlock with handler threads mid-request), every client thread
/// must return, and post-drain requests are typed `draining` rejections
/// or closed sockets — never hangs, never served.
#[test]
fn drain_with_open_sockets_does_not_deadlock() {
    const CLIENTS: usize = 6;
    let (server, net) = start_stack(
        ServerConfig {
            max_batch: 8,
            max_wait_us: 1_000,
            threads: 1,
            top_k: 3,
            shards: 2,
            routed: None,
            publish_every: 1,
        },
        NetConfig {
            admission_capacity: 2,
            ..NetConfig::default()
        },
    );
    let addr = net.local_addr();
    let snapshot = server.snapshot();
    let stop = AtomicBool::new(false);
    let q = random_rows(1, 9).pop().expect("one row");
    let expected = snapshot.solo_topk(&q, 3);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..CLIENTS {
            let stop = &stop;
            let q = &q;
            let expected = &expected;
            handles.push(scope.spawn(move || {
                let mut client =
                    NetClient::connect(addr, ClientConfig::default()).expect("client connects");
                let mut saw_draining = false;
                while !stop.load(Ordering::Acquire) {
                    match client.query(q, None) {
                        Ok((version, served)) => {
                            assert_eq!(version, 0);
                            for ((sl, ss), (el, es)) in served.iter().zip(expected) {
                                assert_eq!(sl, el);
                                assert_eq!(ss.to_bits(), es.to_bits());
                            }
                        }
                        Err(e) if e.is_rejection(wire::code::OVERLOADED) => {}
                        Err(e) if e.is_rejection(wire::code::DRAINING) => {
                            saw_draining = true;
                            break;
                        }
                        // The drained server closed the socket under us.
                        Err(NetError::Io(_) | NetError::Protocol(_) | NetError::Frame(_)) => break,
                        Err(e) => panic!("unexpected failure: {e}"),
                    }
                }
                saw_draining
            }));
        }
        // Let the clients fire for a moment, then drain under load.
        std::thread::sleep(Duration::from_millis(300));
        net.shutdown();
        stop.store(true, Ordering::Release);
        // The liveness assertion: every client thread comes back.
        for handle in handles {
            let _ = handle.join().expect("client thread returns");
        }
    });
    // The query server itself is untouched by the front-end drain.
    assert!(server.query(&q).is_ok());
}
