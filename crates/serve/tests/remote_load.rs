//! `zsc_serve --net-addr host:port` end-to-end: the load generator runs
//! against an **already-running** front-end it did not stand up, and —
//! with no local model to score against — reports the bit-identity
//! cross-check as skipped instead of silently claiming it passed.

use dataset::AttributeSchema;
use hdc_zsc::{ModelConfig, ZscModel};
use serve::net::{NetConfig, NetServer};
use serve::{QueryServer, ServerConfig};
use std::process::Command;
use std::sync::Arc;
use tensor::Matrix;

const FEATURE_DIM: usize = 24;

#[test]
fn net_addr_drives_a_remote_server_and_reports_the_skipped_cross_check() {
    let schema = AttributeSchema::cub200();
    let model = ZscModel::new(&ModelConfig::tiny().with_seed(11), &schema, FEATURE_DIM);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let class_attributes = Matrix::random_uniform(9, 312, 0.5, &mut rng).map(f32::abs);
    let labels: Vec<String> = (0..9).map(|c| format!("class{c}")).collect();
    let server = Arc::new(
        QueryServer::start(
            model,
            labels,
            &class_attributes,
            ServerConfig {
                max_batch: 16,
                max_wait_us: 500,
                threads: 1,
                top_k: 4,
                shards: 2,
                routed: None,
                publish_every: 1,
            },
        )
        .expect("server starts"),
    );
    let net = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&server),
        &schema,
        NetConfig::default(),
    )
    .expect("front-end binds");
    let addr = net.local_addr().to_string();

    let output = Command::new(env!("CARGO_BIN_EXE_zsc_serve"))
        .args([
            "--net-addr",
            &addr,
            "--net-qps",
            "500",
            "--net-clients",
            "2",
            "--net-requests",
            "40",
            "--json",
        ])
        .output()
        .expect("zsc_serve spawns");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "zsc_serve --net-addr failed:\n{stderr}"
    );
    assert!(
        stdout.contains("\"bit_identity\": \"skipped\""),
        "remote mode must report the skipped cross-check in JSON:\n{stdout}"
    );
    assert!(
        stderr.contains("bit-identity cross-check SKIPPED"),
        "remote mode must report the skipped cross-check in the log:\n{stderr}"
    );
    // The remote block reflects what the welcome frame declared.
    assert!(stdout.contains("\"classes\": 9"), "{stdout}");
    // Every generated request was either answered or typed-shed; the
    // front-end saw real traffic from the external process.
    assert!(net.stats().requests >= 40, "front-end saw the load");

    net.shutdown();
}
