//! The zero-copy serving contract: the query/dispatch hot path performs
//! **zero model deep-copies** — every snapshot published by class mutations
//! shares the one `FrozenModel` allocation the server started with, pinned
//! by pointer-identity (`FrozenModel::ptr_eq`) and `Arc::strong_count`
//! probes while traffic and registrations run concurrently.
//!
//! What each probe establishes:
//!
//! * **Pointer identity across mutations** — `register_class` /
//!   `update_class` / `remove_class` publish snapshots whose model handle
//!   points at the *same allocation* as version 0's: the control plane
//!   encodes new classes through the shared model instead of keeping a
//!   private copy.
//! * **Bounded strong count under load** — the number of live handles on
//!   the model allocation stays bounded by the live-snapshot count (plus the
//!   probes themselves) no matter how many queries are dispatched: the
//!   dispatcher clones the *snapshot* `Arc` per coalesced batch, never the
//!   model, and `solo_topk` borrows rather than clones.
//! * **Swap is the only replacement** — `swap_model` is the one operation
//!   that may introduce a new allocation, and after it the same invariants
//!   hold for the new pointer.

use dataset::AttributeSchema;
use hdc_zsc::{FrozenModel, ModelConfig, ZscModel};
use serve::{QueryServer, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use tensor::Matrix;

const FEATURE_DIM: usize = 24;
const CALLERS: usize = 4;
const QUERIES_PER_CALLER: usize = 50;
const MUTATIONS: usize = 24;

#[test]
fn query_and_dispatch_path_never_deep_copies_the_model() {
    let schema = AttributeSchema::cub200();
    let model = ZscModel::new(&ModelConfig::tiny().with_seed(41), &schema, FEATURE_DIM);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(43);
    let class_attributes = Matrix::random_uniform(6, 312, 0.5, &mut rng).map(f32::abs);
    let labels: Vec<String> = (0..6).map(|c| format!("base{c}")).collect();

    // Freeze up front and keep our own probe handle on the allocation.
    let frozen: FrozenModel = model.into();
    let probe = frozen.clone();
    let server = QueryServer::start(
        frozen,
        labels,
        &class_attributes,
        ServerConfig {
            max_batch: 8,
            max_wait_us: 100,
            threads: 2,
            top_k: 3,
            shards: 3,
            routed: None,
            publish_every: 1,
        },
    )
    .expect("server starts");

    let baseline = server.snapshot();
    assert!(
        baseline.model().ptr_eq(&probe),
        "the server must serve the exact allocation it was handed"
    );
    // Live handles right now: our probe + the v0 snapshot (one slot handle,
    // plus our `baseline` Arc shares that snapshot, not a new model handle).
    let idle_count = probe.strong_count();
    assert!(
        idle_count <= 2,
        "idle server should hold at most one model handle (saw {idle_count})"
    );

    let queries: Vec<Vec<f32>> = (0..CALLERS * QUERIES_PER_CALLER)
        .map(|_| {
            Matrix::random_uniform(1, FEATURE_DIM, 1.0, &mut rng)
                .row(0)
                .to_vec()
        })
        .collect();
    let mutation_attrs: Vec<Vec<f32>> = (0..MUTATIONS)
        .map(|_| {
            Matrix::random_uniform(1, 312, 0.5, &mut rng)
                .map(f32::abs)
                .row(0)
                .to_vec()
        })
        .collect();

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Traffic threads: every response's snapshot must share the one
        // allocation; solo re-scoring borrows it too.
        for chunk in queries.chunks(QUERIES_PER_CALLER) {
            let (server, probe, done) = (&server, &probe, &done);
            scope.spawn(move || {
                for features in chunk {
                    let top = server.query(features).expect("query served");
                    assert!(!top.is_empty());
                    let snapshot = server.snapshot();
                    assert!(
                        snapshot.model().ptr_eq(probe),
                        "a mutation must never re-allocate the model"
                    );
                    // Strong count stays bounded: probe + at most a couple of
                    // live snapshots (current + ones still held by the
                    // dispatcher or this loop). A deep-copy-free path cannot
                    // exceed a small constant here; the old clone-per-dispatch
                    // design held clones instead and would fail the ptr_eq
                    // probe above outright.
                    assert!(
                        probe.strong_count() <= 4 + MUTATIONS,
                        "unexpected model-handle growth: {}",
                        probe.strong_count()
                    );
                }
                done.store(true, Ordering::SeqCst);
            });
        }
        // Mutation thread: interleave register/update/remove while traffic
        // runs; every published snapshot must share the allocation.
        let (server, probe) = (&server, &probe);
        scope.spawn(move || {
            for (m, attrs) in mutation_attrs.iter().enumerate() {
                let snapshot = match m % 3 {
                    0 => server
                        .register_class(format!("hot{m}"), attrs)
                        .expect("registers"),
                    1 => server
                        .update_class(&format!("hot{}", m.saturating_sub(1)), attrs)
                        .or_else(|_| server.register_class(format!("hot{m}-u"), attrs))
                        .expect("re-points"),
                    _ => match server.remove_class(&format!("hot{}", m.saturating_sub(2))) {
                        Ok(snapshot) => snapshot,
                        Err(_) => server
                            .register_class(format!("hot{m}-b"), attrs)
                            .expect("fallback registers"),
                    },
                };
                assert!(
                    snapshot.model().ptr_eq(probe),
                    "mutation {m} published a snapshot with a different model allocation"
                );
                std::thread::yield_now();
            }
        });
    });
    assert!(done.load(Ordering::SeqCst));

    // Quiesced: the allocation count returns to the idle baseline — probe +
    // the current snapshot. Nothing leaked a model handle. (The dispatcher
    // drops its per-batch snapshot as it re-enters the wait loop, so give it
    // a moment to park.)
    drop(baseline);
    let mut settled = probe.strong_count();
    for _ in 0..200 {
        if settled <= 2 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        settled = probe.strong_count();
    }
    assert!(
        settled <= 2,
        "handles must settle back to probe + current snapshot (saw {settled})"
    );

    // `solo_topk` verifies responses without cloning: the strong count is
    // unchanged across many calls.
    let snapshot = server.snapshot();
    let before = probe.strong_count();
    for features in queries.iter().take(32) {
        let _ = snapshot.solo_topk(features, 3);
    }
    assert_eq!(
        probe.strong_count(),
        before,
        "solo_topk must borrow the frozen model, not clone it"
    );

    // `swap_model` is the only operation allowed to change the allocation.
    let schema = AttributeSchema::cub200();
    let replacement = ZscModel::new(&ModelConfig::tiny().with_seed(57), &schema, FEATURE_DIM);
    let swapped = server
        .swap_model(
            replacement,
            (0..6).map(|c| format!("base{c}")).collect(),
            &class_attributes,
        )
        .expect("swaps");
    assert!(
        !swapped.model().ptr_eq(&probe),
        "swap_model must introduce the new allocation"
    );
    let (version, top) = server.query_traced(&queries[0]).expect("query served");
    assert_eq!(version, swapped.version());
    assert_eq!(top, swapped.solo_topk(&queries[0], 3));
}
