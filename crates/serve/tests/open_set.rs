//! Open-set serving tests: the calibrated rejection threshold as a live,
//! versioned control.
//!
//! Pins the four contracts the threshold verb adds to the serving layer:
//! a threshold set **over the wire** applies atomically mid-traffic (every
//! response's verdict presence matches the snapshot version that served
//! it), verdicts are **bit-consistent** with recomputing over
//! [`serve::ModelSnapshot::solo_topk`], clearing the threshold restores
//! verdict-free serving, and a durable server **recovers** its calibrated
//! threshold bit-exactly across a kill → WAL-replay cycle (including
//! through a compaction base).

use dataset::AttributeSchema;
use hdc_zsc::{Checkpoint, ModelConfig, SimilarityCalibration, ZscModel};
use serve::net::{ClientConfig, NetClient, NetConfig, NetServer};
use serve::{DurabilityConfig, QueryServer, ServeError, ServerConfig, SyncPolicy, Verdict};
use std::path::PathBuf;
use std::sync::Arc;
use tensor::Matrix;

const FEATURE_DIM: usize = 24;

fn fixture() -> (ZscModel, Vec<String>, Matrix, AttributeSchema) {
    let schema = AttributeSchema::cub200();
    let model = ZscModel::new(&ModelConfig::tiny().with_seed(11), &schema, FEATURE_DIM);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let class_attributes = Matrix::random_uniform(9, 312, 0.5, &mut rng).map(f32::abs);
    let labels: Vec<String> = (0..9).map(|c| format!("class{c}")).collect();
    (model, labels, class_attributes, schema)
}

fn random_rows(count: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            Matrix::random_uniform(1, FEATURE_DIM, 1.0, &mut rng)
                .row(0)
                .to_vec()
        })
        .collect()
}

/// The next representable `f32` above `sim` — the tightest threshold that
/// makes `sim` fall strictly below it.
fn next_above(sim: f32) -> f32 {
    assert!(sim.is_finite());
    if sim == 0.0 {
        f32::MIN_POSITIVE
    } else if sim > 0.0 {
        f32::from_bits(sim.to_bits() + 1)
    } else {
        f32::from_bits(sim.to_bits() - 1)
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zsc-open-set-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The full threshold lifecycle over the wire: no verdict before
/// calibration, `known` for a tie with the threshold (the rule is strict
/// less), `unknown` one ulp above the query's own similarity, and no
/// verdict again after the clear — each transition a versioned snapshot
/// publication.
#[test]
fn wire_threshold_lifecycle_drives_verdicts() {
    let (model, labels, class_attributes, schema) = fixture();
    let server = Arc::new(
        QueryServer::start(model, labels, &class_attributes, ServerConfig::default())
            .expect("server starts"),
    );
    let net = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&server),
        &schema,
        NetConfig::default(),
    )
    .expect("front-end binds");
    let mut client =
        NetClient::connect(net.local_addr(), ClientConfig::default()).expect("client connects");
    let q = &random_rows(1, 23)[0];

    let (version, served, verdict) = client.query_with_verdict(q, None).expect("query served");
    assert_eq!(version, 0);
    assert_eq!(verdict, None, "no threshold, no verdict");
    let top1 = served.first().expect("nine classes are registered").1;

    // A threshold equal to the query's own top-1 similarity: the tie
    // survives the strict-less rule.
    let set_version = client
        .set_threshold(Some(top1))
        .expect("threshold set over the wire");
    assert_eq!(set_version, 1);
    assert_eq!(
        server.snapshot().threshold().map(f32::to_bits),
        Some(top1.to_bits()),
        "threshold crossed the wire bit-exactly"
    );
    let (version, tied, verdict) = client.query_with_verdict(q, None).expect("query served");
    assert_eq!(version, 1);
    assert_eq!(verdict, Some(Verdict::Known));
    assert_eq!(tied[0].1.to_bits(), top1.to_bits());

    // One ulp above: the same query now falls strictly below.
    let set_version = client
        .set_threshold(Some(next_above(top1)))
        .expect("tighter threshold set");
    assert_eq!(set_version, 2);
    let (version, _, verdict) = client.query_with_verdict(q, None).expect("query served");
    assert_eq!(version, 2);
    assert_eq!(verdict, Some(Verdict::Unknown));

    // `k` narrows the response but cannot change the top-1 verdict.
    let (_, narrowed, verdict) = client
        .query_with_verdict(q, Some(1))
        .expect("narrowed query served");
    assert_eq!(narrowed.len(), 1);
    assert_eq!(verdict, Some(Verdict::Unknown));

    // Clearing restores verdict-free serving.
    let clear_version = client.set_threshold(None).expect("threshold cleared");
    assert_eq!(clear_version, 3);
    let (version, cleared, verdict) = client.query_with_verdict(q, None).expect("query served");
    assert_eq!(version, 3);
    assert_eq!(verdict, None);
    assert_eq!(cleared[0].1.to_bits(), top1.to_bits());

    // Non-finite thresholds are typed rejections, nothing published.
    let err = client
        .set_threshold(Some(f32::NAN))
        .expect_err("NaN threshold is rejected");
    assert!(matches!(
        err,
        serve::net::NetError::Rejected { ref code, .. } if code == "invalid_config"
    ));
    assert_eq!(server.snapshot().version(), 3);
    net.shutdown();
}

/// Every served verdict is bit-consistent with recomputing it from
/// [`serve::ModelSnapshot::solo_topk`] on the serving snapshot — and a
/// mid-range threshold splits a random query batch into both verdicts.
#[test]
fn verdicts_are_bit_consistent_with_solo_recomputation() {
    let (model, labels, class_attributes, _) = fixture();
    let server = QueryServer::start(model, labels, &class_attributes, ServerConfig::default())
        .expect("server starts");
    let queries = random_rows(32, 59);

    // Calibrate at runtime: a threshold strictly between two observed
    // top-1 similarities guarantees both verdicts occur, whatever exact
    // values this model produces.
    let mut sims: Vec<f32> = queries
        .iter()
        .map(|q| server.query(q).expect("uncalibrated query")[0].1)
        .collect();
    sims.sort_by(f32::total_cmp);
    let threshold = sims[sims.len() / 2];
    assert!(
        sims[0] < threshold && threshold <= sims[sims.len() - 1],
        "fixture similarities must straddle the median"
    );
    server.set_threshold(threshold).expect("threshold set");

    let snapshot = server.snapshot();
    let mut known = 0usize;
    let mut unknown = 0usize;
    for q in &queries {
        let (version, served, verdict) = server.query_with_verdict(q).expect("query served");
        assert_eq!(version, snapshot.version());
        let solo = snapshot.solo_topk(q, ServerConfig::default().top_k);
        let served_bits: Vec<(&str, u32)> = served
            .iter()
            .map(|(l, s)| (l.as_str(), s.to_bits()))
            .collect();
        let solo_bits: Vec<(&str, u32)> = solo
            .iter()
            .map(|(l, s)| (l.as_str(), s.to_bits()))
            .collect();
        assert_eq!(served_bits, solo_bits, "served top-k diverged from solo");
        assert_eq!(
            verdict,
            snapshot.verdict(&solo),
            "served verdict diverged from solo recomputation"
        );
        match verdict.expect("threshold is set") {
            Verdict::Known => known += 1,
            Verdict::Unknown => unknown += 1,
        }
    }
    assert!(known > 0, "median threshold must leave known queries");
    assert!(unknown > 0, "median threshold must reject some queries");
}

/// Mid-traffic atomicity, version-traced over the wire: while reader
/// connections hammer queries, the threshold is set and then cleared; every
/// response must carry a verdict exactly when the version that served it is
/// the calibrated one — never a verdict from a version that had no
/// threshold, never a missing verdict from the calibrated version.
#[test]
fn wire_threshold_applies_atomically_mid_traffic() {
    let (model, labels, class_attributes, schema) = fixture();
    let server = Arc::new(
        QueryServer::start(model, labels, &class_attributes, ServerConfig::default())
            .expect("server starts"),
    );
    let net = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&server),
        &schema,
        NetConfig::default(),
    )
    .expect("front-end binds");
    let queries = random_rows(8, 101);

    let observed: Vec<(u64, bool)> = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..3)
            .map(|r| {
                let mut client = NetClient::connect(net.local_addr(), ClientConfig::default())
                    .expect("reader connects");
                let queries = &queries;
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    for round in 0..30 {
                        let q = &queries[(r * 7 + round) % queries.len()];
                        let (version, _, verdict) =
                            client.query_with_verdict(q, None).expect("query served");
                        seen.push((version, verdict.is_some()));
                    }
                    seen
                })
            })
            .collect();
        let mut writer =
            NetClient::connect(net.local_addr(), ClientConfig::default()).expect("writer connects");
        std::thread::sleep(std::time::Duration::from_millis(5));
        let set_version = writer.set_threshold(Some(0.0)).expect("threshold set");
        assert_eq!(set_version, 1);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let clear_version = writer.set_threshold(None).expect("threshold cleared");
        assert_eq!(clear_version, 2);
        readers
            .into_iter()
            .flat_map(|handle| handle.join().expect("reader thread"))
            .collect()
    });
    for (version, has_verdict) in observed {
        assert_eq!(
            has_verdict,
            version == 1,
            "version {version} must carry a verdict iff it is the calibrated snapshot"
        );
    }
    net.shutdown();
}

/// Kill → recover preserves the calibrated threshold bit-exactly: from the
/// WAL record, from a compaction base that folded it in, and — after a
/// logged clear — as the absence of a threshold.
#[test]
fn recovery_preserves_the_calibrated_threshold() {
    let (model, labels, class_attributes, schema) = fixture();
    let dir = temp_dir("recover");
    let config = ServerConfig::default();
    let durability = || DurabilityConfig {
        dir: dir.clone(),
        sync: SyncPolicy::Always,
        compact_every: 0,
    };
    let threshold = 0.087_5f32;
    let extra_attr = vec![0.5; 312];
    {
        let server = QueryServer::start_durable(
            model,
            labels,
            &class_attributes,
            &schema,
            config,
            durability(),
        )
        .expect("durable server starts");
        server
            .register_class("extra", &extra_attr)
            .expect("registers");
        server.set_threshold(threshold).expect("threshold set");
        // Dropped without compaction: recovery must replay the threshold
        // from its WAL record.
    }
    let (server, report) =
        QueryServer::recover(&schema, config, durability()).expect("first recovery");
    assert_eq!(report.snapshot_version, 2);
    assert_eq!(report.replayed_records, 2);
    assert_eq!(
        server.snapshot().threshold().map(f32::to_bits),
        Some(threshold.to_bits()),
        "threshold replayed from the WAL"
    );
    let q = &random_rows(1, 3)[0];
    let (_, served, verdict) = server.query_with_verdict(q).expect("query served");
    assert_eq!(verdict, server.snapshot().verdict(&served));

    // Fold the threshold into a compaction base, mutate past it, kill.
    assert!(server.compact().expect("compacts"));
    server.remove_class("extra").expect("removes");
    drop(server);
    let (server, report) =
        QueryServer::recover(&schema, config, durability()).expect("second recovery");
    assert_eq!(report.replayed_records, 1, "only the post-base removal");
    assert_eq!(
        server.snapshot().threshold().map(f32::to_bits),
        Some(threshold.to_bits()),
        "threshold restored from the compaction base"
    );

    // A logged clear survives the next crash too.
    server.clear_threshold().expect("threshold cleared");
    drop(server);
    let (server, _) = QueryServer::recover(&schema, config, durability()).expect("third recovery");
    assert_eq!(server.snapshot().threshold(), None);
    let (_, _, verdict) = server.query_with_verdict(q).expect("query served");
    assert_eq!(verdict, None);
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

/// A checkpoint carrying a [`SimilarityCalibration`] seeds the server's
/// threshold on [`QueryServer::from_checkpoint`]; an uncalibrated
/// checkpoint starts verdict-free, exactly as before.
#[test]
fn from_checkpoint_seeds_the_calibrated_threshold() {
    let (model, labels, class_attributes, schema) = fixture();
    let calibrated = Checkpoint::capture(&model, &schema).with_calibration(SimilarityCalibration {
        threshold: 0.031_25,
        target_false_reject: 0.1,
    });
    let plain = Checkpoint::capture(&model, &schema);
    let server = QueryServer::from_checkpoint(
        calibrated,
        &schema,
        labels.clone(),
        &class_attributes,
        ServerConfig::default(),
    )
    .expect("calibrated server starts");
    assert_eq!(
        server.snapshot().threshold().map(f32::to_bits),
        Some(0.031_25f32.to_bits())
    );
    let server = QueryServer::from_checkpoint(
        plain,
        &schema,
        labels,
        &class_attributes,
        ServerConfig::default(),
    )
    .expect("plain server starts");
    assert_eq!(server.snapshot().threshold(), None);
}

/// The in-process error path mirrors the wire one: non-finite thresholds
/// are [`ServeError::InvalidConfig`] and publish nothing.
#[test]
fn non_finite_thresholds_are_rejected() {
    let (model, labels, class_attributes, _) = fixture();
    let server = QueryServer::start(model, labels, &class_attributes, ServerConfig::default())
        .expect("server starts");
    for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
        assert!(matches!(
            server.set_threshold(bad),
            Err(ServeError::InvalidConfig(_))
        ));
    }
    assert_eq!(server.snapshot().version(), 0);
}
