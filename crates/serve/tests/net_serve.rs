//! End-to-end tests of the TCP front-end: the bit-identity contract
//! through the socket path, the full mutation vocabulary over the wire,
//! the versioned handshake, quotas, and the stats endpoint.
//!
//! Every frame type these tests exercise is documented in
//! `docs/wire-protocol.md`; the raw-socket tests double as a check that
//! the documented handshake rules are what the server actually enforces.

use dataset::AttributeSchema;
use hdc_zsc::{Checkpoint, ModelConfig, ZscModel};
use serve::net::wire::{self, Request, Response};
use serve::net::{frame, ClientConfig, NetClient, NetConfig, NetError, NetServer};
use serve::{QueryServer, ServerConfig};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use tensor::Matrix;

const FEATURE_DIM: usize = 24;

fn fixture() -> (ZscModel, Vec<String>, Matrix, AttributeSchema) {
    let schema = AttributeSchema::cub200();
    let model = ZscModel::new(&ModelConfig::tiny().with_seed(11), &schema, FEATURE_DIM);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let class_attributes = Matrix::random_uniform(9, 312, 0.5, &mut rng).map(f32::abs);
    let labels: Vec<String> = (0..9).map(|c| format!("class{c}")).collect();
    (model, labels, class_attributes, schema)
}

fn start_stack(net_config: NetConfig) -> (Arc<QueryServer>, NetServer, AttributeSchema) {
    let (model, labels, class_attributes, schema) = fixture();
    let server = Arc::new(
        QueryServer::start(
            model,
            labels,
            &class_attributes,
            ServerConfig {
                top_k: 4,
                ..ServerConfig::default()
            },
        )
        .expect("server starts"),
    );
    let net = NetServer::bind("127.0.0.1:0", Arc::clone(&server), &schema, net_config)
        .expect("front-end binds");
    (server, net, schema)
}

fn client(net: &NetServer) -> NetClient {
    NetClient::connect(net.local_addr(), ClientConfig::default()).expect("client connects")
}

fn random_rows(count: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            Matrix::random_uniform(1, FEATURE_DIM, 1.0, &mut rng)
                .row(0)
                .to_vec()
        })
        .collect()
}

/// The headline contract: responses served through the socket are
/// bit-identical to [`serve::ModelSnapshot::solo_topk`] on the snapshot
/// version each response names.
#[test]
fn socket_responses_are_bit_identical_to_solo_scoring() {
    let (server, net, _schema) = start_stack(NetConfig::default());
    let mut client = client(&net);
    let welcome = client.welcome();
    assert_eq!(welcome.protocol, wire::PROTOCOL_VERSION);
    assert_eq!(welcome.feature_dim, FEATURE_DIM as u64);
    assert_eq!(welcome.attribute_dim, 312);
    assert_eq!(welcome.snapshot_version, 0);
    assert_eq!(welcome.classes, 9);

    let snapshot = server.snapshot();
    for q in random_rows(32, 41) {
        let (version, served) = client.query(&q, None).expect("query served");
        assert_eq!(version, 0);
        let expected = snapshot.solo_topk(&q, 4);
        assert_eq!(served.len(), expected.len());
        for ((sl, ss), (el, es)) in served.iter().zip(&expected) {
            assert_eq!(sl, el);
            assert_eq!(ss.to_bits(), es.to_bits(), "similarity bits for `{sl}`");
        }
        // `k` narrows to a bit-identical prefix.
        let (_, narrowed) = client.query(&q, Some(2)).expect("narrowed query served");
        assert_eq!(narrowed.len(), 2);
        for ((sl, ss), (el, es)) in narrowed.iter().zip(&expected) {
            assert_eq!(sl, el);
            assert_eq!(ss.to_bits(), es.to_bits());
        }
    }
    net.shutdown();
}

/// The whole mutation vocabulary — register, duplicate rejection, update,
/// unknown-class rejection, remove, width rejection — works over the wire
/// with typed codes, and queries reflect each published version
/// bit-identically.
#[test]
fn mutations_over_the_wire_publish_versions() {
    let (server, net, _schema) = start_stack(NetConfig::default());
    let mut client = client(&net);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(17);
    let new_attr: Vec<f32> = Matrix::random_uniform(1, 312, 0.5, &mut rng)
        .map(f32::abs)
        .row(0)
        .to_vec();

    let version = client
        .register_class("netbird", &new_attr)
        .expect("registers over the wire");
    assert_eq!(version, 1);
    assert!(server.snapshot().memory().contains("netbird"));

    let err = client
        .register_class("netbird", &new_attr)
        .expect_err("duplicate rejected");
    assert!(err.is_rejection(wire::code::DUPLICATE_LABEL), "{err}");

    let err = client
        .update_class("missing", &new_attr)
        .expect_err("unknown class rejected");
    assert!(err.is_rejection(wire::code::UNKNOWN_CLASS), "{err}");

    let err = client
        .register_class("bad", &[1.0; 3])
        .expect_err("mis-sized row rejected");
    assert!(err.is_rejection(wire::code::ATTRIBUTE_WIDTH), "{err}");

    assert_eq!(
        client.update_class("netbird", &new_attr).expect("updates"),
        2
    );
    // Post-mutation queries name the new version and stay bit-identical.
    let snapshot = server.snapshot();
    assert_eq!(snapshot.version(), 2);
    for q in random_rows(8, 43) {
        let (version, served) = client.query(&q, None).expect("query served");
        assert_eq!(version, 2);
        let expected = snapshot.solo_topk(&q, 4);
        for ((sl, ss), (el, es)) in served.iter().zip(&expected) {
            assert_eq!(sl, el);
            assert_eq!(ss.to_bits(), es.to_bits());
        }
    }
    assert_eq!(client.remove_class("netbird").expect("removes"), 3);
    assert!(!server.snapshot().memory().contains("netbird"));
    net.shutdown();
}

/// A full model swap shipped as a checkpoint JSON document through the
/// socket: the new model serves the next queries, bit-identical to solo
/// scoring against the post-swap snapshot.
#[test]
fn swap_model_over_the_wire_replaces_serving_state() {
    let (server, net, schema) = start_stack(NetConfig::default());
    let mut client = client(&net);
    let (_, labels, class_attributes, _) = fixture();
    let new_model = ZscModel::new(&ModelConfig::tiny().with_seed(77), &schema, FEATURE_DIM);
    let checkpoint_json = Checkpoint::capture(&new_model, &schema).to_json();
    let rows: Vec<Vec<f32>> = (0..class_attributes.rows())
        .map(|r| class_attributes.row(r).to_vec())
        .collect();

    let version = client
        .swap_model(checkpoint_json, labels, rows)
        .expect("swaps over the wire");
    assert_eq!(version, 1);
    let snapshot = server.snapshot();
    assert_eq!(snapshot.version(), 1);
    for q in random_rows(8, 47) {
        let (served_version, served) = client.query(&q, None).expect("query served");
        assert_eq!(served_version, 1);
        let expected = snapshot.solo_topk(&q, 4);
        for ((sl, ss), (el, es)) in served.iter().zip(&expected) {
            assert_eq!(sl, el);
            assert_eq!(ss.to_bits(), es.to_bits());
        }
    }
    // Garbage checkpoints are a typed `checkpoint` rejection, and the
    // connection survives to serve more requests.
    let err = client
        .swap_model(
            "{\"not\":\"a checkpoint\"}",
            vec!["x".to_string()],
            vec![vec![1.0; 312]],
        )
        .expect_err("garbage checkpoint rejected");
    assert!(err.is_rejection(wire::code::CHECKPOINT), "{err}");
    assert!(client.stats().is_ok(), "connection still usable");
    net.shutdown();
}

/// Handshake rules, pinned over a raw socket: a version mismatch is a
/// typed `unsupported_protocol` rejection naming the supported version,
/// and a non-hello opener is `bad_request`.
#[test]
fn handshake_version_mismatch_is_rejected() {
    let (_server, net, _schema) = start_stack(NetConfig::default());
    let budget = Duration::from_secs(5);

    let mut socket = TcpStream::connect(net.local_addr()).expect("connects");
    socket
        .set_read_timeout(Some(Duration::from_millis(50)))
        .expect("read timeout");
    frame::write_frame(&mut socket, &Request::Hello { protocol: 99 }.encode()).expect("writes");
    let payload = loop {
        match frame::read_frame(&mut socket, budget).expect("reads") {
            frame::ReadOutcome::Frame(payload) => break payload,
            frame::ReadOutcome::Idle => {}
            frame::ReadOutcome::Closed => panic!("closed before answering"),
        }
    };
    match Response::decode(&payload).expect("decodes") {
        Response::Error { code, message } => {
            assert_eq!(code, wire::code::UNSUPPORTED_PROTOCOL);
            assert!(
                message.contains('1'),
                "names the supported version: {message}"
            );
        }
        other => panic!("expected an error, got {other:?}"),
    }

    let mut socket = TcpStream::connect(net.local_addr()).expect("connects");
    socket
        .set_read_timeout(Some(Duration::from_millis(50)))
        .expect("read timeout");
    frame::write_frame(&mut socket, &Request::Stats.encode()).expect("writes");
    let payload = loop {
        match frame::read_frame(&mut socket, budget).expect("reads") {
            frame::ReadOutcome::Frame(payload) => break payload,
            frame::ReadOutcome::Idle => {}
            frame::ReadOutcome::Closed => panic!("closed before answering"),
        }
    };
    match Response::decode(&payload).expect("decodes") {
        Response::Error { code, .. } => assert_eq!(code, wire::code::BAD_REQUEST),
        other => panic!("expected an error, got {other:?}"),
    }
    net.shutdown();
}

/// A connection quota closes the connection with a typed
/// `quota_exhausted` rejection after exactly the allowed number of
/// requests.
#[test]
fn connection_quota_is_enforced() {
    let (_server, net, _schema) = start_stack(NetConfig {
        connection_quota: 3,
        ..NetConfig::default()
    });
    let mut client = client(&net);
    let q = vec![0.5; FEATURE_DIM];
    for _ in 0..3 {
        client.query(&q, None).expect("within quota");
    }
    let err = client.query(&q, None).expect_err("over quota");
    assert!(err.is_rejection(wire::code::QUOTA_EXHAUSTED), "{err}");
    // The server closed the connection; the next call cannot succeed.
    assert!(client.query(&q, None).is_err());
    // A fresh connection gets a fresh quota.
    let mut fresh = NetClient::connect(net.local_addr(), ClientConfig::default())
        .expect("fresh client connects");
    fresh.query(&q, None).expect("fresh quota");
    net.shutdown();
}

/// The stats endpoint reports both the dispatcher's counters and the
/// front-end's own, consistent with what this connection just did.
#[test]
fn stats_endpoint_reports_both_planes() {
    let (_server, net, _schema) = start_stack(NetConfig::default());
    let mut client = client(&net);
    let q = vec![0.5; FEATURE_DIM];
    for _ in 0..5 {
        client.query(&q, None).expect("query served");
    }
    let stats = client.stats().expect("stats served");
    assert_eq!(stats.queries, 5);
    assert_eq!(stats.net_admitted, 5);
    assert_eq!(stats.net_overloaded, 0);
    assert!(stats.net_requests >= 6, "5 queries + this stats call");
    assert_eq!(stats.net_connections, 1);
    assert_eq!(stats.classes, 9);
    assert_eq!(stats.snapshot_version, 0);
    assert!(!stats.draining);
    let net_stats = net.stats();
    assert_eq!(net_stats.admitted, 5);
    assert_eq!(net_stats.connections, 1);
    net.shutdown();
}

/// After `shutdown`, new connections are not served and the listener
/// port is released; a request racing the drain gets a typed `draining`
/// rejection or a closed connection, never a hang.
#[test]
fn shutdown_drains_and_rejects_late_requests() {
    let (_server, net, _schema) = start_stack(NetConfig::default());
    let mut client = client(&net);
    let addr = net.local_addr();
    client
        .query(&[0.5; FEATURE_DIM], None)
        .expect("pre-drain query");
    net.shutdown();
    // The established connection is drained: the next request is either
    // answered with `draining` or the socket is already closed.
    match client.query(&[0.5; FEATURE_DIM], None) {
        Err(NetError::Rejected { code, .. }) => assert_eq!(code, wire::code::DRAINING),
        Err(_) => {}
        Ok(_) => panic!("post-drain query must not be served"),
    }
    // New connections are refused (or at best never handshaken).
    assert!(NetClient::connect(
        addr,
        ClientConfig {
            connect_timeout: Duration::from_millis(500),
            response_timeout: Duration::from_millis(500),
        }
    )
    .is_err());
}

/// Streamed observes and flushes work over the wire: versions advance only
/// at publication boundaries, unknown classes are typed rejections, the
/// stats document carries the streaming counters, and queries after the
/// stream reflect the published prototypes bit-identically.
#[test]
fn streamed_observes_over_the_wire() {
    let (model, labels, class_attributes, schema) = fixture();
    let server = Arc::new(
        QueryServer::start(
            model,
            labels,
            &class_attributes,
            ServerConfig {
                top_k: 4,
                publish_every: 3,
                ..ServerConfig::default()
            },
        )
        .expect("server starts"),
    );
    let net = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&server),
        &schema,
        NetConfig::default(),
    )
    .expect("front-end binds");
    let mut client = client(&net);
    let rows = random_rows(4, 53);

    // Below the publication boundary the version holds still…
    assert_eq!(client.observe("class1", &rows[0]).expect("observe"), 0);
    assert_eq!(client.observe("class2", &rows[1]).expect("observe"), 0);
    // …and the third observe publishes one snapshot carrying both classes.
    assert_eq!(client.observe("class1", &rows[2]).expect("observe"), 1);
    assert_eq!(server.snapshot().version(), 1);

    match client.observe("ghost", &rows[0]) {
        Err(NetError::Rejected { code, .. }) => assert_eq!(code, wire::code::UNKNOWN_CLASS),
        other => panic!("expected unknown_class rejection, got {other:?}"),
    }

    // An explicit flush publishes the partial batch; an idle flush holds.
    assert_eq!(client.observe("class3", &rows[3]).expect("observe"), 1);
    assert_eq!(client.flush().expect("flush"), 2);
    assert_eq!(client.flush().expect("idle flush"), 2);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.observes, 4);
    assert_eq!((stats.pending_classes, stats.since_publish), (0, 0));
    assert_eq!(stats.snapshot_version, 2);
    // Non-durable server: the WAL counters read zero.
    assert_eq!((stats.wal_bytes, stats.records_since_compaction), (0, 0));

    let snapshot = server.snapshot();
    for q in random_rows(8, 59) {
        let (version, served) = client.query(&q, None).expect("query served");
        assert_eq!(version, 2);
        let expected = snapshot.solo_topk(&q, 4);
        assert_eq!(served.len(), expected.len());
        for ((sl, ss), (el, es)) in served.iter().zip(&expected) {
            assert_eq!(sl, el);
            assert_eq!(ss.to_bits(), es.to_bits(), "similarity bits for `{sl}`");
        }
    }
    net.shutdown();
}
