//! Shutdown-drain stress test: stopping the server under full load must
//! leave **no query unanswered and none hanging** — every submission either
//! receives its scored response (it was admitted before the stop) or a
//! typed [`ServeError::Draining`] rejection (it arrived after). The test
//! finishing at all is the liveness half of the contract: `stop` joins the
//! dispatcher only after the queue is drained, and a worker blocked forever
//! would hang the run (CI enforces an overall timeout).

use dataset::AttributeSchema;
use hdc_zsc::{ModelConfig, ZscModel};
use serve::{QueryServer, ServeError, ServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use tensor::Matrix;

const FEATURE_DIM: usize = 24;
const WORKERS: usize = 8;

#[test]
fn stop_under_load_answers_or_cleanly_rejects_every_query() {
    let schema = AttributeSchema::cub200();
    let model = ZscModel::new(&ModelConfig::tiny().with_seed(41), &schema, FEATURE_DIM);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(43);
    let class_attributes = Matrix::random_uniform(6, 312, 0.5, &mut rng).map(f32::abs);
    let labels: Vec<String> = (0..6).map(|c| format!("class{c}")).collect();
    let server = QueryServer::start(
        model,
        labels,
        &class_attributes,
        ServerConfig {
            max_batch: 8,
            max_wait_us: 100,
            threads: 2,
            top_k: 3,
            shards: 3,
            routed: None,
            publish_every: 1,
        },
    )
    .expect("server starts");

    let answered = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let server = &server;
            let (answered, rejected) = (&answered, &rejected);
            scope.spawn(move || {
                let features = vec![0.1 + w as f32 * 0.05; FEATURE_DIM];
                // Hammer until the drain rejection arrives; every response
                // before it must be a genuine scored result.
                loop {
                    match server.query(&features) {
                        Ok(top) => {
                            assert_eq!(top.len(), 3, "worker {w} got a malformed response");
                            answered.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(ServeError::Draining) => {
                            rejected.fetch_add(1, Ordering::SeqCst);
                            break;
                        }
                        Err(other) => panic!(
                            "worker {w}: drained queries must be answered, not dropped \
                             (got {other})"
                        ),
                    }
                }
            });
        }
        // Let the workers build up real in-flight traffic, then pull the
        // plug from a thread that only holds `&self`.
        std::thread::sleep(std::time::Duration::from_millis(50));
        server.stop();
    });

    // Every worker ran until the drain rejection: one rejection each, and
    // between them a healthy amount of answered traffic.
    assert_eq!(rejected.load(Ordering::SeqCst), WORKERS as u64);
    let answered = answered.load(Ordering::SeqCst);
    assert!(answered > 0, "the stop fired before any query was served");
    // The dispatcher's own ledger agrees: nothing admitted was dropped.
    assert_eq!(server.stats().queries, answered);

    // Stopped is sticky and stop is idempotent.
    assert!(matches!(
        server.query(&[0.5; FEATURE_DIM]),
        Err(ServeError::Draining)
    ));
    server.stop();
}
