//! Write-ahead log of serve-time class mutations — the durability half of
//! the serving layer's crash-safety contract.
//!
//! Every mutation accepted by a durable
//! [`QueryServer`](crate::QueryServer) — register / update / remove /
//! swap — is appended here **before** the new snapshot is published, so the
//! log plus the latest [`CheckpointDelta`](hdc_zsc::CheckpointDelta)
//! compaction base always reconstruct the exact pre-crash
//! [`ShardedClassMemory`]: recovery loads the
//! base, replays the WAL suffix (`seq >= next_record_seq`), and serves
//! bit-identical results.
//!
//! # On-disk format
//!
//! ```text
//! ┌────────────────────────── file header (20 bytes) ─────────────────────────┐
//! │ magic "ZSCWAL1\n" (8) │ format u32 LE (=1) │ first_seq u64 LE             │
//! ├──────────────────────────── record frames ────────────────────────────────┤
//! │ len u32 LE │ crc32 u32 LE │ payload (len bytes of compact JSON)           │
//! │ len u32 LE │ crc32 u32 LE │ payload                                       │
//! │ …                                                                         │
//! └───────────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The CRC is the IEEE CRC-32 (reflected, polynomial `0xEDB88320`) of the
//! payload bytes. Payloads are compact JSON objects carrying an explicit
//! monotonically-increasing `seq`, so replay can detect reordering and the
//! compaction base can name exactly where its suffix starts. Register and
//! update records store the **packed prototype words** (not the raw
//! attributes), making replay independent of the model and bit-identical by
//! construction; swap records embed a full model checkpoint plus the
//! post-swap memory.
//!
//! # Torn tails
//!
//! A crash mid-append leaves a truncated or corrupt **final** frame. That is
//! expected and harmless: [`replay`] detects it by length or checksum,
//! reports it as [`WalReplay::torn_tail`], and ignores it — the record was
//! never acknowledged, so dropping it is correct. Corruption *before* the
//! final frame is a hard [`WalError::Corrupt`]: it means data an earlier
//! append acknowledged is gone, which recovery must not paper over.
//!
//! # Sync policy
//!
//! [`SyncPolicy::Always`] fsyncs after every record — an acknowledged
//! mutation survives an immediate power cut. [`SyncPolicy::EveryN`] batches
//! the fsync, trading a bounded window of acknowledged-but-unsynced records
//! for mutation throughput; a torn tail in that window is still detected
//! and cleanly ignored on recovery.

use engine::ShardedClassMemory;
use serde::{Serialize, Value};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL file.
const WAL_MAGIC: &[u8; 8] = b"ZSCWAL1\n";

/// Version of the on-disk WAL layout written by this build.
pub const WAL_FORMAT_VERSION: u32 = 1;

/// File-header length: magic + format version + first sequence number.
const HEADER_LEN: u64 = 8 + 4 + 8;

/// Frame-header length: payload length + payload CRC.
const FRAME_HEADER_LEN: u64 = 4 + 4;

/// Sanity cap on a single record payload (64 MiB). A length prefix past
/// this is treated as corruption rather than attempted as an allocation.
const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// File name of the log inside a WAL directory.
pub const WAL_FILE_NAME: &str = "wal.log";

/// File name of the checkpoint-delta compaction base inside a WAL
/// directory.
pub const BASE_FILE_NAME: &str = "base.json";

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

/// 256-entry table for the reflected IEEE polynomial `0xEDB88320`.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`) of `bytes` — the
/// checksum guarding every record frame.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a WAL could not be written, read, or replayed.
///
/// Marked `#[non_exhaustive]`: future layouts may add failure modes, so
/// downstream matches must keep a wildcard arm.
#[derive(Debug)]
#[must_use = "a WAL error describes why durability is compromised and should be handled"]
#[non_exhaustive]
pub enum WalError {
    /// Reading or writing the log file failed.
    Io(std::io::Error),
    /// The log is damaged before its final record — acknowledged data is
    /// missing, which recovery must not silently accept.
    Corrupt {
        /// Byte offset of the damaged frame.
        offset: u64,
        /// What was wrong with it.
        reason: String,
    },
    /// The file is not a WAL, or declares a layout this build cannot read.
    UnsupportedFormat {
        /// What the file declares (0 when the magic itself is wrong).
        found: u32,
        /// The version this build writes and reads.
        supported: u32,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O failed: {e}"),
            WalError::Corrupt { offset, reason } => {
                write!(f, "WAL corrupt at byte {offset}: {reason}")
            }
            WalError::UnsupportedFormat { found, supported } => write!(
                f,
                "unsupported WAL format {found} (this build reads {supported})"
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One logged class mutation.
///
/// Register and update carry the packed prototype words the serving model
/// produced at mutation time, so replay needs no model at all and is
/// bit-identical by construction. Swap carries everything the post-swap
/// server state depends on: the new model (as a checkpoint JSON document,
/// loaded through the fully-validating
/// [`Checkpoint`](hdc_zsc::Checkpoint) path) and the rebuilt memory.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A brand-new class was registered.
    Register {
        /// Class label.
        label: String,
        /// Packed ±1 prototype words.
        words: Vec<u64>,
    },
    /// An existing class was re-pointed at a new prototype.
    Update {
        /// Class label.
        label: String,
        /// Packed ±1 prototype words.
        words: Vec<u64>,
    },
    /// A class was removed.
    Remove {
        /// Class label.
        label: String,
    },
    /// The whole model (and with it the class memory) was hot-swapped.
    Swap {
        /// The new model as a checkpoint JSON document.
        checkpoint_json: String,
        /// The post-swap class memory.
        memory: ShardedClassMemory,
    },
    /// The open-set rejection threshold was set (or cleared) mid-traffic.
    SetThreshold {
        /// `f32::to_bits` of the new threshold; `None` clears it. Carried
        /// as raw bits so replay reproduces the exact strict-less verdict
        /// boundary the pre-crash server enforced.
        bits: Option<u32>,
    },
    /// One streamed labeled example was folded into a class's prototype
    /// accumulator (continual learning). Carries the example's packed ±1
    /// sign words **as encoded by the serving model at observe time**, so
    /// replay re-folds the exact counters with no model dependence — the
    /// same model-independence contract register/update records follow.
    Observe {
        /// Class label the example carries.
        label: String,
        /// The example's packed ±1 sign words.
        words: Vec<u64>,
    },
    /// Pending accumulated observes were explicitly published
    /// (`QueryServer::flush`). Logged so replay reproduces the exact
    /// publication boundaries — and therefore the exact snapshot-version
    /// sequence — of the pre-crash server; automatic `publish_every`
    /// boundaries are re-derived from the server configuration instead and
    /// need no record.
    Flush,
}

/// Lowercase hex, 16 digits per word — a compact, exact `u64` encoding.
fn words_to_hex(words: &[u64]) -> String {
    let mut out = String::with_capacity(words.len() * 16);
    for word in words {
        out.push_str(&format!("{word:016x}"));
    }
    out
}

fn words_from_hex(hex: &str) -> Result<Vec<u64>, String> {
    if !hex.len().is_multiple_of(16) {
        return Err(format!(
            "hex word row of length {} not a multiple of 16",
            hex.len()
        ));
    }
    hex.as_bytes()
        .chunks_exact(16)
        .map(|chunk| {
            let digits = std::str::from_utf8(chunk).map_err(|_| "non-ASCII hex".to_string())?;
            u64::from_str_radix(digits, 16).map_err(|e| format!("bad hex word `{digits}`: {e}"))
        })
        .collect()
}

impl WalOp {
    /// Renders the record payload (including its sequence number) as a
    /// JSON value.
    fn to_value(&self, seq: u64) -> Value {
        let mut entries: Vec<(String, Value)> = vec![("seq".to_string(), seq.to_value())];
        match self {
            WalOp::Register { label, words } => {
                entries.push(("op".to_string(), "register".to_string().to_value()));
                entries.push(("label".to_string(), label.to_value()));
                entries.push(("row".to_string(), words_to_hex(words).to_value()));
            }
            WalOp::Update { label, words } => {
                entries.push(("op".to_string(), "update".to_string().to_value()));
                entries.push(("label".to_string(), label.to_value()));
                entries.push(("row".to_string(), words_to_hex(words).to_value()));
            }
            WalOp::Remove { label } => {
                entries.push(("op".to_string(), "remove".to_string().to_value()));
                entries.push(("label".to_string(), label.to_value()));
            }
            WalOp::Swap {
                checkpoint_json,
                memory,
            } => {
                entries.push(("op".to_string(), "swap".to_string().to_value()));
                entries.push(("checkpoint".to_string(), checkpoint_json.to_value()));
                entries.push(("memory".to_string(), memory.to_value()));
            }
            WalOp::SetThreshold { bits } => {
                entries.push(("op".to_string(), "set_threshold".to_string().to_value()));
                entries.push(("threshold_bits".to_string(), bits.to_value()));
            }
            WalOp::Observe { label, words } => {
                entries.push(("op".to_string(), "observe".to_string().to_value()));
                entries.push(("label".to_string(), label.to_value()));
                entries.push(("row".to_string(), words_to_hex(words).to_value()));
            }
            WalOp::Flush => {
                entries.push(("op".to_string(), "flush".to_string().to_value()));
            }
        }
        Value::Object(entries)
    }

    /// Parses a record payload back into `(seq, op)`.
    fn from_value(value: &Value) -> Result<(u64, Self), String> {
        let get = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| format!("record missing `{name}`"))
        };
        let seq: u64 = serde_json::from_value(get("seq")?).map_err(|e| e.to_string())?;
        let op: String = serde_json::from_value(get("op")?).map_err(|e| e.to_string())?;
        let label = || -> Result<String, String> {
            serde_json::from_value(get("label")?).map_err(|e| e.to_string())
        };
        let row = || -> Result<Vec<u64>, String> {
            let hex: String = serde_json::from_value(get("row")?).map_err(|e| e.to_string())?;
            words_from_hex(&hex)
        };
        let op = match op.as_str() {
            "register" => WalOp::Register {
                label: label()?,
                words: row()?,
            },
            "update" => WalOp::Update {
                label: label()?,
                words: row()?,
            },
            "remove" => WalOp::Remove { label: label()? },
            "swap" => WalOp::Swap {
                checkpoint_json: serde_json::from_value(get("checkpoint")?)
                    .map_err(|e| e.to_string())?,
                memory: serde_json::from_value(get("memory")?).map_err(|e| e.to_string())?,
            },
            "set_threshold" => WalOp::SetThreshold {
                bits: serde_json::from_value(get("threshold_bits")?).map_err(|e| e.to_string())?,
            },
            "observe" => WalOp::Observe {
                label: label()?,
                words: row()?,
            },
            "flush" => WalOp::Flush,
            other => return Err(format!("unknown op `{other}`")),
        };
        Ok((seq, op))
    }
}

// ---------------------------------------------------------------------------
// Sync policy
// ---------------------------------------------------------------------------

/// When appended records are fsynced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every record: an acknowledged mutation survives an
    /// immediate power cut. The default.
    Always,
    /// fsync after every `n` appended records (`n = 0` behaves like
    /// [`SyncPolicy::Always`]). Acknowledged records inside the current
    /// batch may be lost on a crash; the resulting torn tail is detected
    /// and cleanly ignored on recovery.
    EveryN(u32),
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// One record recovered from a log.
#[derive(Debug, Clone, PartialEq)]
pub struct WalEntry {
    /// The record's sequence number.
    pub seq: u64,
    /// The mutation it logs.
    pub op: WalOp,
    /// Byte offset just past this record's frame — the truncation point
    /// that keeps every record up to and including this one.
    pub end_offset: u64,
}

/// Everything [`replay`] recovered from a log file.
#[derive(Debug)]
#[must_use = "a replay carries the recovered records and the torn-tail verdict"]
pub struct WalReplay {
    /// Sequence number of the first record this file holds (from the
    /// header; records before it live in the compaction base).
    pub first_seq: u64,
    /// The valid records, in sequence order.
    pub entries: Vec<WalEntry>,
    /// Why the final frame was discarded, when a torn tail was detected
    /// (`None` for a clean log).
    pub torn_tail: Option<String>,
    /// Byte offset just past the last valid record — where appending
    /// resumes after the torn tail (if any) is truncated away.
    pub end_offset: u64,
}

impl WalReplay {
    /// The sequence number the next appended record will carry.
    pub fn next_seq(&self) -> u64 {
        self.entries.last().map_or(self.first_seq, |e| e.seq + 1)
    }
}

/// Reads and verifies every record of the log at `path`.
///
/// A truncated or checksum-corrupt **final** frame is reported as a torn
/// tail and ignored (see the module docs for why that is the correct
/// contract); damage before the final frame is a hard
/// [`WalError::Corrupt`], as is a sequence-number discontinuity.
///
/// # Errors
///
/// [`WalError::Io`] on read failures, [`WalError::UnsupportedFormat`] for
/// non-WAL files, [`WalError::Corrupt`] for mid-log damage.
pub fn replay(path: impl AsRef<Path>) -> Result<WalReplay, WalError> {
    let bytes = std::fs::read(path.as_ref())?;
    if bytes.len() < 8 || &bytes[..8] != WAL_MAGIC {
        return Err(WalError::UnsupportedFormat {
            found: 0,
            supported: WAL_FORMAT_VERSION,
        });
    }
    if bytes.len() < HEADER_LEN as usize {
        return Err(WalError::Corrupt {
            offset: 8,
            reason: "file ends inside the header".to_string(),
        });
    }
    let format = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if format != WAL_FORMAT_VERSION {
        return Err(WalError::UnsupportedFormat {
            found: format,
            supported: WAL_FORMAT_VERSION,
        });
    }
    let first_seq = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));

    let mut entries = Vec::new();
    let mut torn_tail = None;
    let mut offset = HEADER_LEN as usize;
    let mut expected_seq = first_seq;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        // A frame that does not fit in the remaining bytes can only be the
        // torn final append — everything before it already verified.
        if remaining < FRAME_HEADER_LEN as usize {
            torn_tail = Some(format!(
                "{remaining} trailing bytes are shorter than a frame header"
            ));
            break;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            return Err(WalError::Corrupt {
                offset: offset as u64,
                reason: format!("frame declares an absurd payload of {len} bytes"),
            });
        }
        let body_start = offset + FRAME_HEADER_LEN as usize;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            torn_tail = Some(format!(
                "final frame declares {len} payload bytes but only {} remain",
                bytes.len() - body_start
            ));
            break;
        }
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != crc {
            if body_end == bytes.len() {
                torn_tail = Some("final frame fails its checksum".to_string());
                break;
            }
            return Err(WalError::Corrupt {
                offset: offset as u64,
                reason: "frame fails its checksum before the end of the log".to_string(),
            });
        }
        let text = std::str::from_utf8(payload).map_err(|_| WalError::Corrupt {
            offset: offset as u64,
            reason: "payload is not UTF-8 despite a valid checksum".to_string(),
        })?;
        let value = serde_json::parse_value(text).map_err(|e| WalError::Corrupt {
            offset: offset as u64,
            reason: format!("payload is not valid JSON: {e}"),
        })?;
        let (seq, op) = WalOp::from_value(&value).map_err(|reason| WalError::Corrupt {
            offset: offset as u64,
            reason,
        })?;
        if seq != expected_seq {
            return Err(WalError::Corrupt {
                offset: offset as u64,
                reason: format!("record carries seq {seq}, expected {expected_seq}"),
            });
        }
        expected_seq += 1;
        entries.push(WalEntry {
            seq,
            op,
            end_offset: body_end as u64,
        });
        offset = body_end;
    }
    let end_offset = entries.last().map_or(HEADER_LEN, |e| e.end_offset);
    Ok(WalReplay {
        first_seq,
        entries,
        torn_tail,
        end_offset,
    })
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// An append-only writer over one WAL file; see the module docs for the
/// format and durability contract.
#[derive(Debug)]
pub struct WriteAheadLog {
    file: File,
    path: PathBuf,
    next_seq: u64,
    policy: SyncPolicy,
    unsynced: u32,
}

impl WriteAheadLog {
    /// Creates a fresh log at `path` (truncating any existing file), with
    /// records numbered from `0`.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the file cannot be created or synced.
    pub fn create(path: impl AsRef<Path>, policy: SyncPolicy) -> Result<Self, WalError> {
        Self::create_with_first_seq(path, policy, 0)
    }

    /// Creates a fresh log whose first record will carry `first_seq` — the
    /// rotation primitive: after compaction folds records `< first_seq`
    /// into the base, the new log starts exactly where the base ends.
    ///
    /// The new file is written beside `path` and atomically `rename`d over
    /// it, so a crash mid-rotation leaves the previous (fully replayable)
    /// log in place.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the file cannot be created, synced, or renamed.
    pub fn create_with_first_seq(
        path: impl AsRef<Path>,
        policy: SyncPolicy,
        first_seq: u64,
    ) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        let file_name = path
            .file_name()
            .ok_or_else(|| WalError::Io(std::io::Error::other("WAL path has no file name")))?;
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        let mut file = File::create(&tmp)?;
        file.write_all(WAL_MAGIC)?;
        file.write_all(&WAL_FORMAT_VERSION.to_le_bytes())?;
        file.write_all(&first_seq.to_le_bytes())?;
        file.sync_all()?;
        std::fs::rename(&tmp, &path)?;
        sync_parent_dir(&path);
        // Reopen through the final name: the handle must refer to the file
        // the next recovery will read.
        let mut file = OpenOptions::new().append(true).read(true).open(&path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Self {
            file,
            path,
            next_seq: first_seq,
            policy,
            unsynced: 0,
        })
    }

    /// Opens an existing log for appending, replaying and verifying it
    /// first. A detected torn tail is truncated away (the damaged final
    /// frame was never acknowledged) so appending resumes from the last
    /// valid record.
    ///
    /// Returns the writer positioned at the end together with the replay.
    ///
    /// # Errors
    ///
    /// Everything [`replay`] reports, plus [`WalError::Io`].
    pub fn open(path: impl AsRef<Path>, policy: SyncPolicy) -> Result<(Self, WalReplay), WalError> {
        let path = path.as_ref().to_path_buf();
        let recovered = replay(&path)?;
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        file.set_len(recovered.end_offset)?;
        file.sync_all()?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok((
            Self {
                file,
                path,
                next_seq: recovered.next_seq(),
                policy,
                unsynced: 0,
            },
            recovered,
        ))
    }

    /// The sequence number the next appended record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The file this log writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and applies the sync policy. Returns the sequence
    /// number the record was written under.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the write or sync fails; the record must then be
    /// treated as not logged (the caller should not publish the mutation).
    pub fn append(&mut self, op: &WalOp) -> Result<u64, WalError> {
        let seq = self.next_seq;
        let payload =
            serde_json::to_string(&op.to_value(seq)).expect("record serialization is infallible");
        let payload = payload.as_bytes();
        debug_assert!(payload.len() <= MAX_RECORD_LEN as usize);
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.next_seq += 1;
        match self.policy {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
        }
        Ok(seq)
    }

    /// Forces everything appended so far to stable storage.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the fsync fails.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_all()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Replaces the log with a fresh one starting at the current
    /// `next_seq` — called right after a compaction base is written, so
    /// records the base already folds in stop being replayed. Atomic: a
    /// crash mid-rotation leaves the old log, whose records the fresh base
    /// simply skips.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the replacement cannot be written.
    pub fn rotate(&mut self) -> Result<(), WalError> {
        let fresh = Self::create_with_first_seq(&self.path, self.policy, self.next_seq)?;
        *self = fresh;
        Ok(())
    }
}

/// Best-effort fsync of a path's parent directory, persisting a rename.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
}

/// The log path inside a WAL directory.
pub fn wal_path(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join(WAL_FILE_NAME)
}

/// The compaction-base path inside a WAL directory.
pub fn base_path(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join(BASE_FILE_NAME)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("zsc-wal-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join(name)
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Register {
                label: "alpha".to_string(),
                words: vec![0x0123_4567_89ab_cdef, u64::MAX],
            },
            WalOp::Update {
                label: "alpha".to_string(),
                words: vec![0, 1],
            },
            WalOp::Remove {
                label: "alpha".to_string(),
            },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn append_replay_round_trip() {
        let path = temp_wal("round_trip.log");
        let mut wal = WriteAheadLog::create(&path, SyncPolicy::Always).expect("create");
        for (i, op) in sample_ops().iter().enumerate() {
            assert_eq!(wal.append(op).expect("append"), i as u64);
        }
        assert_eq!(wal.next_seq(), 3);
        drop(wal);
        let recovered = replay(&path).expect("replay");
        assert_eq!(recovered.first_seq, 0);
        assert!(recovered.torn_tail.is_none());
        assert_eq!(recovered.next_seq(), 3);
        let ops: Vec<WalOp> = recovered.entries.iter().map(|e| e.op.clone()).collect();
        assert_eq!(ops, sample_ops());
        // Reopen for append: picks up the sequence.
        let (wal, rec) = WriteAheadLog::open(&path, SyncPolicy::Always).expect("open");
        assert_eq!(wal.next_seq(), 3);
        assert_eq!(rec.entries.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    /// Threshold records carry raw `f32` bits, so set/clear sequences
    /// replay the exact verdict boundary — including negative-zero and
    /// subnormal thresholds a decimal rendering could perturb.
    #[test]
    fn set_threshold_records_round_trip_bit_exactly() {
        let path = temp_wal("threshold.log");
        let ops = vec![
            WalOp::SetThreshold {
                bits: Some(0.314f32.to_bits()),
            },
            WalOp::SetThreshold {
                bits: Some((-0.0f32).to_bits()),
            },
            WalOp::SetThreshold { bits: None },
        ];
        let mut wal = WriteAheadLog::create(&path, SyncPolicy::Always).expect("create");
        for op in &ops {
            wal.append(op).expect("append");
        }
        drop(wal);
        let recovered = replay(&path).expect("replay");
        assert!(recovered.torn_tail.is_none());
        let replayed: Vec<WalOp> = recovered.entries.iter().map(|e| e.op.clone()).collect();
        assert_eq!(replayed, ops);
        std::fs::remove_file(&path).ok();
    }

    /// Streamed-observe records carry the example's packed words exactly,
    /// and flush records mark publication boundaries with no payload — both
    /// replay verbatim so continual-learning recovery is counter-exact.
    #[test]
    fn observe_and_flush_records_round_trip() {
        let path = temp_wal("observe.log");
        let ops = vec![
            WalOp::Observe {
                label: "alpha".to_string(),
                words: vec![0xdead_beef_0bad_f00d, 0, u64::MAX],
            },
            WalOp::Observe {
                label: "beta".to_string(),
                words: vec![1, 2],
            },
            WalOp::Flush,
            WalOp::Observe {
                label: "alpha".to_string(),
                words: vec![42],
            },
            WalOp::Flush,
        ];
        let mut wal = WriteAheadLog::create(&path, SyncPolicy::Always).expect("create");
        for op in &ops {
            wal.append(op).expect("append");
        }
        drop(wal);
        let recovered = replay(&path).expect("replay");
        assert!(recovered.torn_tail.is_none());
        let replayed: Vec<WalOp> = recovered.entries.iter().map(|e| e.op.clone()).collect();
        assert_eq!(replayed, ops);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batched_sync_policy_still_replays() {
        let path = temp_wal("batched.log");
        let mut wal = WriteAheadLog::create(&path, SyncPolicy::EveryN(2)).expect("create");
        for op in sample_ops() {
            wal.append(&op).expect("append");
        }
        wal.sync().expect("final sync");
        let recovered = replay(&path).expect("replay");
        assert_eq!(recovered.entries.len(), 3);
        assert!(recovered.torn_tail.is_none());
        std::fs::remove_file(&path).ok();
    }

    /// The tentpole's pinned contract: truncating the log at **every** byte
    /// offset of the final record must yield a clean torn-tail replay of
    /// exactly the earlier records — never an error, never a phantom
    /// record.
    #[test]
    fn truncation_at_every_byte_offset_of_the_last_record_is_a_clean_torn_tail() {
        let path = temp_wal("torn.log");
        let mut wal = WriteAheadLog::create(&path, SyncPolicy::Always).expect("create");
        for op in sample_ops() {
            wal.append(&op).expect("append");
        }
        drop(wal);
        let full = std::fs::read(&path).expect("read log");
        let clean = replay(&path).expect("replay");
        assert_eq!(clean.entries.len(), 3);
        let last_start = clean.entries[1].end_offset as usize;
        let last_end = clean.entries[2].end_offset as usize;
        assert_eq!(last_end, full.len());
        for cut in last_start..last_end {
            let truncated = temp_wal(&format!("torn_cut_{cut}.log"));
            std::fs::write(&truncated, &full[..cut]).expect("write truncated log");
            let recovered = replay(&truncated)
                .unwrap_or_else(|e| panic!("cut at byte {cut} must replay cleanly, got {e}"));
            assert_eq!(recovered.entries.len(), 2, "cut at byte {cut}");
            assert_eq!(
                recovered.torn_tail.is_some(),
                cut != last_start,
                "cut at byte {cut}: a cut exactly at the previous frame's end is a clean log"
            );
            assert_eq!(
                recovered.end_offset as usize, last_start,
                "cut at byte {cut}"
            );
            // Opening for append truncates the tail and resumes at seq 2.
            let (wal, _) = WriteAheadLog::open(&truncated, SyncPolicy::Always).expect("open");
            assert_eq!(wal.next_seq(), 2);
            drop(wal);
            assert_eq!(
                std::fs::metadata(&truncated).expect("metadata").len() as usize,
                last_start
            );
            std::fs::remove_file(&truncated).ok();
        }
        std::fs::remove_file(&path).ok();
    }

    /// A bit flip in the final frame is a torn tail; the same flip in an
    /// earlier frame is hard corruption.
    #[test]
    fn checksum_distinguishes_torn_tail_from_mid_log_corruption() {
        let path = temp_wal("flip.log");
        let mut wal = WriteAheadLog::create(&path, SyncPolicy::Always).expect("create");
        for op in sample_ops() {
            wal.append(&op).expect("append");
        }
        drop(wal);
        let full = std::fs::read(&path).expect("read log");
        let clean = replay(&path).expect("replay");
        let flip_at = |offset: usize| {
            let mut bytes = full.clone();
            bytes[offset] ^= 0x40;
            let flipped = temp_wal("flipped.log");
            std::fs::write(&flipped, &bytes).expect("write flipped log");
            flipped
        };
        // Flip inside the last record's payload.
        let last_payload = clean.entries[1].end_offset as usize + FRAME_HEADER_LEN as usize + 2;
        let tail = replay(flip_at(last_payload)).expect("tail flip replays");
        assert_eq!(tail.entries.len(), 2);
        assert!(tail.torn_tail.is_some());
        // Flip inside the first record's payload.
        let first_payload = HEADER_LEN as usize + FRAME_HEADER_LEN as usize + 2;
        match replay(flip_at(first_payload)) {
            Err(WalError::Corrupt { offset, .. }) => {
                assert_eq!(offset, HEADER_LEN, "damage is located at the first frame")
            }
            other => panic!("mid-log flip must be hard corruption, got {other:?}"),
        }
        std::fs::remove_file(temp_wal("flipped.log")).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_wal_files_and_future_formats_are_rejected() {
        let path = temp_wal("not_a_wal.log");
        std::fs::write(&path, b"definitely not a wal").expect("write");
        assert!(matches!(
            replay(&path),
            Err(WalError::UnsupportedFormat { found: 0, .. })
        ));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(WAL_MAGIC);
        bytes.extend_from_slice(&7u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(
            replay(&path),
            Err(WalError::UnsupportedFormat { found: 7, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rotation_renumbers_from_next_seq() {
        let path = temp_wal("rotate.log");
        let mut wal = WriteAheadLog::create(&path, SyncPolicy::Always).expect("create");
        for op in sample_ops() {
            wal.append(&op).expect("append");
        }
        wal.rotate().expect("rotate");
        assert_eq!(wal.next_seq(), 3);
        let op = WalOp::Remove {
            label: "beta".to_string(),
        };
        assert_eq!(wal.append(&op).expect("append"), 3);
        drop(wal);
        let recovered = replay(&path).expect("replay");
        assert_eq!(recovered.first_seq, 3);
        assert_eq!(recovered.entries.len(), 1);
        assert_eq!(recovered.entries[0].seq, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sequence_discontinuities_are_hard_corruption() {
        let a = temp_wal("seq_a.log");
        let mut wal =
            WriteAheadLog::create_with_first_seq(&a, SyncPolicy::Always, 5).expect("create");
        wal.append(&WalOp::Remove {
            label: "x".to_string(),
        })
        .expect("append");
        drop(wal);
        // Rewrite the header to claim the file starts at seq 0: the record
        // inside carries seq 5, a discontinuity.
        let mut bytes = std::fs::read(&a).expect("read");
        bytes[12..20].copy_from_slice(&0u64.to_le_bytes());
        std::fs::write(&a, &bytes).expect("write");
        assert!(matches!(replay(&a), Err(WalError::Corrupt { .. })));
        std::fs::remove_file(&a).ok();
    }
}
