//! Length-prefixed, checksummed message framing shared by the network
//! server and client — the WAL's record-frame shape lifted onto a socket.
//!
//! Every message travels as one frame:
//!
//! ```text
//! │ len u32 LE │ crc32 u32 LE │ payload (len bytes of compact JSON) │
//! ```
//!
//! The CRC is the same IEEE CRC-32 guarding WAL records
//! ([`crate::wal::crc32`]), computed over the payload bytes. Payloads are
//! UTF-8 JSON documents described in `docs/wire-protocol.md`; a frame whose
//! declared length exceeds [`MAX_FRAME_LEN`] or whose checksum does not
//! match is a protocol violation, not a transport hiccup — the peer is
//! expected to close the connection.
//!
//! # Timeouts and the idle tick
//!
//! [`read_frame`] is built for sockets with a short read timeout: a timeout
//! that fires **before any byte of a frame arrived** is reported as
//! [`ReadOutcome::Idle`] — the caller's chance to check for drain and call
//! again. Once the first byte of a frame has been consumed the reader
//! commits: it retries short reads until the frame completes or the
//! caller's `mid_frame_budget` elapses, at which point the slow sender gets
//! [`FrameError::Timeout`] (the guard against a peer trickling one byte per
//! tick to hold a connection slot forever).

use crate::wal::crc32;
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Frame-header length on the wire: payload length + payload CRC.
pub const FRAME_HEADER_LEN: usize = 4 + 4;

/// Sanity cap on a single frame payload (64 MiB, matching the WAL's record
/// cap). A length prefix past this is treated as a protocol violation
/// rather than attempted as an allocation.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Why a frame could not be read or written.
#[derive(Debug)]
#[must_use = "a frame error says why the connection is unusable and should be handled"]
#[non_exhaustive]
pub enum FrameError {
    /// The underlying socket read or write failed.
    Io(io::Error),
    /// The peer sent bytes that are not a valid frame (bad checksum, or the
    /// connection closed mid-frame).
    Corrupt(String),
    /// The peer declared a frame longer than [`MAX_FRAME_LEN`].
    TooLarge(u32),
    /// The peer started a frame but did not finish it within the reader's
    /// mid-frame budget.
    Timeout,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O failed: {e}"),
            FrameError::Corrupt(reason) => write!(f, "corrupt frame: {reason}"),
            FrameError::TooLarge(len) => write!(
                f,
                "frame declares {len} payload bytes, the cap is {MAX_FRAME_LEN}"
            ),
            FrameError::Timeout => write!(f, "peer did not finish its frame in time"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// What one [`read_frame`] call produced.
#[derive(Debug)]
#[must_use = "an Idle/Closed outcome changes what the caller must do next"]
pub enum ReadOutcome {
    /// A complete, checksum-verified frame payload.
    Frame(Vec<u8>),
    /// The peer closed the connection cleanly, on a frame boundary.
    Closed,
    /// The socket's read timeout fired before any byte of a new frame
    /// arrived — nothing was consumed; check for drain and call again.
    Idle,
}

/// Encodes `payload` as one frame and writes it (flushed) to `w`.
///
/// # Panics
///
/// Debug-asserts `payload.len() <= MAX_FRAME_LEN`; both sides of this
/// protocol build payloads far below the cap.
///
/// # Errors
///
/// Any [`io::Error`] from the underlying writer.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("payload under cap")
            .to_le_bytes(),
    );
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one frame from `r`, verifying its checksum.
///
/// Designed for sockets carrying a short read timeout (see the module
/// docs): a timeout on a frame boundary is [`ReadOutcome::Idle`], a clean
/// EOF on a frame boundary is [`ReadOutcome::Closed`], and once a frame has
/// started the reader keeps retrying timeouts until `mid_frame_budget` has
/// elapsed since the frame's first byte.
///
/// # Errors
///
/// [`FrameError::Corrupt`] for a checksum mismatch or an EOF mid-frame,
/// [`FrameError::TooLarge`] for an oversized length prefix,
/// [`FrameError::Timeout`] when the budget runs out mid-frame, and
/// [`FrameError::Io`] for every other socket failure.
pub fn read_frame(
    r: &mut impl Read,
    mid_frame_budget: Duration,
) -> Result<ReadOutcome, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut deadline = None;
    match fill(r, &mut header, &mut deadline, mid_frame_budget)? {
        Fill::Done => {}
        Fill::IdleBoundary => return Ok(ReadOutcome::Idle),
        Fill::ClosedBoundary => return Ok(ReadOutcome::Closed),
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    match fill(r, &mut payload, &mut deadline, mid_frame_budget)? {
        Fill::Done => {}
        // A timeout or EOF *inside* the payload can never be a boundary:
        // `deadline` is already set, so `fill` reports them as errors.
        Fill::IdleBoundary | Fill::ClosedBoundary => {
            unreachable!("mid-frame fill cannot report a boundary outcome")
        }
    }
    if crc32(&payload) != crc {
        return Err(FrameError::Corrupt(format!(
            "payload of {len} bytes fails its checksum"
        )));
    }
    Ok(ReadOutcome::Frame(payload))
}

/// How a [`fill`] call ended.
enum Fill {
    /// The buffer was filled completely.
    Done,
    /// Timeout before the first byte of the frame — only possible while
    /// `deadline` is unset.
    IdleBoundary,
    /// Clean EOF before the first byte of the frame — only possible while
    /// `deadline` is unset.
    ClosedBoundary,
}

/// Reads until `buf` is full. `deadline` is `None` until the frame's first
/// byte arrives, at which point it is set to `now + budget` and shared with
/// the caller's subsequent fills — the budget covers the *whole* frame.
fn fill(
    r: &mut impl Read,
    buf: &mut [u8],
    deadline: &mut Option<Instant>,
    budget: Duration,
) -> Result<Fill, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && deadline.is_none() {
                    return Ok(Fill::ClosedBoundary);
                }
                return Err(FrameError::Corrupt(
                    "connection closed mid-frame".to_string(),
                ));
            }
            Ok(n) => {
                if deadline.is_none() {
                    *deadline = Some(Instant::now() + budget);
                }
                filled += n;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => match *deadline {
                None => return Ok(Fill::IdleBoundary),
                Some(d) if Instant::now() >= d => return Err(FrameError::Timeout),
                Some(_) => {}
            },
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Fill::Done)
}

/// Both `WouldBlock` and `TimedOut` mean "the socket read timeout fired" —
/// which of the two a platform reports varies.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const BUDGET: Duration = Duration::from_millis(200);

    fn encode(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).expect("vec write");
        out
    }

    #[test]
    fn round_trips_a_payload() {
        let bytes = encode(b"{\"type\":\"hello\",\"protocol\":1}");
        assert_eq!(bytes.len(), FRAME_HEADER_LEN + 29);
        let mut cursor = Cursor::new(bytes);
        match read_frame(&mut cursor, BUDGET).expect("reads") {
            ReadOutcome::Frame(payload) => {
                assert_eq!(payload, b"{\"type\":\"hello\",\"protocol\":1}");
            }
            other => panic!("expected a frame, got {other:?}"),
        }
        // The cursor is exactly on the next frame boundary.
        match read_frame(&mut cursor, BUDGET).expect("boundary EOF") {
            ReadOutcome::Closed => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    /// Pins the byte-level frame example in `docs/wire-protocol.md`: the
    /// 29-byte hello payload frames to these exact 37 bytes.
    #[test]
    fn documented_hello_frame_is_byte_exact() {
        let bytes = encode(b"{\"type\":\"hello\",\"protocol\":1}");
        assert_eq!(&bytes[..4], &[0x1d, 0x00, 0x00, 0x00], "len 29 LE");
        assert_eq!(
            &bytes[4..8],
            &0xa3d3_c2f4_u32.to_le_bytes(),
            "IEEE CRC-32 of the payload"
        );
        assert_eq!(&bytes[8..], b"{\"type\":\"hello\",\"protocol\":1}");
    }

    #[test]
    fn corrupt_checksum_is_detected() {
        let mut bytes = encode(b"payload");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        match read_frame(&mut Cursor::new(bytes), BUDGET) {
            Err(FrameError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_corrupt_not_closed() {
        let bytes = encode(b"payload");
        for cut in 1..bytes.len() {
            match read_frame(&mut Cursor::new(&bytes[..cut]), BUDGET) {
                Err(FrameError::Corrupt(_)) => {}
                other => panic!("cut at {cut}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut bytes = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 4]);
        match read_frame(&mut Cursor::new(bytes), BUDGET) {
            Err(FrameError::TooLarge(len)) => assert_eq!(len, MAX_FRAME_LEN + 1),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    /// A reader that times out (simulating a socket read timeout) before
    /// any byte: Idle. After the first byte: retried until the budget runs
    /// out, then Timeout.
    #[test]
    fn idle_and_mid_frame_timeouts_are_distinguished() {
        struct Stalled {
            sent: Vec<u8>,
            pos: usize,
        }
        impl Read for Stalled {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.pos < self.sent.len() {
                    buf[0] = self.sent[self.pos];
                    self.pos += 1;
                    Ok(1)
                } else {
                    Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"))
                }
            }
        }
        let mut idle = Stalled {
            sent: Vec::new(),
            pos: 0,
        };
        match read_frame(&mut idle, Duration::from_millis(10)).expect("idle") {
            ReadOutcome::Idle => {}
            other => panic!("expected Idle, got {other:?}"),
        }
        let mut slowloris = Stalled {
            sent: encode(b"payload")[..3].to_vec(),
            pos: 0,
        };
        match read_frame(&mut slowloris, Duration::from_millis(10)) {
            Err(FrameError::Timeout) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
    }
}
