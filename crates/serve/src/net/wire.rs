//! The request/response vocabulary carried inside [`frame`](super::frame)
//! payloads, plus the handshake version and the typed error codes.
//!
//! Every payload is a compact JSON object with a `"type"` discriminator.
//! The normative byte-level specification lives in `docs/wire-protocol.md`;
//! this module is its executable form — the `encode`/`decode` pairs here
//! are what both the server and the bundled client actually speak, and the
//! round-trip tests at the bottom pin the two to each other.
//!
//! Similarities travel as **raw `f32` bit patterns** (`sim_bits`, a `u32`):
//! the serving contract is bit-identity with
//! [`ModelSnapshot::solo_topk`](crate::ModelSnapshot::solo_topk), and
//! shipping the bits directly makes that contract checkable over the wire
//! without trusting any decimal float formatting.

use crate::server::{ServeError, Verdict};
use serde::{Serialize, Value};

/// The handshake version this build speaks. A client whose `hello` names a
/// different version is rejected with an `unsupported_protocol` error
/// naming this value; `docs/wire-protocol.md` states the compatibility
/// rule for bumping it.
pub const PROTOCOL_VERSION: u32 = 1;

/// Typed error codes a [`Response::Error`] can carry; one string per
/// rejection the protocol distinguishes. Kept as constants so the server,
/// the client, and the tests name them consistently.
pub mod code {
    /// The admission queue was full; back off and retry.
    pub const OVERLOADED: &str = "overloaded";
    /// The server is draining for shutdown; the connection closes next.
    pub const DRAINING: &str = "draining";
    /// The connection used up its request quota; the connection closes next.
    pub const QUOTA_EXHAUSTED: &str = "quota_exhausted";
    /// A feature row had the wrong width.
    pub const FEATURE_WIDTH: &str = "feature_width";
    /// A class-attribute row had the wrong width.
    pub const ATTRIBUTE_WIDTH: &str = "attribute_width";
    /// The named class is not registered.
    pub const UNKNOWN_CLASS: &str = "unknown_class";
    /// The label is already registered (use `update_class`).
    pub const DUPLICATE_LABEL: &str = "duplicate_label";
    /// A mutation or swap was structurally invalid.
    pub const INVALID_CONFIG: &str = "invalid_config";
    /// A swapped-in checkpoint failed validation.
    pub const CHECKPOINT: &str = "checkpoint";
    /// The durable server could not log the mutation.
    pub const WAL: &str = "wal";
    /// The server stopped mid-request.
    pub const STOPPED: &str = "stopped";
    /// The client's `hello` named a protocol version this build does not
    /// speak; the message carries the supported version.
    pub const UNSUPPORTED_PROTOCOL: &str = "unsupported_protocol";
    /// The frame payload was not a well-formed request (bad JSON, unknown
    /// `type`, missing fields, or a request sent before `hello`).
    pub const BAD_REQUEST: &str = "bad_request";
}

/// Maps a [`ServeError`] onto its wire code. Deliberately total with no
/// wildcard: adding a `ServeError` variant fails compilation here until
/// the protocol learns its name (and `docs/wire-protocol.md` documents
/// it).
pub fn error_code(error: &ServeError) -> &'static str {
    match error {
        ServeError::Stopped => code::STOPPED,
        ServeError::FeatureWidth { .. } => code::FEATURE_WIDTH,
        ServeError::AttributeWidth { .. } => code::ATTRIBUTE_WIDTH,
        ServeError::UnknownClass(_) => code::UNKNOWN_CLASS,
        ServeError::DuplicateLabel(_) => code::DUPLICATE_LABEL,
        ServeError::Draining => code::DRAINING,
        ServeError::Overloaded { .. } => code::OVERLOADED,
        ServeError::QuotaExhausted { .. } => code::QUOTA_EXHAUSTED,
        ServeError::InvalidConfig(_) => code::INVALID_CONFIG,
        ServeError::Checkpoint(_) => code::CHECKPOINT,
        ServeError::Wal(_) => code::WAL,
    }
}

/// One scored label as it travels: the class label plus the raw bit
/// pattern of its `f32` similarity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireScore {
    /// Class label.
    pub label: String,
    /// `f32::to_bits` of the similarity; decode with [`f32::from_bits`].
    pub sim_bits: u32,
}

/// The flattened statistics document the `stats` endpoint returns: the
/// [`ServerStats`](crate::ServerStats) counters, the network front-end's
/// own counters, and the serving snapshot's shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WireStats {
    /// Queries the dispatcher answered (in-process and network).
    pub queries: u64,
    /// Engine dispatches.
    pub batches: u64,
    /// Largest coalesced batch observed.
    pub max_batch_observed: u64,
    /// Snapshot swaps published.
    pub swaps: u64,
    /// Version of the snapshot serving when the stats were taken.
    pub snapshot_version: u64,
    /// Classes registered in that snapshot.
    pub classes: u64,
    /// Whether the network front-end is draining for shutdown.
    pub draining: bool,
    /// Connections accepted so far.
    pub net_connections: u64,
    /// Connections refused because the connection cap was reached.
    pub net_refused_connections: u64,
    /// Requests read off sockets (admitted or not, every verb).
    pub net_requests: u64,
    /// Query requests admitted past the admission queue.
    pub net_admitted: u64,
    /// Query requests load-shed with `overloaded`.
    pub net_overloaded: u64,
    /// Requests rejected with `quota_exhausted`.
    pub net_quota_rejections: u64,
    /// Requests rejected with `draining`.
    pub net_draining_rejections: u64,
    /// Streamed observations folded into per-class counters (see
    /// [`StreamStats`](crate::StreamStats)).
    pub observes: u64,
    /// Classes with counter changes not yet re-signed into a published
    /// snapshot.
    pub pending_classes: u64,
    /// Observations folded since the last publication boundary.
    pub since_publish: u64,
    /// Page–Hinkley drift alarms raised so far.
    pub drift_alarms: u64,
    /// Live WAL file size in bytes; `0` on a non-durable server (see
    /// [`DurabilityStats`](crate::DurabilityStats)).
    pub wal_bytes: u64,
    /// WAL records appended since the last compaction; `0` on a
    /// non-durable server.
    pub records_since_compaction: u64,
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// The handshake opener — must be the first frame on a connection.
    Hello {
        /// The protocol version the client speaks.
        protocol: u32,
    },
    /// Score one feature row; answered with [`Response::TopK`].
    Query {
        /// Backbone feature row.
        features: Vec<f32>,
        /// Result count override; `None` uses the server's configured
        /// top-k.
        k: Option<u64>,
    },
    /// Register a brand-new class; answered with [`Response::Mutated`].
    RegisterClass {
        /// Class label.
        label: String,
        /// Class-attribute row.
        attributes: Vec<f32>,
    },
    /// Re-point an existing class; answered with [`Response::Mutated`].
    UpdateClass {
        /// Class label.
        label: String,
        /// Class-attribute row.
        attributes: Vec<f32>,
    },
    /// Unregister a class; answered with [`Response::Mutated`].
    RemoveClass {
        /// Class label.
        label: String,
    },
    /// Replace the whole serving state; answered with
    /// [`Response::Mutated`].
    SwapModel {
        /// The new model as a checkpoint JSON document (the same document
        /// [`Checkpoint::to_json`](hdc_zsc::Checkpoint::to_json) writes).
        checkpoint_json: String,
        /// One label per attribute row.
        labels: Vec<String>,
        /// Class-attribute rows of the new class set.
        attributes: Vec<Vec<f32>>,
    },
    /// Set or clear the open-set rejection threshold; answered with
    /// [`Response::Mutated`]. Additive in protocol 1: old clients simply
    /// never send it.
    SetThreshold {
        /// `f32::to_bits` of the new threshold — raw bits, like `sim_bits`,
        /// so the strict-less verdict boundary crosses the wire exactly.
        /// `None` clears the threshold.
        threshold_bits: Option<u32>,
    },
    /// Fold one streamed labeled example into the named class's exact
    /// counters; answered with [`Response::Mutated`] carrying the version
    /// now serving — which only advances when this observe landed a
    /// publication boundary. Additive in protocol 1: old clients simply
    /// never send it.
    Observe {
        /// Class label (must already be registered).
        label: String,
        /// Backbone feature row of the labeled example.
        features: Vec<f32>,
    },
    /// Publish every pending streamed-class update immediately; answered
    /// with [`Response::Mutated`]. Additive in protocol 1.
    Flush,
    /// Fetch counters; answered with [`Response::Stats`].
    Stats,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The handshake accept, carrying what the client needs to build valid
    /// requests.
    Welcome {
        /// The protocol version the server speaks (== the client's).
        protocol: u32,
        /// Width of feature rows [`Request::Query`] must carry.
        feature_dim: u64,
        /// Width of attribute rows the mutation verbs must carry.
        attribute_dim: u64,
        /// Version of the currently-serving snapshot.
        snapshot_version: u64,
        /// Classes registered in that snapshot.
        classes: u64,
    },
    /// A served query: the snapshot version that scored it plus its top-k.
    TopK {
        /// Snapshot version the query was scored against — compare with
        /// [`ModelSnapshot::solo_topk`](crate::ModelSnapshot::solo_topk)
        /// on that version to check the bit-identity contract.
        version: u64,
        /// Scored labels, most similar first.
        results: Vec<WireScore>,
        /// The serving snapshot's open-set verdict. Additive in protocol
        /// 1: the field is only present when that snapshot carries a
        /// rejection threshold, and decoders treat a missing (or `null`)
        /// field as `None`, so old clients and old servers interoperate
        /// unchanged.
        verdict: Option<Verdict>,
    },
    /// An accepted mutation: the snapshot version it published.
    Mutated {
        /// Version of the snapshot now serving.
        version: u64,
        /// Classes registered in it.
        classes: u64,
    },
    /// The counters document.
    Stats(WireStats),
    /// A typed rejection; `code` is one of the [`code`] constants.
    Error {
        /// Machine-readable rejection code.
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn get<'v>(value: &'v Value, name: &str) -> Result<&'v Value, String> {
    value
        .get(name)
        .ok_or_else(|| format!("message missing `{name}`"))
}

fn field<T: serde::Deserialize>(value: &Value, name: &str) -> Result<T, String> {
    serde_json::from_value(get(value, name)?).map_err(|e| format!("field `{name}`: {e}"))
}

fn message_type(value: &Value) -> Result<String, String> {
    if value.as_object().is_none() {
        return Err(format!("message is a JSON {}, not an object", value.kind()));
    }
    field(value, "type")
}

impl Request {
    /// Renders the request as its JSON value.
    pub fn to_value(&self) -> Value {
        match self {
            Request::Hello { protocol } => obj(vec![
                ("type", "hello".to_value()),
                ("protocol", protocol.to_value()),
            ]),
            Request::Query { features, k } => {
                let mut entries = vec![
                    ("type", "query".to_value()),
                    ("features", features.to_value()),
                ];
                if let Some(k) = k {
                    entries.push(("k", k.to_value()));
                }
                obj(entries)
            }
            Request::RegisterClass { label, attributes } => obj(vec![
                ("type", "register_class".to_value()),
                ("label", label.to_value()),
                ("attributes", attributes.to_value()),
            ]),
            Request::UpdateClass { label, attributes } => obj(vec![
                ("type", "update_class".to_value()),
                ("label", label.to_value()),
                ("attributes", attributes.to_value()),
            ]),
            Request::RemoveClass { label } => obj(vec![
                ("type", "remove_class".to_value()),
                ("label", label.to_value()),
            ]),
            Request::SwapModel {
                checkpoint_json,
                labels,
                attributes,
            } => obj(vec![
                ("type", "swap_model".to_value()),
                ("checkpoint", checkpoint_json.to_value()),
                ("labels", labels.to_value()),
                ("attributes", attributes.to_value()),
            ]),
            Request::SetThreshold { threshold_bits } => obj(vec![
                ("type", "set_threshold".to_value()),
                ("threshold_bits", threshold_bits.to_value()),
            ]),
            Request::Observe { label, features } => obj(vec![
                ("type", "observe".to_value()),
                ("label", label.to_value()),
                ("features", features.to_value()),
            ]),
            Request::Flush => obj(vec![("type", "flush".to_value())]),
            Request::Stats => obj(vec![("type", "stats".to_value())]),
        }
    }

    /// Parses a request out of its JSON value.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the value is not a well-formed request
    /// — the server wraps it in a [`code::BAD_REQUEST`] response.
    pub fn from_value(value: &Value) -> Result<Self, String> {
        let kind = message_type(value)?;
        match kind.as_str() {
            "hello" => Ok(Request::Hello {
                protocol: field(value, "protocol")?,
            }),
            "query" => Ok(Request::Query {
                features: field(value, "features")?,
                k: match value.get("k") {
                    None | Some(Value::Null) => None,
                    Some(k) => {
                        Some(serde_json::from_value(k).map_err(|e| format!("field `k`: {e}"))?)
                    }
                },
            }),
            "register_class" => Ok(Request::RegisterClass {
                label: field(value, "label")?,
                attributes: field(value, "attributes")?,
            }),
            "update_class" => Ok(Request::UpdateClass {
                label: field(value, "label")?,
                attributes: field(value, "attributes")?,
            }),
            "remove_class" => Ok(Request::RemoveClass {
                label: field(value, "label")?,
            }),
            "swap_model" => Ok(Request::SwapModel {
                checkpoint_json: field(value, "checkpoint")?,
                labels: field(value, "labels")?,
                attributes: field(value, "attributes")?,
            }),
            "set_threshold" => Ok(Request::SetThreshold {
                threshold_bits: match value.get("threshold_bits") {
                    None | Some(Value::Null) => None,
                    Some(bits) => Some(
                        serde_json::from_value(bits)
                            .map_err(|e| format!("field `threshold_bits`: {e}"))?,
                    ),
                },
            }),
            "observe" => Ok(Request::Observe {
                label: field(value, "label")?,
                features: field(value, "features")?,
            }),
            "flush" => Ok(Request::Flush),
            "stats" => Ok(Request::Stats),
            other => Err(format!("unknown request type `{other}`")),
        }
    }

    /// Encodes the request as a compact-JSON frame payload.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_string(&self.to_value())
            .expect("value rendering is infallible")
            .into_bytes()
    }

    /// Decodes a frame payload into a request.
    ///
    /// # Errors
    ///
    /// See [`Request::from_value`]; also rejects non-UTF-8 and non-JSON
    /// payloads.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
        let value =
            serde_json::parse_value(text).map_err(|e| format!("payload is not JSON: {e}"))?;
        Self::from_value(&value)
    }
}

impl Response {
    /// Renders the response as its JSON value.
    pub fn to_value(&self) -> Value {
        match self {
            Response::Welcome {
                protocol,
                feature_dim,
                attribute_dim,
                snapshot_version,
                classes,
            } => obj(vec![
                ("type", "welcome".to_value()),
                ("protocol", protocol.to_value()),
                ("feature_dim", feature_dim.to_value()),
                ("attribute_dim", attribute_dim.to_value()),
                ("snapshot_version", snapshot_version.to_value()),
                ("classes", classes.to_value()),
            ]),
            Response::TopK {
                version,
                results,
                verdict,
            } => {
                let mut entries = vec![
                    ("type", "topk".to_value()),
                    ("version", version.to_value()),
                    (
                        "results",
                        Value::Array(
                            results
                                .iter()
                                .map(|score| {
                                    obj(vec![
                                        ("label", score.label.to_value()),
                                        ("sim_bits", score.sim_bits.to_value()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ];
                // Additive: written only when a threshold judged the query,
                // so uncalibrated responses are byte-identical to protocol
                // 1 before verdicts existed.
                if let Some(verdict) = verdict {
                    entries.push(("verdict", verdict.to_string().to_value()));
                }
                obj(entries)
            }
            Response::Mutated { version, classes } => obj(vec![
                ("type", "mutated".to_value()),
                ("version", version.to_value()),
                ("classes", classes.to_value()),
            ]),
            Response::Stats(stats) => {
                let Value::Object(mut entries) = stats.to_value() else {
                    unreachable!("derived struct serialization yields an object")
                };
                entries.insert(0, ("type".to_string(), "stats".to_value()));
                Value::Object(entries)
            }
            Response::Error { code, message } => obj(vec![
                ("type", "error".to_value()),
                ("code", code.to_value()),
                ("message", message.to_value()),
            ]),
        }
    }

    /// Parses a response out of its JSON value.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the value is not a well-formed
    /// response.
    pub fn from_value(value: &Value) -> Result<Self, String> {
        let kind = message_type(value)?;
        match kind.as_str() {
            "welcome" => Ok(Response::Welcome {
                protocol: field(value, "protocol")?,
                feature_dim: field(value, "feature_dim")?,
                attribute_dim: field(value, "attribute_dim")?,
                snapshot_version: field(value, "snapshot_version")?,
                classes: field(value, "classes")?,
            }),
            "topk" => {
                let Some(Value::Array(items)) = value.get("results") else {
                    return Err("topk response missing `results` array".to_string());
                };
                let results = items
                    .iter()
                    .map(|item| {
                        Ok(WireScore {
                            label: field(item, "label")?,
                            sim_bits: field(item, "sim_bits")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let verdict = match value.get("verdict") {
                    None | Some(Value::Null) => None,
                    Some(v) => {
                        let name: String = serde_json::from_value(v)
                            .map_err(|e| format!("field `verdict`: {e}"))?;
                        Some(match name.as_str() {
                            "known" => Verdict::Known,
                            "unknown" => Verdict::Unknown,
                            other => return Err(format!("unknown verdict `{other}`")),
                        })
                    }
                };
                Ok(Response::TopK {
                    version: field(value, "version")?,
                    results,
                    verdict,
                })
            }
            "mutated" => Ok(Response::Mutated {
                version: field(value, "version")?,
                classes: field(value, "classes")?,
            }),
            "stats" => Ok(Response::Stats(
                serde_json::from_value(value).map_err(|e| format!("stats response: {e}"))?,
            )),
            "error" => Ok(Response::Error {
                code: field(value, "code")?,
                message: field(value, "message")?,
            }),
            other => Err(format!("unknown response type `{other}`")),
        }
    }

    /// Encodes the response as a compact-JSON frame payload.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_string(&self.to_value())
            .expect("value rendering is infallible")
            .into_bytes()
    }

    /// Decodes a frame payload into a response.
    ///
    /// # Errors
    ///
    /// See [`Response::from_value`]; also rejects non-UTF-8 and non-JSON
    /// payloads.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
        let value =
            serde_json::parse_value(text).map_err(|e| format!("payload is not JSON: {e}"))?;
        Self::from_value(&value)
    }

    /// Builds the typed rejection for a [`ServeError`], preserving its
    /// display message alongside the machine code.
    pub fn from_serve_error(error: &ServeError) -> Self {
        Response::Error {
            code: error_code(error).to_string(),
            message: error.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(request: Request) {
        let decoded = Request::decode(&request.encode()).expect("request decodes");
        assert_eq!(decoded, request);
    }

    fn round_trip_response(response: Response) {
        let decoded = Response::decode(&response.encode()).expect("response decodes");
        assert_eq!(decoded, response);
    }

    #[test]
    fn every_request_round_trips() {
        round_trip_request(Request::Hello {
            protocol: PROTOCOL_VERSION,
        });
        round_trip_request(Request::Query {
            features: vec![0.5, -1.0, 0.0, -0.0, 3.25e-6],
            k: Some(3),
        });
        round_trip_request(Request::Query {
            features: vec![1.0; 8],
            k: None,
        });
        round_trip_request(Request::RegisterClass {
            label: "owl".to_string(),
            attributes: vec![0.25; 5],
        });
        round_trip_request(Request::UpdateClass {
            label: "owl".to_string(),
            attributes: vec![0.75; 5],
        });
        round_trip_request(Request::RemoveClass {
            label: "owl".to_string(),
        });
        round_trip_request(Request::SwapModel {
            checkpoint_json: "{\"fake\":1}".to_string(),
            labels: vec!["a".to_string(), "b".to_string()],
            attributes: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
        });
        round_trip_request(Request::SetThreshold {
            threshold_bits: Some(0.314f32.to_bits()),
        });
        round_trip_request(Request::SetThreshold {
            threshold_bits: None,
        });
        round_trip_request(Request::Observe {
            label: "owl".to_string(),
            features: vec![0.5, -0.0, 1.5e-9],
        });
        round_trip_request(Request::Flush);
        round_trip_request(Request::Stats);
    }

    #[test]
    fn every_response_round_trips() {
        round_trip_response(Response::Welcome {
            protocol: PROTOCOL_VERSION,
            feature_dim: 24,
            attribute_dim: 312,
            snapshot_version: 7,
            classes: 9,
        });
        round_trip_response(Response::TopK {
            version: 3,
            results: vec![
                WireScore {
                    label: "owl".to_string(),
                    sim_bits: 0.875f32.to_bits(),
                },
                WireScore {
                    label: "wren".to_string(),
                    sim_bits: (-0.25f32).to_bits(),
                },
            ],
            verdict: None,
        });
        for verdict in [Verdict::Known, Verdict::Unknown] {
            round_trip_response(Response::TopK {
                version: 9,
                results: vec![WireScore {
                    label: "owl".to_string(),
                    sim_bits: 0.5f32.to_bits(),
                }],
                verdict: Some(verdict),
            });
        }
        round_trip_response(Response::Mutated {
            version: 4,
            classes: 10,
        });
        round_trip_response(Response::Stats(WireStats {
            queries: 100,
            batches: 12,
            max_batch_observed: 32,
            swaps: 2,
            snapshot_version: 2,
            classes: 11,
            draining: true,
            net_connections: 9,
            net_refused_connections: 1,
            net_requests: 120,
            net_admitted: 100,
            net_overloaded: 15,
            net_quota_rejections: 3,
            net_draining_rejections: 2,
            observes: 42,
            pending_classes: 2,
            since_publish: 1,
            drift_alarms: 3,
            wal_bytes: 4096,
            records_since_compaction: 7,
        }));
        round_trip_response(Response::Error {
            code: code::OVERLOADED.to_string(),
            message: "admission queue full".to_string(),
        });
    }

    /// Query features round-trip bit-exactly, including negative zero —
    /// the wire must not perturb what the engine scores.
    #[test]
    fn features_round_trip_bit_exactly() {
        let features = vec![0.1f32, -0.0, f32::MIN_POSITIVE, 1.0e-30, -123.456];
        let encoded = Request::Query {
            features: features.clone(),
            k: None,
        }
        .encode();
        let Request::Query { features: back, .. } =
            Request::decode(&encoded).expect("query decodes")
        else {
            panic!("decoded to a different request type");
        };
        for (a, b) in features.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert!(Request::decode(b"\xff\xfe").is_err());
        assert!(Request::decode(b"[1,2,3]").is_err());
        assert!(Request::decode(b"{\"type\":\"warp\"}").is_err());
        assert!(Request::decode(b"{\"type\":\"query\"}").is_err());
        assert!(Response::decode(b"{\"type\":\"topk\",\"version\":1}").is_err());
        assert!(Response::decode(
            b"{\"type\":\"topk\",\"version\":1,\"results\":[],\"verdict\":\"maybe\"}"
        )
        .is_err());
    }

    /// The `verdict` field is additive: a verdict-free response carries no
    /// key at all (byte-identical to the pre-verdict protocol), and
    /// decoders accept both a missing key and an explicit `null` as
    /// "no verdict".
    #[test]
    fn verdict_field_is_additive() {
        let encoded = Response::TopK {
            version: 1,
            results: vec![],
            verdict: None,
        }
        .encode();
        let text = String::from_utf8(encoded).expect("compact JSON is UTF-8");
        assert!(!text.contains("verdict"), "no key when no verdict: {text}");
        for legacy in [
            "{\"type\":\"topk\",\"version\":1,\"results\":[]}",
            "{\"type\":\"topk\",\"version\":1,\"results\":[],\"verdict\":null}",
        ] {
            match Response::decode(legacy.as_bytes()).expect("legacy topk decodes") {
                Response::TopK { verdict, .. } => assert_eq!(verdict, None, "{legacy}"),
                other => panic!("expected topk, got {other:?}"),
            }
        }
    }

    #[test]
    fn serve_errors_map_onto_stable_codes() {
        assert_eq!(
            error_code(&ServeError::Overloaded { capacity: 4 }),
            code::OVERLOADED
        );
        assert_eq!(
            error_code(&ServeError::QuotaExhausted { limit: 10 }),
            code::QUOTA_EXHAUSTED
        );
        assert_eq!(error_code(&ServeError::Draining), code::DRAINING);
        assert_eq!(
            error_code(&ServeError::DuplicateLabel("x".to_string())),
            code::DUPLICATE_LABEL
        );
        assert_eq!(
            error_code(&ServeError::FeatureWidth {
                expected: 2,
                found: 3
            }),
            code::FEATURE_WIDTH
        );
    }
}
