//! The TCP front-end: an accept loop plus one handler thread per
//! connection, speaking the [`wire`] protocol over
//! [`frame`](super::frame) framing, with bounded admission in front of the
//! [`QueryServer`] dispatcher.
//!
//! # Admission control
//!
//! Queries (and only queries — mutations and stats are control-plane
//! traffic, already serialized by the [`QueryServer`]'s control mutex) pass
//! through a bounded admission counter before they may enter the
//! dispatcher's coalescing queue. When
//! [`NetConfig::admission_capacity`] queries are already in flight, the
//! request is **load-shed immediately** with a typed
//! [`overloaded`](super::wire::code::OVERLOADED) rejection instead of
//! queuing behind everyone else: under saturation the server keeps
//! answering what it admitted at full speed and tells the rest to back
//! off, rather than letting latency grow without bound.
//!
//! # Drain
//!
//! [`NetServer::shutdown`] (also run by `Drop`) marks the front-end
//! draining and then joins every thread: requests already being served are
//! answered, requests arriving after the mark are rejected with a typed
//! [`draining`](super::wire::code::DRAINING) error and the connection is
//! closed. Handler threads blocked waiting for a quiet client notice the
//! drain within one [`NetConfig::idle_tick`]. Shutting down the front-end
//! does **not** stop the wrapped [`QueryServer`] — the owner may serve it
//! in-process afterwards or hand it to a new front-end; stop it separately
//! via [`QueryServer::stop`] / `Drop`.

use super::frame::{read_frame, write_frame, FrameError, ReadOutcome};
use super::wire::{self, Request, Response, WireScore, WireStats, PROTOCOL_VERSION};
use super::NetError;
use crate::server::{QueryServer, ServeError};
use dataset::AttributeSchema;
use hdc_zsc::Checkpoint;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tensor::Matrix;

/// Tuning knobs of a [`NetServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Most connections served concurrently; further connects are refused
    /// with a best-effort `overloaded` error frame and closed.
    pub max_connections: usize,
    /// Most queries allowed past admission (i.e. inside the dispatcher
    /// queue or being scored) at once; the rest are load-shed with a typed
    /// `overloaded` rejection. Must be at least 1.
    pub admission_capacity: usize,
    /// Requests one connection may issue before it is closed with a
    /// `quota_exhausted` error; `0` means unlimited.
    pub connection_quota: u64,
    /// Socket read timeout. Doubles as the drain-responsiveness tick: a
    /// handler waiting for a quiet client re-checks the drain flag this
    /// often.
    pub idle_tick: Duration,
    /// How long a peer may take to finish a frame it started (and to
    /// complete the handshake) before the connection is dropped — the
    /// guard against slow-trickle senders pinning a connection slot.
    pub mid_frame_budget: Duration,
    /// Socket write timeout; a peer that stops reading cannot block a
    /// handler longer than this.
    pub write_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            admission_capacity: 256,
            connection_quota: 0,
            idle_tick: Duration::from_millis(100),
            mid_frame_budget: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// Counters describing the front-end's traffic so far; a point-in-time
/// copy from [`NetServer::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct NetStats {
    /// Connections accepted.
    pub connections: u64,
    /// Connections refused at the [`NetConfig::max_connections`] cap.
    pub refused_connections: u64,
    /// Frames read off sockets after each connection's handshake.
    pub requests: u64,
    /// Queries admitted past the admission counter.
    pub admitted: u64,
    /// Queries load-shed with `overloaded`.
    pub overloaded: u64,
    /// Requests rejected with `quota_exhausted`.
    pub quota_rejections: u64,
    /// Requests rejected with `draining`.
    pub draining_rejections: u64,
}

/// Monotonic counters shared by every handler thread.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    refused_connections: AtomicU64,
    requests: AtomicU64,
    admitted: AtomicU64,
    overloaded: AtomicU64,
    quota_rejections: AtomicU64,
    draining_rejections: AtomicU64,
}

/// State shared between the accept loop, the handlers, and the
/// [`NetServer`] handle.
struct NetShared {
    server: Arc<QueryServer>,
    /// The serving schema, pinned at bind time: checkpoints swapped in
    /// over the wire are validated against it before any model is built.
    schema: AttributeSchema,
    config: NetConfig,
    draining: AtomicBool,
    /// Queries currently past admission; the bounded-queue counter.
    inflight: AtomicUsize,
    open_connections: AtomicUsize,
    counters: Counters,
    /// Handler threads still running (or finished and awaiting reap); the
    /// accept loop pushes, `shutdown` joins.
    handlers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// How often the accept loop polls its non-blocking listener (and the
/// drain flag) when no connection is pending.
const ACCEPT_TICK: Duration = Duration::from_millis(10);

/// A running TCP front-end around a shared [`QueryServer`]; see the module
/// docs. Dropping the handle drains and joins every thread
/// ([`NetServer::shutdown`]).
pub struct NetServer {
    shared: Arc<NetShared>,
    local_addr: SocketAddr,
    accept: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("local_addr", &self.local_addr)
            .field("config", &self.shared.config)
            .field("draining", &self.shared.draining.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections against `server`.
    ///
    /// `schema` is pinned for the front-end's lifetime: checkpoints
    /// arriving in `swap_model` requests are validated against it before a
    /// model is built from them, mirroring what
    /// [`QueryServer::start_durable`] pins for the WAL.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the listener cannot be bound, and
    /// [`NetError::Protocol`] for an invalid `config`
    /// (`admission_capacity` or `max_connections` of 0).
    pub fn bind(
        addr: impl ToSocketAddrs,
        server: Arc<QueryServer>,
        schema: &AttributeSchema,
        config: NetConfig,
    ) -> Result<Self, NetError> {
        if config.admission_capacity == 0 {
            return Err(NetError::Protocol(
                "admission_capacity must be at least 1".to_string(),
            ));
        }
        if config.max_connections == 0 {
            return Err(NetError::Protocol(
                "max_connections must be at least 1".to_string(),
            ));
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(NetShared {
            server,
            schema: schema.clone(),
            config,
            draining: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            open_connections: AtomicUsize::new(0),
            counters: Counters::default(),
            handlers: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        Ok(Self {
            shared,
            local_addr,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The address the front-end is listening on — the way to learn the
    /// port after binding `"127.0.0.1:0"`.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Point-in-time copy of the front-end's traffic counters.
    pub fn stats(&self) -> NetStats {
        let c = &self.shared.counters;
        NetStats {
            connections: c.connections.load(Ordering::Acquire),
            refused_connections: c.refused_connections.load(Ordering::Acquire),
            requests: c.requests.load(Ordering::Acquire),
            admitted: c.admitted.load(Ordering::Acquire),
            overloaded: c.overloaded.load(Ordering::Acquire),
            quota_rejections: c.quota_rejections.load(Ordering::Acquire),
            draining_rejections: c.draining_rejections.load(Ordering::Acquire),
        }
    }

    /// Drains and stops the front-end: marks it draining, then joins the
    /// accept loop and every handler thread. Requests already being served
    /// are answered; later ones get a typed `draining` rejection before
    /// their connection closes. Idempotent; `Drop` runs it too.
    ///
    /// The wrapped [`QueryServer`] keeps running — stop it separately.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::Release);
        let accept = self.accept.lock().expect("accept mutex poisoned").take();
        if let Some(handle) = accept {
            let _ = handle.join();
        }
        let handlers = std::mem::take(
            &mut *self
                .shared
                .handlers
                .lock()
                .expect("handlers mutex poisoned"),
        );
        for handle in handlers {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts connections until drain, spawning one handler thread each and
/// reaping finished handler handles as it goes.
fn accept_loop(shared: &Arc<NetShared>, listener: &TcpListener) {
    while !shared.draining.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.counters.connections.fetch_add(1, Ordering::AcqRel);
                if shared.open_connections.load(Ordering::Acquire) >= shared.config.max_connections
                {
                    shared
                        .counters
                        .refused_connections
                        .fetch_add(1, Ordering::AcqRel);
                    refuse_connection(shared, stream);
                    continue;
                }
                shared.open_connections.fetch_add(1, Ordering::AcqRel);
                let handle = {
                    let shared = Arc::clone(shared);
                    std::thread::spawn(move || {
                        handle_connection(&shared, stream);
                        shared.open_connections.fetch_sub(1, Ordering::AcqRel);
                    })
                };
                let mut handlers = shared.handlers.lock().expect("handlers mutex poisoned");
                // Reap finished handlers so a long-lived server does not
                // accumulate one dead handle per past connection.
                let mut i = 0;
                while i < handlers.len() {
                    if handlers[i].is_finished() {
                        let _ = handlers.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
                handlers.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(_) => std::thread::sleep(ACCEPT_TICK),
        }
    }
}

/// Best-effort `overloaded` error frame to a connection refused at the
/// connection cap; the peer may already be gone, which is fine.
fn refuse_connection(shared: &NetShared, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let response = Response::Error {
        code: wire::code::OVERLOADED.to_string(),
        message: format!(
            "connection limit of {} reached",
            shared.config.max_connections
        ),
    };
    let _ = write_frame(&mut stream, &response.encode());
}

/// Sends one response frame; `false` means the peer is unreachable and the
/// connection should be abandoned.
fn send(stream: &mut TcpStream, response: &Response) -> bool {
    write_frame(stream, &response.encode()).is_ok()
}

/// Runs one connection: handshake, then the request loop until the peer
/// closes, errors, exhausts its quota, or the front-end drains.
fn handle_connection(shared: &NetShared, mut stream: TcpStream) {
    if stream
        .set_read_timeout(Some(shared.config.idle_tick))
        .is_err()
        || stream
            .set_write_timeout(Some(shared.config.write_timeout))
            .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    if !handshake(shared, &mut stream) {
        return;
    }
    let mut used: u64 = 0;
    loop {
        let payload = match read_frame(&mut stream, shared.config.mid_frame_budget) {
            Ok(ReadOutcome::Frame(payload)) => payload,
            Ok(ReadOutcome::Idle) => {
                if shared.draining.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Ok(ReadOutcome::Closed) => return,
            Err(FrameError::Corrupt(reason)) => {
                let _ = send(
                    &mut stream,
                    &Response::Error {
                        code: wire::code::BAD_REQUEST.to_string(),
                        message: format!("unreadable frame: {reason}"),
                    },
                );
                return;
            }
            Err(FrameError::TooLarge(len)) => {
                let _ = send(
                    &mut stream,
                    &Response::Error {
                        code: wire::code::BAD_REQUEST.to_string(),
                        message: format!("frame of {len} bytes exceeds the cap"),
                    },
                );
                return;
            }
            Err(FrameError::Timeout | FrameError::Io(_)) => return,
        };
        shared.counters.requests.fetch_add(1, Ordering::AcqRel);
        let quota = shared.config.connection_quota;
        if quota != 0 && used >= quota {
            shared
                .counters
                .quota_rejections
                .fetch_add(1, Ordering::AcqRel);
            let _ = send(
                &mut stream,
                &Response::from_serve_error(&ServeError::QuotaExhausted { limit: quota }),
            );
            return;
        }
        used += 1;
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(reason) => {
                if !send(
                    &mut stream,
                    &Response::Error {
                        code: wire::code::BAD_REQUEST.to_string(),
                        message: reason,
                    },
                ) {
                    return;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::Acquire) {
            shared
                .counters
                .draining_rejections
                .fetch_add(1, Ordering::AcqRel);
            let _ = send(
                &mut stream,
                &Response::from_serve_error(&ServeError::Draining),
            );
            return;
        }
        let response = respond(shared, request);
        if !send(&mut stream, &response) {
            return;
        }
    }
}

/// Reads and answers the handshake frame. Returns `false` when the
/// connection must close (bad hello, version mismatch, timeout).
fn handshake(shared: &NetShared, stream: &mut TcpStream) -> bool {
    let deadline = Instant::now() + shared.config.mid_frame_budget;
    let payload = loop {
        match read_frame(stream, shared.config.mid_frame_budget) {
            Ok(ReadOutcome::Frame(payload)) => break payload,
            Ok(ReadOutcome::Idle) => {
                if shared.draining.load(Ordering::Acquire) || Instant::now() >= deadline {
                    return false;
                }
            }
            Ok(ReadOutcome::Closed) | Err(_) => return false,
        }
    };
    let protocol = match Request::decode(&payload) {
        Ok(Request::Hello { protocol }) => protocol,
        Ok(_) => {
            let _ = send(
                stream,
                &Response::Error {
                    code: wire::code::BAD_REQUEST.to_string(),
                    message: "the first frame on a connection must be `hello`".to_string(),
                },
            );
            return false;
        }
        Err(reason) => {
            let _ = send(
                stream,
                &Response::Error {
                    code: wire::code::BAD_REQUEST.to_string(),
                    message: reason,
                },
            );
            return false;
        }
    };
    if protocol != PROTOCOL_VERSION {
        let _ = send(
            stream,
            &Response::Error {
                code: wire::code::UNSUPPORTED_PROTOCOL.to_string(),
                message: format!(
                    "client speaks protocol {protocol}, this server speaks {PROTOCOL_VERSION}"
                ),
            },
        );
        return false;
    }
    let snapshot = shared.server.snapshot();
    send(
        stream,
        &Response::Welcome {
            protocol: PROTOCOL_VERSION,
            feature_dim: shared.server.feature_dim() as u64,
            attribute_dim: shared.server.attribute_dim() as u64,
            snapshot_version: snapshot.version(),
            classes: snapshot.memory().len() as u64,
        },
    )
}

/// Releases one admission slot on drop, so early returns and panics in the
/// query path cannot leak capacity.
struct AdmissionPermit<'a>(&'a AtomicUsize);

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Tries to take an admission slot without ever exceeding `capacity`.
fn try_admit(shared: &NetShared) -> Option<AdmissionPermit<'_>> {
    let capacity = shared.config.admission_capacity;
    shared
        .inflight
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |inflight| {
            (inflight < capacity).then_some(inflight + 1)
        })
        .ok()
        .map(|_| AdmissionPermit(&shared.inflight))
}

/// Serves one decoded post-handshake request.
fn respond(shared: &NetShared, request: Request) -> Response {
    match request {
        Request::Hello { .. } => Response::Error {
            code: wire::code::BAD_REQUEST.to_string(),
            message: "connection is already past its handshake".to_string(),
        },
        Request::Query { features, k } => {
            let Some(permit) = try_admit(shared) else {
                shared.counters.overloaded.fetch_add(1, Ordering::AcqRel);
                return Response::from_serve_error(&ServeError::Overloaded {
                    capacity: shared.config.admission_capacity,
                });
            };
            shared.counters.admitted.fetch_add(1, Ordering::AcqRel);
            let result = shared.server.query_with_verdict(&features);
            drop(permit);
            match result {
                Ok((version, mut results, verdict)) => {
                    // `k` narrows within the server's configured top-k; a
                    // prefix of the full response is still bit-identical
                    // to the (truncated) solo reference — and the verdict
                    // only depends on the top-1, which truncation keeps.
                    if let Some(k) = k {
                        results.truncate(usize::try_from(k).unwrap_or(usize::MAX));
                    }
                    Response::TopK {
                        version,
                        results: results
                            .into_iter()
                            .map(|(label, sim)| WireScore {
                                label,
                                sim_bits: sim.to_bits(),
                            })
                            .collect(),
                        verdict,
                    }
                }
                Err(e) => Response::from_serve_error(&e),
            }
        }
        Request::RegisterClass { label, attributes } => {
            mutation_response(shared.server.register_class(label, &attributes))
        }
        Request::UpdateClass { label, attributes } => {
            mutation_response(shared.server.update_class(&label, &attributes))
        }
        Request::RemoveClass { label } => mutation_response(shared.server.remove_class(&label)),
        Request::SetThreshold { threshold_bits } => mutation_response(match threshold_bits {
            // Decoded from raw bits, so the server judges queries by the
            // exact f32 the client calibrated (non-finite bits are rejected
            // by `set_threshold` with a typed `invalid_config`).
            Some(bits) => shared.server.set_threshold(f32::from_bits(bits)),
            None => shared.server.clear_threshold(),
        }),
        Request::SwapModel {
            checkpoint_json,
            labels,
            attributes,
        } => swap_response(shared, &checkpoint_json, labels, &attributes),
        Request::Observe { label, features } => {
            // An observe below the publication boundary folds counters
            // without publishing: answer with the version still serving so
            // the client always learns where the stream stands.
            match shared.server.observe(&label, &features) {
                Ok(Some(published)) => Response::Mutated {
                    version: published.version(),
                    classes: published.memory().len() as u64,
                },
                Ok(None) => {
                    let snapshot = shared.server.snapshot();
                    Response::Mutated {
                        version: snapshot.version(),
                        classes: snapshot.memory().len() as u64,
                    }
                }
                Err(e) => Response::from_serve_error(&e),
            }
        }
        Request::Flush => mutation_response(shared.server.flush()),
        Request::Stats => {
            let serve = shared.server.stats();
            let stream = shared.server.stream_stats();
            let durability = shared.server.durability_stats();
            let snapshot = shared.server.snapshot();
            let net = &shared.counters;
            Response::Stats(WireStats {
                queries: serve.queries,
                batches: serve.batches,
                max_batch_observed: serve.max_batch_observed as u64,
                swaps: serve.swaps,
                snapshot_version: snapshot.version(),
                classes: snapshot.memory().len() as u64,
                draining: shared.draining.load(Ordering::Acquire),
                net_connections: net.connections.load(Ordering::Acquire),
                net_refused_connections: net.refused_connections.load(Ordering::Acquire),
                net_requests: net.requests.load(Ordering::Acquire),
                net_admitted: net.admitted.load(Ordering::Acquire),
                net_overloaded: net.overloaded.load(Ordering::Acquire),
                net_quota_rejections: net.quota_rejections.load(Ordering::Acquire),
                net_draining_rejections: net.draining_rejections.load(Ordering::Acquire),
                observes: stream.observes,
                pending_classes: stream.pending_classes,
                since_publish: stream.since_publish,
                drift_alarms: stream.drift_alarms,
                wal_bytes: durability.map_or(0, |d| d.wal_bytes),
                records_since_compaction: durability.map_or(0, |d| d.records_since_compaction),
            })
        }
    }
}

/// Maps a mutation result onto `mutated` / a typed error.
fn mutation_response(result: Result<Arc<crate::ModelSnapshot>, ServeError>) -> Response {
    match result {
        Ok(snapshot) => Response::Mutated {
            version: snapshot.version(),
            classes: snapshot.memory().len() as u64,
        },
        Err(e) => Response::from_serve_error(&e),
    }
}

/// Decodes, validates (against the pinned schema), and applies a
/// `swap_model` request.
fn swap_response(
    shared: &NetShared,
    checkpoint_json: &str,
    labels: Vec<String>,
    attributes: &[Vec<f32>],
) -> Response {
    let checkpoint = match Checkpoint::from_json_str(checkpoint_json) {
        Ok(checkpoint) => checkpoint,
        Err(e) => return Response::from_serve_error(&ServeError::Checkpoint(e)),
    };
    if let Err(e) = checkpoint.validate_schema(&shared.schema) {
        return Response::from_serve_error(&ServeError::Checkpoint(e));
    }
    let model = match checkpoint.into_frozen(&shared.schema) {
        Ok(model) => model,
        Err(e) => return Response::from_serve_error(&ServeError::Checkpoint(e)),
    };
    // `Matrix::from_rows` asserts rectangularity; validate first so a
    // ragged request is a typed rejection, not a handler panic.
    let width = attributes.first().map_or(0, Vec::len);
    if attributes.is_empty() || attributes.iter().any(|row| row.len() != width) {
        return Response::from_serve_error(&ServeError::InvalidConfig(
            "swap_model needs a non-empty, rectangular attribute matrix".to_string(),
        ));
    }
    let matrix = Matrix::from_rows(attributes);
    mutation_response(shared.server.swap_model(model, labels, &matrix))
}
