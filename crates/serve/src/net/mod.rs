//! Network serving front-end: a TCP wire protocol around the
//! [`QueryServer`](crate::QueryServer), with admission control.
//!
//! The in-process serving stack ends at
//! [`QueryServer::query`](crate::QueryServer::query); this module puts a
//! socket in front of it:
//!
//! - [`frame`] — length-prefixed, CRC-checked message framing (the WAL's
//!   record-frame shape lifted onto a socket);
//! - [`wire`] — the versioned handshake, every request/response type, and
//!   the typed error codes;
//! - [`NetServer`] — accept loop + thread-per-connection handlers, bounded
//!   admission with typed `overloaded` load-shedding, per-connection
//!   request quotas, socket timeouts, and graceful drain;
//! - [`NetClient`] — a small blocking client, used by `zsc_serve --net`'s
//!   load generator and the test suites.
//!
//! The contract that matters carries over the socket unchanged: every
//! served query is **bit-identical** to
//! [`ModelSnapshot::solo_topk`](crate::ModelSnapshot::solo_topk) against
//! the snapshot version named in the response — similarities travel as raw
//! `f32` bit patterns, so nothing is lost to float formatting. The
//! normative protocol specification lives in `docs/wire-protocol.md`; the
//! operator's view (tuning admission, reading rejections) in
//! `docs/operations.md`.

pub mod client;
pub mod frame;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, NetClient, Welcome};
pub use server::{NetConfig, NetServer, NetStats};
pub use wire::{WireScore, WireStats, PROTOCOL_VERSION};

/// Why a network operation failed, on either side of the socket.
#[derive(Debug)]
#[must_use = "a network error says why the exchange failed and should be handled"]
#[non_exhaustive]
pub enum NetError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// A frame could not be read or written (corrupt, oversized, or the
    /// peer stalled mid-frame).
    Frame(frame::FrameError),
    /// The peer sent bytes that are valid frames but not valid protocol.
    Protocol(String),
    /// The server answered with a typed `error` response; `code` is one
    /// of the [`wire::code`] constants (e.g.
    /// [`wire::code::OVERLOADED`] — back off and retry — or
    /// [`wire::code::DRAINING`]).
    Rejected {
        /// Machine-readable rejection code.
        code: String,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The response did not arrive within the client's response timeout.
    Timeout,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket I/O failed: {e}"),
            NetError::Frame(e) => write!(f, "framing failed: {e}"),
            NetError::Protocol(reason) => write!(f, "protocol violation: {reason}"),
            NetError::Rejected { code, message } => {
                write!(f, "server rejected [{code}]: {message}")
            }
            NetError::Timeout => write!(f, "timed out waiting for the response"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<frame::FrameError> for NetError {
    fn from(e: frame::FrameError) -> Self {
        NetError::Frame(e)
    }
}

impl NetError {
    /// `true` when the failure is a typed rejection carrying `code` —
    /// `err.is_rejection(wire::code::OVERLOADED)` is how a load generator
    /// counts load-sheds.
    pub fn is_rejection(&self, code: &str) -> bool {
        matches!(self, NetError::Rejected { code: c, .. } if c == code)
    }
}
