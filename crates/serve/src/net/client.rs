//! A small blocking client for the [`NetServer`](super::NetServer)'s wire
//! protocol — one connection, one request in flight at a time.
//!
//! This is the reference implementation of the client side of
//! `docs/wire-protocol.md`: `zsc_serve --net`'s load generator drives it,
//! and the network test suites use it to pin server behaviour. Typed
//! rejections come back as [`NetError::Rejected`] carrying the wire code,
//! so a caller can distinguish *load-shed, retry later*
//! ([`code::OVERLOADED`](super::wire::code::OVERLOADED)) from *give up*
//! without string-matching messages.

use super::frame::{read_frame, write_frame, FrameError, ReadOutcome};
use super::wire::{Request, Response, WireStats, PROTOCOL_VERSION};
use super::NetError;
use crate::server::{ScoredLabel, Verdict};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Timeouts of a [`NetClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// How long one request may wait for its response frame.
    pub response_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            response_timeout: Duration::from_secs(30),
        }
    }
}

/// What the server's `welcome` frame declared about itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Welcome {
    /// The protocol version both sides now speak.
    pub protocol: u32,
    /// Width of feature rows [`NetClient::query`] must send.
    pub feature_dim: u64,
    /// Width of attribute rows the mutation calls must send.
    pub attribute_dim: u64,
    /// Snapshot version serving at handshake time.
    pub snapshot_version: u64,
    /// Classes registered at handshake time.
    pub classes: u64,
}

/// One blocking connection to a [`NetServer`](super::NetServer);
/// handshaken on construction.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    config: ClientConfig,
    welcome: Welcome,
}

/// The client-side read tick: short enough that `response_timeout` is
/// honoured promptly, long enough not to spin.
const READ_TICK: Duration = Duration::from_millis(50);

impl NetClient {
    /// Connects to `addr` and performs the protocol handshake.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] / [`NetError::Timeout`] for transport failures,
    /// [`NetError::Rejected`] when the server refuses the connection or
    /// the protocol version, and [`NetError::Protocol`] for a reply that
    /// is not part of the protocol.
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Self, NetError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| NetError::Protocol("address resolved to nothing".to_string()))?;
        let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)?;
        stream.set_read_timeout(Some(READ_TICK))?;
        stream.set_write_timeout(Some(config.response_timeout))?;
        let _ = stream.set_nodelay(true);
        let mut client = Self {
            stream,
            config,
            welcome: Welcome {
                protocol: PROTOCOL_VERSION,
                feature_dim: 0,
                attribute_dim: 0,
                snapshot_version: 0,
                classes: 0,
            },
        };
        let response = client.call(&Request::Hello {
            protocol: PROTOCOL_VERSION,
        })?;
        match response {
            Response::Welcome {
                protocol,
                feature_dim,
                attribute_dim,
                snapshot_version,
                classes,
            } => {
                client.welcome = Welcome {
                    protocol,
                    feature_dim,
                    attribute_dim,
                    snapshot_version,
                    classes,
                };
                Ok(client)
            }
            other => Err(unexpected(&other, "welcome")),
        }
    }

    /// What the server declared about itself during the handshake.
    pub fn welcome(&self) -> Welcome {
        self.welcome
    }

    /// Scores one feature row, returning the serving snapshot version and
    /// the top-k labels with their similarities reconstructed bit-exactly
    /// from the wire (`f32::from_bits`).
    ///
    /// `k` narrows the response within the server's configured top-k;
    /// `None` returns the server's full top-k.
    ///
    /// # Errors
    ///
    /// [`NetError::Rejected`] for typed rejections (including
    /// `overloaded` load-sheds — retry those after backing off), plus the
    /// transport failures of [`NetClient::connect`].
    pub fn query(
        &mut self,
        features: &[f32],
        k: Option<u64>,
    ) -> Result<(u64, Vec<ScoredLabel>), NetError> {
        self.query_with_verdict(features, k)
            .map(|(version, results, _)| (version, results))
    }

    /// Like [`NetClient::query`], additionally returning the serving
    /// snapshot's open-set [`Verdict`] — `None` when that snapshot carried
    /// no rejection threshold (see [`NetClient::set_threshold`]).
    ///
    /// # Errors
    ///
    /// See [`NetClient::query`].
    pub fn query_with_verdict(
        &mut self,
        features: &[f32],
        k: Option<u64>,
    ) -> Result<(u64, Vec<ScoredLabel>, Option<Verdict>), NetError> {
        let response = self.call(&Request::Query {
            features: features.to_vec(),
            k,
        })?;
        match response {
            Response::TopK {
                version,
                results,
                verdict,
            } => Ok((
                version,
                results
                    .into_iter()
                    .map(|score| (score.label, f32::from_bits(score.sim_bits)))
                    .collect(),
                verdict,
            )),
            other => Err(unexpected(&other, "topk")),
        }
    }

    /// Sets (`Some`) or clears (`None`) the server's open-set rejection
    /// threshold; returns the snapshot version the change published. The
    /// threshold crosses the wire as raw `f32` bits, so the server judges
    /// queries by exactly the value the caller calibrated.
    ///
    /// # Errors
    ///
    /// See [`NetClient::query`]; a non-finite threshold comes back as a
    /// [`NetError::Rejected`] with code `invalid_config`.
    pub fn set_threshold(&mut self, threshold: Option<f32>) -> Result<u64, NetError> {
        self.mutate(&Request::SetThreshold {
            threshold_bits: threshold.map(f32::to_bits),
        })
    }

    /// Registers a new class; returns the snapshot version it published.
    ///
    /// # Errors
    ///
    /// See [`NetClient::query`]; duplicate labels come back as a
    /// [`NetError::Rejected`] with code `duplicate_label`.
    pub fn register_class(
        &mut self,
        label: impl Into<String>,
        attributes: &[f32],
    ) -> Result<u64, NetError> {
        self.mutate(&Request::RegisterClass {
            label: label.into(),
            attributes: attributes.to_vec(),
        })
    }

    /// Re-points an existing class; returns the snapshot version it
    /// published.
    ///
    /// # Errors
    ///
    /// See [`NetClient::query`].
    pub fn update_class(&mut self, label: &str, attributes: &[f32]) -> Result<u64, NetError> {
        self.mutate(&Request::UpdateClass {
            label: label.to_string(),
            attributes: attributes.to_vec(),
        })
    }

    /// Unregisters a class; returns the snapshot version it published.
    ///
    /// # Errors
    ///
    /// See [`NetClient::query`].
    pub fn remove_class(&mut self, label: &str) -> Result<u64, NetError> {
        self.mutate(&Request::RemoveClass {
            label: label.to_string(),
        })
    }

    /// Replaces the whole serving state from a checkpoint JSON document
    /// plus its class set; returns the snapshot version it published.
    ///
    /// # Errors
    ///
    /// See [`NetClient::query`]; invalid checkpoints come back with code
    /// `checkpoint`.
    pub fn swap_model(
        &mut self,
        checkpoint_json: impl Into<String>,
        labels: Vec<String>,
        attributes: Vec<Vec<f32>>,
    ) -> Result<u64, NetError> {
        self.mutate(&Request::SwapModel {
            checkpoint_json: checkpoint_json.into(),
            labels,
            attributes,
        })
    }

    /// Folds one streamed labeled example into `label`'s exact per-class
    /// counters on the server — the continual-learning verb. Returns the
    /// snapshot version now serving: it advances only when this observe
    /// landed a publication boundary ([`ServerConfig`](crate::ServerConfig)
    /// `publish_every`), and repeats the current version otherwise.
    ///
    /// # Errors
    ///
    /// See [`NetClient::query`]; unregistered labels come back as a
    /// [`NetError::Rejected`] with code `unknown_class`.
    pub fn observe(&mut self, label: &str, features: &[f32]) -> Result<u64, NetError> {
        self.mutate(&Request::Observe {
            label: label.to_string(),
            features: features.to_vec(),
        })
    }

    /// Publishes every pending streamed-class update immediately; returns
    /// the snapshot version now serving (unchanged when nothing was
    /// pending).
    ///
    /// # Errors
    ///
    /// See [`NetClient::query`].
    pub fn flush(&mut self) -> Result<u64, NetError> {
        self.mutate(&Request::Flush)
    }

    /// Fetches the server's combined serve + network counters.
    ///
    /// # Errors
    ///
    /// See [`NetClient::query`].
    pub fn stats(&mut self) -> Result<WireStats, NetError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other, "stats")),
        }
    }

    /// Sends a mutation request and unwraps the `mutated` response.
    fn mutate(&mut self, request: &Request) -> Result<u64, NetError> {
        match self.call(request)? {
            Response::Mutated { version, .. } => Ok(version),
            other => Err(unexpected(&other, "mutated")),
        }
    }

    /// One request/response exchange; typed `error` responses become
    /// [`NetError::Rejected`].
    fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        write_frame(&mut self.stream, &request.encode()).map_err(FrameError::Io)?;
        let deadline = Instant::now() + self.config.response_timeout;
        let payload = loop {
            match read_frame(&mut self.stream, self.config.response_timeout)? {
                ReadOutcome::Frame(payload) => break payload,
                ReadOutcome::Idle => {
                    if Instant::now() >= deadline {
                        return Err(NetError::Timeout);
                    }
                }
                ReadOutcome::Closed => {
                    return Err(NetError::Protocol(
                        "server closed the connection before responding".to_string(),
                    ));
                }
            }
        };
        match Response::decode(&payload).map_err(NetError::Protocol)? {
            Response::Error { code, message } => Err(NetError::Rejected { code, message }),
            response => Ok(response),
        }
    }
}

/// The server answered with a frame that is valid protocol but not the
/// response this request expects.
fn unexpected(got: &Response, wanted: &str) -> NetError {
    NetError::Protocol(format!("expected a `{wanted}` response, got {got:?}"))
}
